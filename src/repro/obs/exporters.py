"""Metric exporters: Prometheus text format, JSON snapshot, JSONL sink.

``render_prometheus`` emits text-format 0.0.4 — what a Prometheus server
(or ``curl``) scrapes off the daemon's ``/metrics`` endpoint:

    # HELP convgpu_alloc_decision_seconds Latency of one allocation decision
    # TYPE convgpu_alloc_decision_seconds histogram
    convgpu_alloc_decision_seconds_bucket{policy="BF",le="0.001"} 42
    ...
    convgpu_alloc_decision_seconds_sum{policy="BF"} 0.012
    convgpu_alloc_decision_seconds_count{policy="BF"} 42

``JsonlSink`` appends timestamped registry snapshots as JSON lines — the
poor operator's time-series database, and what long simulation runs use
to keep a metrics trail next to their results.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, TextIO

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_prometheus",
    "snapshot_json",
    "JsonlSink",
    "parse_prometheus",
    "relabel_prometheus",
    "merge_prometheus",
]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names: tuple[str, ...], values: tuple[str, ...],
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text format 0.0.4."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, sample in family.samples():
            if family.kind == "histogram":
                for bound, count in sample["buckets"]:
                    labels = _label_str(
                        family.labelnames, values, (("le", _format_value(bound)),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                inf_labels = _label_str(
                    family.labelnames, values, (("le", "+Inf"),)
                )
                lines.append(f"{family.name}_bucket{inf_labels} {sample['count']}")
                plain = _label_str(family.labelnames, values)
                lines.append(
                    f"{family.name}_sum{plain} {_format_value(sample['sum'])}"
                )
                lines.append(f"{family.name}_count{plain} {sample['count']}")
            else:
                labels = _label_str(family.labelnames, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def relabel_prometheus(text: str, labels: dict[str, str]) -> str:
    """Inject constant labels into every sample line of a text-format scrape.

    ``name{a="b"} 1`` becomes ``name{shard="0",a="b"} 1`` and ``name 1``
    becomes ``name{shard="0"} 1``; comment (``# HELP``/``# TYPE``) and
    blank lines pass through untouched.  This is how the shard router
    distinguishes the N shards' identically-named series in one merged
    ``/metrics`` body.
    """
    if not labels:
        return text
    injected = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    lines: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            lines.append(line)
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            lines.append(f"{name}{{{injected},{rest}")
        else:
            name, _, value_part = line.partition(" ")
            lines.append(f"{name}{{{injected}}} {value_part}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_prometheus(parts: list[tuple[dict[str, str], str]]) -> str:
    """Merge several text-format scrapes into one exposition.

    Each part is ``(extra_labels, text)``; samples get the extra labels
    injected (:func:`relabel_prometheus`) and the first ``# HELP`` /
    ``# TYPE`` line per family wins — Prometheus rejects duplicate
    metadata, and the shard fleet's families are by construction the same
    metric on every shard.
    """
    seen_meta: set[tuple[str, str]] = set()
    lines: list[str] = []
    for labels, text in parts:
        for line in relabel_prometheus(text, labels).splitlines():
            stripped = line.strip()
            if stripped.startswith("#"):
                fields = stripped.split(None, 3)
                if len(fields) >= 3 and fields[1] in ("HELP", "TYPE"):
                    key = (fields[1], fields[2])
                    if key in seen_meta:
                        continue
                    seen_meta.add(key)
                lines.append(line)
            elif stripped:
                lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_json(registry: MetricsRegistry, *, indent: int | None = None) -> str:
    """The registry snapshot as a JSON document (the ``/metrics.json`` body)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse text format back into ``{name: {help, type, samples}}``.

    Powering ``repro metrics``'s pretty-printer; tolerant of anything a
    conforming exporter emits (one metric per line, ``# HELP``/``# TYPE``
    comments, optional labels).  Sample keys are the full label string.
    """
    families: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        return families.setdefault(
            name, {"help": "", "type": "untyped", "samples": {}}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "HELP":
                family(parts[2])["help"] = parts[3]
            elif len(parts) >= 4 and parts[1] == "TYPE":
                family(parts[2])["type"] = parts[3]
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels, value_part = rest.rsplit("}", 1)
            key = "{" + labels + "}"
        else:
            name, _, value_part = line.partition(" ")
            key = ""
        value_text = value_part.strip().split()[0]
        try:
            value = float(value_text)
        except ValueError:
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                key = (name[len(base):]) + key
                break
        family(base)["samples"][key] = value
    return families


class JsonlSink:
    """Append timestamped registry snapshots as JSON lines.

    Args:
        stream_or_path: an open text stream, or a path to append to.
        clock: timestamp source.
    """

    def __init__(
        self,
        stream_or_path: TextIO | str,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.clock = clock
        if isinstance(stream_or_path, str):
            self._fh: TextIO = open(stream_or_path, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = stream_or_path
            self._owns = False
        self.records_written = 0

    def write(self, registry: MetricsRegistry, **extra: Any) -> None:
        """Append one snapshot line (``extra`` fields ride alongside)."""
        record = {"ts": self.clock(), "metrics": registry.snapshot(), **extra}
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
