"""Trace spans with a wire-propagated context.

A :class:`Tracer` records :class:`Span` objects — named intervals with a
``trace_id`` shared by every span of one logical operation and a unique
``span_id`` per interval.  The context crosses the JSON IPC protocol as
two optional string fields (``trace_id``, ``span_id``; see
``docs/PROTOCOL.md``), so one ``cudaMalloc`` becomes a single trace:

    wrapper.cudaMalloc                      (wrapper process)
      └─ ipc.call:alloc_request             (client transport)
           └─ scheduler.alloc_request       (daemon, parented via the wire)

The tracer is **off by default** — hot paths check ``tracer is None``
first, so simulation sweeps pay one attribute load per call when tracing
is disabled.  Clocks are injectable: live mode uses ``time.monotonic``,
simulations pass the DES clock so span timestamps land in virtual time
(which is what the Chrome export renders).

Identifiers come from a private :class:`random.Random` instance —
deterministic when seeded (simulations), OS-seeded otherwise.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from contextlib import contextmanager

__all__ = [
    "TRACE_ID_FIELD",
    "SPAN_ID_FIELD",
    "SpanContext",
    "Span",
    "Tracer",
    "inject_context",
    "extract_context",
]

#: Wire field names (optional on every protocol message).
TRACE_ID_FIELD = "trace_id"
SPAN_ID_FIELD = "span_id"


class SpanContext:
    """The portable part of a span: what crosses the wire."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanContext {self.trace_id}/{self.span_id}>"


class Span:
    """One named interval of a trace."""

    __slots__ = (
        "name", "context", "parent_id", "start", "end", "attrs", "status", "_tracer"
    )

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: str | None,
        start: float,
        tracer: "Tracer",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = attrs or {}
        self.status = "ok"
        self._tracer = tracer

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def finish(self, *, status: str | None = None) -> "Span":
        """Close the span (idempotent) and hand it to the tracer's buffer."""
        if self.end is None:
            if status is not None:
                self.status = status
            self._tracer._finish(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.name} {self.trace_id}/{self.span_id} {state}>"


class Tracer:
    """Span factory + bounded in-memory buffer of finished spans.

    Args:
        clock: time source for span start/end (DES clock in simulations).
        seed: seeds the id generator for reproducible traces; ``None``
            draws OS entropy.
        max_spans: cap on buffered finished spans; beyond it the oldest
            are dropped and counted in :attr:`dropped` (a tracer left on
            in a long-lived daemon must not grow without bound).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        seed: int | None = None,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans}")
        self.clock = clock if clock is not None else time.monotonic
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._rng = random.Random(seed)

    # -- ids ----------------------------------------------------------------

    def _new_id(self, bits: int = 64) -> str:
        with self._lock:
            return f"{self._rng.getrandbits(bits):0{bits // 4}x}"

    # -- span lifecycle -------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; a ``parent`` keeps its trace_id, else a new trace."""
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._new_id(128)
            parent_id = None
        context = SpanContext(trace_id, self._new_id(64))
        return Span(name, context, parent_id, self.clock(), self, attrs or None)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        with self._lock:
            self.spans.append(span)
            overflow = len(self.spans) - self.max_spans
            if overflow > 0:
                del self.spans[:overflow]
                self.dropped += overflow

    @contextmanager
    def span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager: open, yield, finish (status=error on raise)."""
        current = self.start_span(name, parent, **attrs)
        try:
            yield current
        except BaseException:
            current.finish(status="error")
            raise
        current.finish()

    # -- queries --------------------------------------------------------------

    def finished(self, name: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self.spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id, each group start-ordered."""
        groups: dict[str, list[Span]] = {}
        for span in self.finished():
            groups.setdefault(span.trace_id, []).append(span)
        for spans in groups.values():
            spans.sort(key=lambda s: (s.start, s.span_id))
        return groups

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0


# ---------------------------------------------------------------------------
# wire propagation
# ---------------------------------------------------------------------------


def inject_context(
    payload: dict[str, Any], source: Span | SpanContext | None
) -> dict[str, Any]:
    """Add the trace fields to an outgoing message payload (in place).

    A payload that already carries a ``trace_id`` is left untouched — a
    retry loop re-issuing a request must keep the original identifiers so
    the redial does not fork the trace.
    """
    if source is None or TRACE_ID_FIELD in payload:
        return payload
    context = source.context if isinstance(source, Span) else source
    payload[TRACE_ID_FIELD] = context.trace_id
    payload[SPAN_ID_FIELD] = context.span_id
    return payload


def extract_context(message: Mapping[str, Any]) -> SpanContext | None:
    """Read the trace fields off an incoming message, if present."""
    trace_id = message.get(TRACE_ID_FIELD)
    span_id = message.get(SPAN_ID_FIELD)
    if isinstance(trace_id, str) and trace_id:
        return SpanContext(trace_id, span_id if isinstance(span_id, str) else "")
    return None
