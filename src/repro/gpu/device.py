"""The simulated GPU device: properties + allocator + Hyper-Q + latency.

One :class:`GpuDevice` stands in for the Tesla K20m of the paper's testbed.
Everything above this layer (the CUDA substrate, the wrapper module, the
scheduler) observes the device only through the operations implemented here,
so swapping in a differently-sized device reconfigures the whole stack —
which the ablation benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidDeviceError
from repro.gpu.hyperq import HyperQEngine, KernelRecord
from repro.gpu.latency import LatencyModel
from repro.gpu.memory import Allocation, GpuMemoryAllocator
from repro.gpu.properties import TESLA_K20M, DeviceProperties
from repro.units import format_size

__all__ = ["GpuDevice", "MemInfo", "DeviceRegistry"]


@dataclass(frozen=True)
class MemInfo:
    """Result of a ``cudaMemGetInfo``-style query."""

    free: int
    total: int

    @property
    def used(self) -> int:
        return self.total - self.free


class GpuDevice:
    """A single simulated GPU."""

    def __init__(
        self,
        ordinal: int = 0,
        properties: DeviceProperties | None = None,
        *,
        paged: bool = True,
    ) -> None:
        if ordinal < 0:
            raise InvalidDeviceError(f"negative device ordinal: {ordinal}")
        self.ordinal = ordinal
        self.properties = properties or TESLA_K20M
        self.allocator = GpuMemoryAllocator(
            self.properties.total_global_mem,
            alignment=self.properties.allocation_alignment,
            # Distinct address ranges per device so cross-device frees fail
            # loudly; 16 TiB of virtual space per device leaves the paged
            # bump pointer room for any realistic run.
            base=0x7_0000_0000 + ordinal * 0x1000_0000_0000,
            paged=paged,
        )
        self.hyperq = HyperQEngine(self.properties.hyper_q_width)
        self.latency = LatencyModel(self.properties)

    # -- memory -------------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Allocate device memory (raises OutOfMemoryError when full)."""
        return self.allocator.allocate(size)

    def release(self, address: int) -> Allocation:
        """Free device memory by base address."""
        return self.allocator.release(address)

    def mem_info(self) -> MemInfo:
        """Device-wide free/total, as ``cudaMemGetInfo`` reports it."""
        return MemInfo(free=self.allocator.free, total=self.allocator.total)

    # -- execution ------------------------------------------------------------

    def submit_kernel(self, now: float, duration: float) -> KernelRecord:
        """Submit a kernel of known duration through Hyper-Q."""
        return self.hyperq.submit(now, duration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GpuDevice {self.ordinal} '{self.properties.name}' "
            f"{format_size(self.allocator.used)} used of "
            f"{format_size(self.allocator.total)}>"
        )


class DeviceRegistry:
    """An ordered collection of devices (the host's ``nvidia-smi`` view).

    The paper evaluates one device; the future-work extension
    (:mod:`repro.cluster`) schedules across several, so the registry is the
    seam where the single- and multi-GPU stacks meet.
    """

    def __init__(self, devices: list[GpuDevice] | None = None) -> None:
        self._devices: list[GpuDevice] = []
        for device in devices or []:
            self.add(device)

    @classmethod
    def single(cls, properties: DeviceProperties | None = None) -> "DeviceRegistry":
        """A registry holding one device (the paper's configuration)."""
        return cls([GpuDevice(0, properties)])

    def add(self, device: GpuDevice) -> None:
        if device.ordinal != len(self._devices):
            raise InvalidDeviceError(
                f"device ordinals must be dense: expected {len(self._devices)}, "
                f"got {device.ordinal}"
            )
        self._devices.append(device)

    def get(self, ordinal: int) -> GpuDevice:
        if not 0 <= ordinal < len(self._devices):
            raise InvalidDeviceError(
                f"device {ordinal} out of range (have {len(self._devices)})"
            )
        return self._devices[ordinal]

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices)
