"""Device-memory allocator with real address bookkeeping.

The ConVGPU scheduler tracks every allocation by its *device address*
("wrapper module sends the allocated memory address, current pid, and the
size information to the scheduler", §III-C) and stores them in a hash
structure (§III-D).  To exercise that code path faithfully the simulated
GPU hands out genuine, non-overlapping addresses rather than opaque
tickets.

Two modes:

- **paged** (default): the GPU MMU maps pages, so ``cudaMalloc`` succeeds
  whenever enough total memory is free — external fragmentation does not
  exist at this granularity on real NVIDIA hardware.  Addresses come from a
  monotone virtual-address bump pointer.
- **contiguous**: a first-fit free-list over a flat physical range, kept
  for the allocator ablation (shows what the scheduler's guarantees would
  look like on fragmentation-prone hardware).

GPU memory cannot be swapped (§I), so exhaustion is a hard failure surfaced
as :class:`repro.errors.OutOfMemoryError` (the CUDA layer converts it into
``cudaErrorMemoryAllocation``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GpuError, OutOfMemoryError
from repro.units import format_size

__all__ = ["Allocation", "GpuMemoryAllocator"]

#: Device addresses start here so that 0 stays an unambiguous NULL pointer.
_BASE_ADDRESS = 0x7_0000_0000


def _align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Allocation:
    """One live device allocation."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Allocation {self.address:#x} {format_size(self.size)}>"


class GpuMemoryAllocator:
    """First-fit allocator over a contiguous device address range.

    Free extents are kept sorted by address; freeing coalesces with both
    neighbours, so a fully drained allocator always collapses back to a
    single extent (a key invariant covered by the property-based tests).
    """

    def __init__(
        self,
        total: int,
        *,
        alignment: int = 256,
        base: int = _BASE_ADDRESS,
        paged: bool = True,
    ) -> None:
        if total <= 0:
            raise GpuError(f"allocator size must be positive, got {total}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise GpuError(f"alignment must be a positive power of two, got {alignment}")
        self.total = total
        self.alignment = alignment
        self.base = base
        self.paged = paged
        #: Paged mode: next virtual address to hand out (never reused).
        self._bump = base
        #: Contiguous mode: sorted list of free ``(address, size)`` extents.
        self._free: list[tuple[int, int]] = [(base, total)]
        #: address -> Allocation for all live blocks.
        self._live: dict[int, Allocation] = {}
        self._used = 0
        #: Monotonic counters for observability.
        self.alloc_count = 0
        self.free_count = 0
        self.failed_count = 0
        self.peak_used = 0

    # -- queries ------------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes currently free (may be fragmented)."""
        return self.total - self._used

    @property
    def largest_free_extent(self) -> int:
        """Size of the biggest single free extent (0 when full).

        In paged mode any free byte is usable anywhere, so this equals
        :attr:`free`.
        """
        if self.paged:
            return self.free
        return max((size for _addr, size in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_extent/free; 0 when unfragmented or full."""
        if self.free == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / self.free

    def live_allocations(self) -> list[Allocation]:
        """Snapshot of live allocations ordered by address."""
        return sorted(self._live.values(), key=lambda a: a.address)

    def owns(self, address: int) -> bool:
        """True if ``address`` is the base of a live allocation."""
        return address in self._live

    def size_of(self, address: int) -> int:
        """Size of the live allocation at ``address``.

        Raises:
            GpuError: if the address is not a live allocation base.
        """
        try:
            return self._live[address].size
        except KeyError:
            raise GpuError(f"unknown device address {address:#x}") from None

    # -- allocation -----------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Allocate ``size`` bytes (rounded up to the device alignment).

        Raises:
            GpuError: for non-positive sizes.
            OutOfMemoryError: when no free extent can hold the request.
        """
        if size <= 0:
            raise GpuError(f"allocation size must be positive, got {size}")
        needed = _align_up(size, self.alignment)
        if self.paged:
            if needed > self.free:
                self.failed_count += 1
                raise OutOfMemoryError(
                    f"cannot allocate {format_size(needed)}: "
                    f"{format_size(self.free)} free"
                )
            address = self._bump
            self._bump += needed
            allocation = Allocation(address=address, size=needed)
            self._live[address] = allocation
            self._used += needed
            self.alloc_count += 1
            self.peak_used = max(self.peak_used, self._used)
            return allocation
        for index, (addr, extent) in enumerate(self._free):
            if extent >= needed:
                allocation = Allocation(address=addr, size=needed)
                remainder = extent - needed
                if remainder:
                    self._free[index] = (addr + needed, remainder)
                else:
                    del self._free[index]
                self._live[addr] = allocation
                self._used += needed
                self.alloc_count += 1
                self.peak_used = max(self.peak_used, self._used)
                return allocation
        self.failed_count += 1
        raise OutOfMemoryError(
            f"cannot allocate {format_size(needed)}: "
            f"{format_size(self.free)} free, "
            f"largest extent {format_size(self.largest_free_extent)}"
        )

    def release(self, address: int) -> Allocation:
        """Free the allocation based at ``address`` and coalesce neighbours.

        Raises:
            GpuError: for a double free or an address never allocated.
        """
        allocation = self._live.pop(address, None)
        if allocation is None:
            raise GpuError(f"invalid free of device address {address:#x}")
        self._used -= allocation.size
        self.free_count += 1
        if not self.paged:
            self._insert_free(allocation.address, allocation.size)
        return allocation

    def release_all(self, addresses: list[int]) -> int:
        """Free several allocations; returns total bytes released."""
        freed = 0
        for address in addresses:
            freed += self.release(address).size
        return freed

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert a free extent, merging with adjacent extents."""
        # Binary search for the insertion point.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        # Merge with successor first, then predecessor.
        if lo + 1 < len(self._free):
            naddr, nsize = self._free[lo + 1]
            if addr + size == naddr:
                self._free[lo] = (addr, size + nsize)
                del self._free[lo + 1]
                size += nsize
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize == addr:
                self._free[lo - 1] = (paddr, psize + size)
                del self._free[lo]

    def check_invariants(self) -> None:
        """Assert internal consistency (used heavily by property tests)."""
        if self.paged:
            live_total = sum(a.size for a in self._live.values())
            if live_total != self._used:
                raise GpuError(
                    f"accounting broke: live={live_total} used={self._used}"
                )
            if self._used > self.total:
                raise GpuError(f"over-allocated: {self._used} > {self.total}")
            spans = sorted((a.address, a.end) for a in self._live.values())
            for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                if s2 < e1:
                    raise GpuError(f"overlapping allocations at {s2:#x}")
            return
        free_total = sum(size for _addr, size in self._free)
        if free_total + self._used != self.total:
            raise GpuError(
                f"accounting broke: free={free_total} used={self._used} total={self.total}"
            )
        previous_end = None
        for addr, size in self._free:
            if size <= 0:
                raise GpuError(f"empty free extent at {addr:#x}")
            if previous_end is not None and addr < previous_end:
                raise GpuError("free list not sorted / overlapping")
            if previous_end is not None and addr == previous_end:
                raise GpuError("free list has uncoalesced neighbours")
            previous_end = addr + size
        spans = sorted(
            [(a.address, a.end) for a in self._live.values()]
            + [(addr, addr + size) for addr, size in self._free]
        )
        cursor = self.base
        for start, end in spans:
            if start != cursor:
                raise GpuError(f"address space gap/overlap at {start:#x}")
            cursor = end
        if cursor != self.base + self.total:
            raise GpuError("address space does not cover the device")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GpuMemoryAllocator used={format_size(self._used)}/"
            f"{format_size(self.total)} live={len(self._live)}>"
        )
