"""Hyper-Q kernel concurrency model.

The testbed GPU "supports Hyper-Q, it can run multiple GPU kernels
concurrently up to 32 kernels" (§IV-A).  This is what allows several
containers' sample programs to overlap on one device; without it the
multi-container experiments would serialize completely and the scheduling
algorithms could not differ in the way Fig. 7/8 show.

The model is intentionally simple and conservative:

- at most ``width`` kernels execute concurrently;
- a kernel submitted while all lanes are busy starts when the earliest
  running kernel finishes (hardware work-queue FIFO);
- concurrent kernels share SM throughput equally only in the *duration
  stretch* sense when ``share_throughput`` is enabled; by default kernels
  keep their nominal duration, matching the paper's memory-bound sample
  program whose kernels are short relative to transfers.

The engine is pure bookkeeping over explicit timestamps so it can serve
both the DES (virtual time) and the live mode (wall-clock timestamps).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.errors import GpuError

__all__ = ["KernelRecord", "HyperQEngine"]


@dataclass(frozen=True)
class KernelRecord:
    """Outcome of one kernel submission."""

    kernel_id: int
    submit_time: float
    start_time: float
    completion_time: float

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a Hyper-Q lane."""
        return self.start_time - self.submit_time

    @property
    def duration(self) -> float:
        return self.completion_time - self.start_time


class HyperQEngine:
    """Tracks in-flight kernels and computes start/completion times."""

    def __init__(self, width: int = 32) -> None:
        if width < 1:
            raise GpuError(f"Hyper-Q width must be >= 1, got {width}")
        self.width = width
        #: Min-heap of completion times for kernels considered running.
        self._running: list[float] = []
        self._ids = itertools.count(1)
        self.submitted = 0
        self.max_concurrency = 0
        self._last_time = 0.0
        #: Cumulative kernel execution time (lane-seconds); utilization =
        #: total_kernel_seconds / (width * makespan).
        self.total_kernel_seconds = 0.0

    def _retire(self, now: float) -> None:
        """Drop kernels that completed at or before ``now``."""
        while self._running and self._running[0] <= now:
            heapq.heappop(self._running)

    def active_at(self, now: float) -> int:
        """Number of kernels still running at ``now``."""
        self._retire(now)
        return len(self._running)

    def submit(self, now: float, duration: float) -> KernelRecord:
        """Submit a kernel at time ``now`` taking ``duration`` once started.

        Time must be non-decreasing across calls (both the DES clock and the
        wall clock satisfy this).
        """
        if duration < 0:
            raise GpuError(f"negative kernel duration: {duration}")
        if now < self._last_time:
            raise GpuError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._last_time = now
        self._retire(now)
        if len(self._running) < self.width:
            start = now
        else:
            # All lanes busy: this kernel starts when the earliest running
            # kernel completes, freeing a lane.
            start = heapq.heappop(self._running)
        completion = start + duration
        heapq.heappush(self._running, completion)
        self.submitted += 1
        self.total_kernel_seconds += duration
        self.max_concurrency = max(self.max_concurrency, len(self._running))
        return KernelRecord(
            kernel_id=next(self._ids),
            submit_time=now,
            start_time=start,
            completion_time=completion,
        )

    def drain_time(self, now: float) -> float:
        """Earliest time at which no kernel is running."""
        self._retire(now)
        return max([now, *self._running]) if self._running else now
