"""Latency model for GPU operations (transfers, kernels, API overheads).

Fig. 6 of the paper rests on a quantitative claim: the per-call middleware
overhead (tens of microseconds) is negligible because real programs spend
their time "copying data from/to the CPU memory and running GPU kernel
code".  To reproduce that ratio we need a latency model whose transfer and
kernel times are realistic *relative to* the API-call times.

All formulas are straightforward bandwidth/throughput models:

- transfers:  ``latency + bytes / pcie_bandwidth``
- device-side streaming kernels:  ``launch + bytes / memory_bandwidth``
- compute kernels:  ``launch + flops / peak_flops``

API-call base costs reproduce the paper's Fig. 4 "without ConVGPU" bars
(cudaMalloc ≈ 0.035 ms, cudaMallocManaged ≈ 40×, cudaFree ≈ 0.032 ms, ...).
They live here, next to the hardware model, because they are properties of
the driver/device pair the paper measured, not of the middleware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.properties import DeviceProperties

__all__ = ["ApiCostTable", "LatencyModel", "DEFAULT_API_COSTS"]


@dataclass(frozen=True)
class ApiCostTable:
    """Native (no-middleware) response time of each intercepted API, seconds.

    Values are calibrated to Fig. 4's "without ConVGPU" series: generic
    allocation APIs cluster around 0.035 ms, ``cudaMallocManaged`` is about
    40x slower (mapped memory), ``cudaFree`` ~0.032 ms, and
    ``cudaMemGetInfo`` requires a device round-trip of ~0.04 ms natively.
    ``cudaGetDeviceProperties`` is the call the wrapper issues once to learn
    the pitch size (§III-C).
    """

    cuda_malloc: float = 35e-6
    cuda_malloc_pitch: float = 38e-6
    cuda_malloc_3d: float = 38e-6
    cuda_malloc_managed: float = 1.4e-3
    cuda_free: float = 32e-6
    #: cudaMemGetInfo natively performs a driver/device round-trip; ConVGPU
    #: answers from scheduler bookkeeping and lands ~10 us faster (Fig. 4).
    cuda_mem_get_info: float = 57e-6
    cuda_get_device_properties: float = 50e-6
    cuda_memcpy_setup: float = 12e-6
    kernel_launch: float = 7e-6
    #: Fat-binary (module) registration / unregistration.
    fatbin_register: float = 80e-6
    fatbin_unregister: float = 60e-6
    #: One-time CUDA context creation on first API use of a process.
    context_create: float = 90e-3

    def cost_of(self, api_name: str) -> float:
        """Look up the cost for an API by its snake_case short name."""
        try:
            return getattr(self, api_name)
        except AttributeError:
            raise KeyError(f"no cost entry for API {api_name!r}") from None


DEFAULT_API_COSTS = ApiCostTable()


@dataclass
class LatencyModel:
    """Computes operation durations for one device."""

    properties: DeviceProperties
    api_costs: ApiCostTable = field(default_factory=ApiCostTable)

    def h2d_time(self, nbytes: int) -> float:
        """Host-to-device copy duration in seconds."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return (
            self.api_costs.cuda_memcpy_setup
            + self.properties.transfer_latency
            + nbytes / self.properties.pcie_bandwidth
        )

    def d2h_time(self, nbytes: int) -> float:
        """Device-to-host copy duration in seconds (symmetric model)."""
        return self.h2d_time(nbytes)

    def d2d_time(self, nbytes: int) -> float:
        """On-device copy: bounded by memory bandwidth, read + write."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return (
            self.properties.transfer_latency
            + 2 * nbytes / self.properties.memory_bandwidth
        )

    def streaming_kernel_time(self, nbytes: int, passes: float = 1.0) -> float:
        """A memory-bound kernel touching ``nbytes`` ``passes`` times.

        The paper's sample program "calculates the complement" of the
        buffer — a single read-modify-write pass.
        """
        if nbytes < 0:
            raise ValueError(f"negative kernel footprint: {nbytes}")
        traffic = 2.0 * passes * nbytes  # read + write per pass
        return (
            self.properties.kernel_launch_latency
            + traffic / self.properties.memory_bandwidth
        )

    def compute_kernel_time(self, flops: float) -> float:
        """A compute-bound kernel executing ``flops`` floating-point ops."""
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        return self.properties.kernel_launch_latency + flops / self.properties.peak_flops

    def api_time(self, api_name: str) -> float:
        """Native duration of a CUDA API call."""
        return self.api_costs.cost_of(api_name)
