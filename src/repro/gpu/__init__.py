"""Simulated GPU substrate (device, memory allocator, Hyper-Q, latency).

Stands in for the NVIDIA Tesla K20m of the paper's testbed; see DESIGN.md
for the substitution rationale.
"""

from repro.gpu.device import DeviceRegistry, GpuDevice, MemInfo
from repro.gpu.hyperq import HyperQEngine, KernelRecord
from repro.gpu.latency import DEFAULT_API_COSTS, ApiCostTable, LatencyModel
from repro.gpu.memory import Allocation, GpuMemoryAllocator
from repro.gpu.properties import TESLA_K20M, DeviceProperties, make_properties

__all__ = [
    "GpuDevice",
    "DeviceRegistry",
    "MemInfo",
    "HyperQEngine",
    "KernelRecord",
    "LatencyModel",
    "ApiCostTable",
    "DEFAULT_API_COSTS",
    "Allocation",
    "GpuMemoryAllocator",
    "DeviceProperties",
    "TESLA_K20M",
    "make_properties",
]
