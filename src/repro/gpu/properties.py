"""Device property models for the simulated GPU.

The paper's testbed is a single NVIDIA Tesla K20m (5 GB, Hyper-Q, driver
375.51, CUDA 8.0.44).  :data:`TESLA_K20M` reproduces the fields that the
ConVGPU wrapper module actually consults:

- ``total_global_mem`` — the shared pool the scheduler partitions;
- ``texture_pitch_alignment`` / ``pitch_granularity`` — used by the wrapper
  to pre-compute the adjusted size of ``cudaMallocPitch`` requests (§III-C);
- ``hyper_q_width`` — 32 concurrent kernels (§IV-A), which is what lets
  multiple containers make progress on one device;
- ``managed_granularity`` — ``cudaMallocManaged`` "allocates memory size
  which is multiple of 128 MiB since it uses mapped memory" (§III-C).

Bandwidth/throughput figures drive the latency model in
:mod:`repro.gpu.latency`; they are public K20m datasheet numbers and only
need to be order-of-magnitude right for the evaluation shapes to hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import GiB, KiB, MiB

__all__ = ["DeviceProperties", "TESLA_K20M", "make_properties"]


@dataclass(frozen=True)
class DeviceProperties:
    """Immutable description of one GPU device.

    Mirrors the subset of ``cudaDeviceProp`` the middleware reads, plus the
    performance parameters our latency model needs.
    """

    name: str
    #: Total device-global memory in bytes (``cudaDeviceProp.totalGlobalMem``).
    total_global_mem: int
    #: Row-pitch granularity applied by ``cudaMallocPitch`` (bytes).
    pitch_granularity: int = 512
    #: ``cudaDeviceProp.texturePitchAlignment``.
    texture_pitch_alignment: int = 32
    #: Base address alignment guaranteed by ``cudaMalloc``.
    allocation_alignment: int = 256
    #: Rounding unit of ``cudaMallocManaged`` mapped allocations.
    managed_granularity: int = 128 * MiB
    #: Number of hardware work queues (Hyper-Q); 32 on Kepler GK110.
    hyper_q_width: int = 32
    #: Streaming multiprocessor count (K20m: 13 SMX).
    multiprocessor_count: int = 13
    #: Core clock in kHz (``cudaDeviceProp.clockRate``).
    clock_rate_khz: int = 705_500
    #: Device memory bandwidth, bytes/second (K20m: ~208 GB/s).
    memory_bandwidth: float = 208e9
    #: Host<->device transfer bandwidth, bytes/second (PCIe 2.0 x16 ~6 GB/s).
    pcie_bandwidth: float = 6e9
    #: Fixed per-transfer launch latency, seconds.
    transfer_latency: float = 10e-6
    #: Fixed kernel launch latency, seconds.
    kernel_launch_latency: float = 7e-6
    #: Peak double-precision throughput, FLOP/s (K20m: 1.17 TFLOP/s).
    peak_flops: float = 1.17e12
    #: CUDA compute capability, e.g. (3, 5) for Kepler GK110.
    compute_capability: tuple[int, int] = (3, 5)
    #: Extra properties for forward compatibility (rarely used).
    extras: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_global_mem <= 0:
            raise ValueError("total_global_mem must be positive")
        for attr in ("pitch_granularity", "allocation_alignment", "managed_granularity"):
            value = getattr(self, attr)
            if value <= 0 or (value & (value - 1)) != 0:
                raise ValueError(f"{attr} must be a positive power of two, got {value}")
        if self.hyper_q_width < 1:
            raise ValueError("hyper_q_width must be >= 1")

    def with_memory(self, total_global_mem: int) -> "DeviceProperties":
        """A copy of these properties with a different memory size."""
        return replace(self, total_global_mem=total_global_mem)


#: The paper's testbed device.  5 GB is treated as 5 GiB; the scheduler's
#: arithmetic only depends on the ratio between this pool and the Table III
#: container sizes, which are power-of-two MiB values.
TESLA_K20M = DeviceProperties(
    name="Tesla K20m",
    total_global_mem=5 * GiB,
)


def make_properties(
    total_mem: int,
    *,
    name: str = "SimGPU",
    hyper_q_width: int = 32,
    pitch_granularity: int = 512,
) -> DeviceProperties:
    """Convenience factory for test devices of arbitrary size."""
    if total_mem < 64 * KiB:
        raise ValueError(f"device unrealistically small: {total_mem} bytes")
    return DeviceProperties(
        name=name,
        total_global_mem=total_mem,
        hyper_q_width=hyper_q_width,
        pitch_granularity=pitch_granularity,
    )
