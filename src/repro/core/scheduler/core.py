"""The GPU memory scheduler — ConVGPU's core decision engine (§III-D).

"GPU memory scheduler determines to accept, pause, or reject every GPU
memory allocation from the containers."  This class is the transport-free
heart of the middleware: the daemon (live mode) and the simulation runner
both drive exactly this object, so the algorithmic behaviour measured in
Fig. 7/8 is the behaviour unit-tested here.

Semantics implemented (normative statement in DESIGN.md §6):

- registration assigns ``min(limit, unreserved)`` immediately (Fig. 3b);
- an allocation is **granted** when it fits in the container's assigned
  memory, **paused** when it exceeds assigned but not the declared limit
  (Fig. 3c), **rejected** beyond the limit;
- the first allocation of each pid is charged an extra 66 MiB — the CUDA
  context overhead the paper reverse-engineered;
- grants are held as *inflight* reservations until the wrapper commits the
  real device address, closing the check-then-allocate race;
- when reserved memory returns to the pool (container exit), the configured
  policy repeatedly picks a paused container and tops its reservation up
  toward the limit (§III-E walks through this exact scenario);
- a paused allocation resumes when it fits into the (possibly enlarged)
  reservation; resumption callbacks deliver the withheld replies;
- "Each step is protected by a mutex lock to prevent the race condition."
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    EventLog,
    MemoryAssigned,
    ProcessExited,
    ReservationReclaimed,
)
from repro.core.scheduler.policies import SchedulingPolicy
from repro.core.scheduler.records import (
    AllocationRecord,
    ContainerRecord,
    PendingAllocation,
)
from repro.errors import LimitExceededError, SchedulerError, UnknownContainerError
from repro.obs.metrics import DURATION_BUCKETS, REGISTRY
from repro.units import MiB, format_size

__all__ = ["Decision", "GpuMemoryScheduler", "CONTEXT_OVERHEAD_CHARGE"]

#: What §III-D charges per pid on its first allocation: 64 MiB process data
#: + 2 MiB context.
CONTEXT_OVERHEAD_CHARGE: int = 66 * MiB

# Process-global instrumentation, shared by every scheduler instance (the
# daemon runs exactly one; simulation sweeps accumulate across runs).
# Module-level handles keep the hot path at a dict-free counter increment.
_DECISIONS = REGISTRY.counter(
    "convgpu_alloc_decisions_total",
    "Allocation decisions by outcome (grant/pause/reject)",
    labelnames=("decision",),
)
_PAUSE_SECONDS = REGISTRY.histogram(
    "convgpu_pause_duration_seconds",
    "Time an allocation spent paused before resuming (or failing)",
    buckets=DURATION_BUCKETS,
)
# Label resolution (a family lock + dict lookup) is paid once at import;
# each decision then costs a single Counter.inc / Histogram.observe.
_GRANTS = _DECISIONS.labels(decision="grant")
_PAUSES = _DECISIONS.labels(decision="pause")
_REJECTS = _DECISIONS.labels(decision="reject")
_PAUSE_WAITS = _PAUSE_SECONDS.labels()


class Decision:
    """Outcome of an allocation request."""

    GRANT = "grant"
    PAUSE = "pause"
    REJECT = "reject"

    __slots__ = ("kind", "reason")

    def __init__(self, kind: str, reason: str = "") -> None:
        self.kind = kind
        self.reason = reason

    @property
    def granted(self) -> bool:
        return self.kind == Decision.GRANT

    @property
    def paused(self) -> bool:
        return self.kind == Decision.PAUSE

    @property
    def rejected(self) -> bool:
        return self.kind == Decision.REJECT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" ({self.reason})" if self.reason else ""
        return f"<Decision {self.kind}{suffix}>"


class GpuMemoryScheduler:
    """Transport-independent scheduler state machine.

    Args:
        total_memory: size of the physical GPU pool being partitioned.
        policy: redistribution strategy (one of the paper's four, or an
            ablation policy).
        clock: time source for event timestamps and suspension accounting
            (wall clock in live mode, the DES clock in simulations).
        context_overhead: per-pid first-allocation charge; the ablation
            bench sets this to 0 to show why the estimate matters.
        resume_mode: ``"fit"`` (default; resume as soon as the pending
            allocation fits the reservation) or ``"full"`` (resume only
            once the reservation reaches the declared limit — the stricter
            reading of Fig. 3d, kept for the ablation).
    """

    def __init__(
        self,
        total_memory: int,
        policy: SchedulingPolicy,
        *,
        clock: Callable[[], float] | None = None,
        context_overhead: int = CONTEXT_OVERHEAD_CHARGE,
        resume_mode: str = "fit",
    ) -> None:
        if total_memory <= 0:
            raise SchedulerError(f"total_memory must be positive: {total_memory}")
        if resume_mode not in ("fit", "full"):
            raise SchedulerError(f"unknown resume_mode {resume_mode!r}")
        if context_overhead < 0:
            raise SchedulerError("context_overhead must be >= 0")
        self.total_memory = total_memory
        self.policy = policy
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.context_overhead = context_overhead
        self.resume_mode = resume_mode
        self.log = EventLog()
        self._lock = threading.RLock()
        self._containers: dict[str, ContainerRecord] = {}
        self._seq = 0
        #: Set by SchedulerJournal.attach(); None when running unjournaled.
        self.journal: Any = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def reserved(self) -> int:
        """Sum of all live reservations."""
        with self._lock:
            return sum(c.assigned for c in self._containers.values() if not c.closed)

    @property
    def unreserved(self) -> int:
        """Physical memory not promised to any container."""
        return self.total_memory - self.reserved

    def container(self, container_id: str) -> ContainerRecord:
        with self._lock:
            record = self._containers.get(container_id)
            if record is None:
                raise UnknownContainerError(f"unknown container {container_id!r}")
            return record

    def containers(self, *, include_closed: bool = False) -> list[ContainerRecord]:
        with self._lock:
            records = list(self._containers.values())
        if not include_closed:
            records = [r for r in records if not r.closed]
        return sorted(records, key=lambda r: r.created_seq)

    def paused_containers(self) -> list[ContainerRecord]:
        return [r for r in self.containers() if r.paused]

    def check_invariants(self) -> None:
        """Assert global accounting invariants (property tests lean on this)."""
        with self._lock:
            reserved = 0
            for record in self._containers.values():
                if record.closed:
                    if record.assigned or record.used or record.inflight:
                        raise SchedulerError(
                            f"{record.container_id}: closed but holds memory"
                        )
                    continue
                if not 0 <= record.assigned <= record.limit:
                    raise SchedulerError(
                        f"{record.container_id}: assigned {record.assigned} "
                        f"outside [0, {record.limit}]"
                    )
                if record.used + record.inflight > record.assigned:
                    raise SchedulerError(
                        f"{record.container_id}: used+inflight "
                        f"{record.used + record.inflight} > assigned {record.assigned}"
                    )
                committed = sum(r.size for r in record.allocations.values())
                if committed != record.used:
                    raise SchedulerError(
                        f"{record.container_id}: used {record.used} != "
                        f"sum(allocations) {committed}"
                    )
                reserved += record.assigned
            if reserved > self.total_memory:
                raise SchedulerError(
                    f"over-reserved: {reserved} > {self.total_memory}"
                )

    # ------------------------------------------------------------------
    # registration / teardown
    # ------------------------------------------------------------------

    def register_container(self, container_id: str, limit: int) -> ContainerRecord:
        """Declare a container's limit before it is created (§III-B).

        Immediately reserves ``min(limit, unreserved)`` for it (Fig. 3b);
        the remainder arrives later through redistribution.
        """
        if limit <= 0:
            raise SchedulerError(f"limit must be positive: {limit}")
        if limit > self.total_memory:
            raise LimitExceededError(
                f"limit {format_size(limit)} exceeds GPU capacity "
                f"{format_size(self.total_memory)}"
            )
        with self._lock:
            existing = self._containers.get(container_id)
            if existing is not None and not existing.closed:
                raise SchedulerError(f"container {container_id!r} already registered")
            self._seq += 1
            record = ContainerRecord(
                container_id=container_id,
                limit=limit,
                created_seq=self._seq,
                created_at=self.clock(),
            )
            record.assigned = min(limit, self.unreserved)
            self._containers[container_id] = record
            self.log.append(
                ContainerRegistered(
                    time=record.created_at,
                    container_id=container_id,
                    limit=limit,
                    assigned=record.assigned,
                )
            )
            return record

    def container_exit(self, container_id: str) -> int:
        """The nvidia-docker-plugin's *close* signal (§III-B).

        Clears every record of the container, fails any still-pending
        allocations (their processes are gone anyway, but the reply handles
        must not leak), returns the reservation to the pool, and triggers
        redistribution.  Returns the bytes reclaimed.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        with self._lock:
            record = self._containers.get(container_id)
            if record is None or record.closed:
                return 0
            now = self.clock()
            reclaimed = record.assigned
            # Fail pending replies in-band before dropping state.
            for pending in record.pending:
                record.suspended_total += now - pending.requested_at
                _PAUSE_WAITS.observe(now - pending.requested_at)
                if pending.resume is not None:
                    resumptions.append(
                        (pending.resume, {"decision": "reject", "reason": "container exited"})
                    )
            record.pending.clear()
            record.allocations.clear()
            record.used = 0
            record.inflight = 0
            record.assigned = 0
            record.closed = True
            self.log.append(
                ContainerClosed(
                    time=now,
                    container_id=container_id,
                    reclaimed=reclaimed,
                    suspended_total=record.suspended_total,
                )
            )
            resumptions.extend(self._redistribute())
            resumptions.extend(self._resolve_wedge())
        self._deliver(resumptions)
        return reclaimed

    # ------------------------------------------------------------------
    # the allocation protocol (wrapper-facing)
    # ------------------------------------------------------------------

    def request_allocation(
        self,
        container_id: str,
        pid: int,
        size: int,
        api: str = "cudaMalloc",
        on_resume: Callable[[dict[str, Any]], None] | None = None,
    ) -> Decision:
        """The wrapper's pre-allocation size check (§III-C step 1).

        Returns GRANT/REJECT immediately; returns PAUSE after queueing the
        request, in which case ``on_resume`` will eventually be called with
        the withheld reply payload (grant or reject).
        """
        if size <= 0:
            raise SchedulerError(f"allocation size must be positive: {size}")
        with self._lock:
            record = self._require_open(container_id)
            if on_resume is not None and self._adopt_orphan(
                record, pid, size, api, on_resume
            ):
                return Decision(Decision.PAUSE)
            now = self.clock()
            effective = record.effective_size(pid, size, self.context_overhead)
            charges_overhead = effective != size
            if record.used + record.inflight + effective > record.limit:
                self.log.append(
                    AllocationRejected(
                        time=now,
                        container_id=container_id,
                        pid=pid,
                        size=size,
                        reason="exceeds container limit",
                    )
                )
                _REJECTS.inc()
                return Decision(Decision.REJECT, "exceeds container limit")
            if charges_overhead:
                record.pids_charged.add(pid)
                record.overhead_pending.add(pid)
            if (
                not record.paused
                and record.used + record.inflight + effective <= record.assigned
            ):
                self._grant(record, pid, effective, size, api, now)
                _GRANTS.inc()
                return Decision(Decision.GRANT)
            # Valid but under-assigned (or behind earlier pending requests):
            # withhold the reply.  Fig. 3c.
            record.pending.append(
                PendingAllocation(
                    pid=pid,
                    size=effective,
                    requested_size=size,
                    api=api,
                    requested_at=now,
                    resume=on_resume,
                )
            )
            record.last_suspended_at = now
            record.pause_count += 1
            self.log.append(
                AllocationPaused(
                    time=now, container_id=container_id, pid=pid, size=size, api=api
                )
            )
            _PAUSES.inc()
            # This pause may have been the last runnable container going
            # idle: check for the all-paused wedge and break it if so.
            resumptions = self._resolve_wedge()
        self._deliver(resumptions)
        return Decision(Decision.PAUSE)

    def _adopt_orphan(
        self,
        record: ContainerRecord,
        pid: int,
        size: int,
        api: str,
        on_resume: Callable[[dict[str, Any]], None],
    ) -> bool:
        """Re-attach a reconnecting wrapper to its pre-crash pending entry.

        After :func:`~repro.core.scheduler.journal.restore` the pending
        queue is rebuilt from the journal but its ``resume`` callbacks are
        gone (they wrapped the dead daemon's sockets).  When the wrapper's
        retry loop re-issues the identical ``alloc_request``, we adopt the
        orphaned entry — keeping its original queue position and
        ``requested_at`` timestamp — instead of double-queueing the request.
        No event is logged: the pause already is in the journal.

        Caller holds the lock.  Returns True when an orphan was adopted.
        """
        for pending in record.pending:
            if (
                pending.resume is None
                and pending.pid == pid
                and pending.requested_size == size
                and pending.api == api
            ):
                pending.resume = on_resume
                return True
        return False

    def _grant(
        self,
        record: ContainerRecord,
        pid: int,
        effective: int,
        size: int,
        api: str,
        now: float,
    ) -> None:
        record.inflight += effective
        self.log.append(
            AllocationGranted(
                time=now,
                container_id=record.container_id,
                pid=pid,
                size=size,
                api=api,
            )
        )

    def commit_allocation(
        self, container_id: str, pid: int, address: int, size: int
    ) -> None:
        """The wrapper's post-allocation report: address + pid + size.

        Moves the inflight reservation to committed usage and records the
        address in the hash structure.  The first commit of a pid also
        materializes its context-overhead record.
        """
        with self._lock:
            record = self._require_open(container_id)
            now = self.clock()
            if address in record.allocations:
                raise SchedulerError(
                    f"duplicate commit for address {address:#x} in {container_id}"
                )
            overhead = 0
            overhead_key = self._overhead_key(pid)
            if pid in record.overhead_pending:
                overhead = self.context_overhead
                record.overhead_pending.discard(pid)
            total = size + overhead
            if total > record.inflight:
                raise SchedulerError(
                    f"commit of {format_size(total)} exceeds inflight "
                    f"{format_size(record.inflight)} in {container_id}"
                )
            record.inflight -= total
            record.used += total
            record.allocations[address] = AllocationRecord(
                address=address, pid=pid, size=size
            )
            if overhead:
                record.allocations[overhead_key] = AllocationRecord(
                    address=overhead_key,
                    pid=pid,
                    size=overhead,
                    is_context_overhead=True,
                )
            self.log.append(
                AllocationCommitted(
                    time=now,
                    container_id=container_id,
                    pid=pid,
                    address=address,
                    size=size,
                )
            )

    def abort_allocation(self, container_id: str, pid: int, size: int) -> None:
        """The wrapper reports that the *native* allocation failed.

        Rolls the inflight reservation back (including the overhead charge
        when the pid has no committed allocation yet), then re-checks this
        container's own pending queue — the freed headroom may unblock it.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        with self._lock:
            record = self._require_open(container_id)
            now = self.clock()
            effective = size
            if pid in record.overhead_pending:
                effective += self.context_overhead
                record.overhead_pending.discard(pid)
                record.pids_charged.discard(pid)
            if effective > record.inflight:
                raise SchedulerError(
                    f"abort of {format_size(effective)} exceeds inflight "
                    f"{format_size(record.inflight)} in {container_id}"
                )
            record.inflight -= effective
            self.log.append(
                AllocationAborted(
                    time=now, container_id=container_id, pid=pid, size=size
                )
            )
            resumptions.extend(self._try_resume(record))
            resumptions.extend(self._resolve_wedge())
        self._deliver(resumptions)

    def release_allocation(self, container_id: str, pid: int, address: int) -> int:
        """``cudaFree`` path: drop the hash entry, shrink usage (§III-C).

        Freed bytes stay inside the container's reservation (the guarantee
        is for the container's lifetime) but may resume the container's own
        pending allocations.  Returns the released size.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        with self._lock:
            record = self._require_open(container_id)
            now = self.clock()
            allocation = record.allocations.pop(address, None)
            if allocation is None:
                raise SchedulerError(
                    f"release of unknown address {address:#x} in {container_id}"
                )
            record.used -= allocation.size
            self.log.append(
                AllocationReleased(
                    time=now,
                    container_id=container_id,
                    pid=pid,
                    address=address,
                    size=allocation.size,
                )
            )
            resumptions.extend(self._try_resume(record))
            resumptions.extend(self._resolve_wedge())
        self._deliver(resumptions)
        return allocation.size

    def process_exit(self, container_id: str, pid: int) -> int:
        """``__cudaUnregisterFatBinary`` path (§III-C/D).

        Drops *all* allocation records of the pid — "some program may not
        free its allocated GPU memory" — including its context-overhead
        charge.  Returns the bytes reclaimed into the reservation.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        with self._lock:
            record = self._require_open(container_id)
            now = self.clock()
            doomed = [a for a in record.allocations.values() if a.pid == pid]
            reclaimed = sum(a.size for a in doomed)
            for allocation in doomed:
                del record.allocations[allocation.address]
            record.used -= reclaimed
            record.pids_charged.discard(pid)
            record.overhead_pending.discard(pid)
            self.log.append(
                ProcessExited(
                    time=now, container_id=container_id, pid=pid, reclaimed=reclaimed
                )
            )
            resumptions.extend(self._try_resume(record))
            resumptions.extend(self._resolve_wedge())
        self._deliver(resumptions)
        return reclaimed

    def mem_get_info(self, container_id: str, pid: int) -> tuple[int, int]:
        """The container's virtualized ``cudaMemGetInfo`` view (§IV-B).

        The scheduler "already knows the return value of the API without
        using the original CUDA API": free = limit − used, total = limit —
        the container sees its slice, not the physical device.
        """
        with self._lock:
            record = self._require_open(container_id)
            return record.limit - record.used - record.inflight, record.limit

    # ------------------------------------------------------------------
    # redistribution + resumption
    # ------------------------------------------------------------------

    def _redistribute(self):
        """Hand unreserved memory to paused containers via the policy.

        Caller holds the lock.  Returns the resume deliveries to perform
        outside the lock.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        now = self.clock()
        while True:
            free = self.unreserved
            if free <= 0:
                break
            candidates = [
                r for r in self._containers.values()
                if not r.closed and r.paused and r.insufficiency > 0
            ]
            if not candidates:
                break
            chosen = self.policy.select(candidates, free)
            amount = min(chosen.insufficiency, free)
            if amount <= 0:  # defensive; insufficiency > 0 was filtered
                break
            chosen.assigned += amount
            self.log.append(
                MemoryAssigned(
                    time=now,
                    container_id=chosen.container_id,
                    amount=amount,
                    assigned_total=chosen.assigned,
                    policy=self.policy.name,
                )
            )
            resumptions.extend(self._try_resume(chosen))
        return resumptions

    def _resolve_wedge(self):
        """Break the all-paused reservation wedge (deadlock prevention, §I).

        Partial reservations (registration grants and policy leftovers,
        Fig. 3b/3d) can reach a state where *every* open container is
        paused and every byte is reserved — nobody can run, nobody will
        exit, nothing will ever be redistributed.  The paper asserts its
        algorithms "can prevent the system from falling into deadlock
        situations"; the mechanism we implement for that guarantee is:

        when no open container is runnable, reclaim the *idle* part of
        every paused container's reservation (memory they cannot use —
        their head request exceeds it by definition) back into the pool and
        re-run the policy loop, which then completes containers one at a
        time instead of leaving everyone starved.

        Caller holds the lock; returns resume deliveries.
        """
        open_records = [r for r in self._containers.values() if not r.closed]
        if not open_records or any(not r.paused for r in open_records):
            return []
        reclaimed = 0
        now = self.clock()
        for record in open_records:
            idle = record.assigned - record.used - record.inflight
            if idle > 0:
                record.assigned -= idle
                reclaimed += idle
                self.log.append(
                    ReservationReclaimed(
                        time=now,
                        container_id=record.container_id,
                        amount=idle,
                        assigned_total=record.assigned,
                    )
                )
        if reclaimed == 0:
            return []
        return self._redistribute()

    def _try_resume(self, record: ContainerRecord):
        """Resume the head of the pending queue while it fits.

        Pending requests resume strictly in order — the wrapper blocks the
        calling thread per request, so out-of-order resumption cannot
        happen on the real socket either.  Caller holds the lock; returns
        the deliveries to perform outside it.
        """
        resumptions: list[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]] = []
        now = self.clock()
        while record.pending:
            head = record.pending[0]
            if self.resume_mode == "full" and record.assigned < record.limit:
                break
            if record.used + record.inflight + head.size > record.assigned:
                break
            record.pending.pop(0)
            waited = now - head.requested_at
            record.suspended_total += waited
            _PAUSE_WAITS.observe(waited)
            self._grant(
                record, head.pid, head.size, head.requested_size, head.api, now
            )
            self.log.append(
                AllocationResumed(
                    time=now,
                    container_id=record.container_id,
                    pid=head.pid,
                    size=head.requested_size,
                    waited=waited,
                )
            )
            if head.resume is not None:
                resumptions.append((head.resume, {"decision": "grant"}))
        return resumptions

    @staticmethod
    def _deliver(
        resumptions: Iterable[tuple[Callable[[dict[str, Any]], None], dict[str, Any]]],
    ) -> None:
        """Run resume callbacks outside the mutex (they may do socket I/O)."""
        for callback, payload in resumptions:
            callback(payload)

    # ------------------------------------------------------------------

    def _require_open(self, container_id: str) -> ContainerRecord:
        record = self._containers.get(container_id)
        if record is None:
            raise UnknownContainerError(f"unknown container {container_id!r}")
        if record.closed:
            raise UnknownContainerError(f"container {container_id!r} already closed")
        return record

    @staticmethod
    def _overhead_key(pid: int) -> int:
        """Synthetic hash key for a pid's context-overhead record.

        Negative so it can never collide with a real device address.
        """
        return -pid
