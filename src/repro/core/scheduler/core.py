"""The GPU memory scheduler runtime — ConVGPU's core engine (§III-D).

"GPU memory scheduler determines to accept, pause, or reject every GPU
memory allocation from the containers."  Since the core/runtime split
(DESIGN.md §11) this module is the *runtime* half: a thin
:class:`GpuMemoryScheduler` facade that wraps the pure transition core
(:class:`~repro.core.scheduler.state.SchedulerState`) with everything the
paper's "each step is protected by a mutex lock" sentence implies in a
live daemon — and nothing more:

- the mutex is held **only** across the state transition and the in-memory
  event-log append (both allocation-free bookkeeping);
- every effect the transition returns is executed *after* the lock is
  released: journal durability (``journal.wait_durable()``, the
  group-commit handshake), metrics, and the resume-callback deliveries
  that perform socket I/O.

That ordering keeps the WAL guarantee of PR 1 — a decision is durable
before its reply (or any resumed reply) leaves the daemon — while an fsync
no longer serializes unrelated allocation decisions: appends are batched
by the journal's writer thread and many transitions share one disk flush.

The algorithmic behaviour measured in Fig. 7/8 lives entirely in the pure
core and is pinned byte-for-byte by ``tests/core/test_golden_traces.py``;
the daemon (live mode) and the simulation runner both drive exactly this
facade.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.core.scheduler.events import EventLog
from repro.core.scheduler.policies import SchedulingPolicy
from repro.core.scheduler.records import ContainerRecord
from repro.core.scheduler.state import (
    CONTEXT_OVERHEAD_CHARGE,
    Decision,
    SchedulerState,
    Transition,
)
from repro.obs import stages as _stages
from repro.obs.metrics import DURATION_BUCKETS, REGISTRY
from repro.obs.recorder import RECORDER

__all__ = ["Decision", "GpuMemoryScheduler", "CONTEXT_OVERHEAD_CHARGE"]

_perf_counter = time.perf_counter

# Process-global instrumentation, shared by every scheduler instance (the
# daemon runs exactly one; simulation sweeps accumulate across runs).
# Module-level handles keep the hot path at a dict-free counter increment.
_DECISIONS = REGISTRY.counter(
    "convgpu_alloc_decisions_total",
    "Allocation decisions by outcome (grant/pause/reject)",
    labelnames=("decision",),
)
_PAUSE_SECONDS = REGISTRY.histogram(
    "convgpu_pause_duration_seconds",
    "Time an allocation spent paused before resuming (or failing)",
    buckets=DURATION_BUCKETS,
)
# Label resolution (a family lock + dict lookup) is paid once at import;
# each decision then costs a single Counter.inc / Histogram.observe.
_GRANTS = _DECISIONS.labels(decision="grant")
_PAUSES = _DECISIONS.labels(decision="pause")
_REJECTS = _DECISIONS.labels(decision="reject")
_PAUSE_WAITS = _PAUSE_SECONDS.labels()

# Flight-recorder events for the *rare* transitions only (pause/reject and
# resume deliveries) — grants are the hot path and stay out of the ring.
# Module alias so the obs-overhead benchmark can stub it by (module, name).
_REC = RECORDER
_EV_PAUSE = RECORDER.declare("sched.pause", s="container")
_EV_REJECT = RECORDER.declare("sched.reject", s="container")
_EV_RESUME = RECORDER.declare("sched.resume", a="resumed")


def _container_of(transition: Transition) -> str:
    for event in transition.events:
        container_id = getattr(event, "container_id", "")
        if container_id:
            return container_id
    return ""


class GpuMemoryScheduler:
    """Transport-independent scheduler: pure core + effects runtime.

    Args:
        total_memory: size of the physical GPU pool being partitioned.
        policy: redistribution strategy (one of the paper's four, or an
            ablation policy).
        clock: time source for event timestamps and suspension accounting
            (wall clock in live mode, the DES clock in simulations).
        context_overhead: per-pid first-allocation charge; the ablation
            bench sets this to 0 to show why the estimate matters.
        resume_mode: ``"fit"`` (default; resume as soon as the pending
            allocation fits the reservation) or ``"full"`` (resume only
            once the reservation reaches the declared limit — the stricter
            reading of Fig. 3d, kept for the ablation).

    The public API (``register_container`` … ``process_exit``) is the
    seed's, verb for verb; every call is one locked transition on
    ``self.state`` followed by its unlocked effects.
    """

    def __init__(
        self,
        total_memory: int,
        policy: SchedulingPolicy,
        *,
        clock: Callable[[], float] | None = None,
        context_overhead: int = CONTEXT_OVERHEAD_CHARGE,
        resume_mode: str = "fit",
    ) -> None:
        self.state = SchedulerState(
            total_memory,
            policy,
            context_overhead=context_overhead,
            resume_mode=resume_mode,
        )
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.log = EventLog()
        self._lock = threading.RLock()
        #: Set by SchedulerJournal.attach(); None when running unjournaled.
        self.journal: Any = None
        #: Per-thread batch buffer (``begin_batch``/``commit_batch``).  Each
        #: transport worker dispatches one connection's frame batch on one
        #: thread, so thread-local state is exactly per-batch state.
        self._batch = threading.local()

    # -- configuration passthrough (journal meta + callers read these) -----

    @property
    def total_memory(self) -> int:
        return self.state.total_memory

    @property
    def policy(self) -> SchedulingPolicy:
        return self.state.policy

    @property
    def context_overhead(self) -> int:
        return self.state.context_overhead

    @property
    def resume_mode(self) -> str:
        return self.state.resume_mode

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def reserved(self) -> int:
        """Sum of all live reservations."""
        with self._lock:
            return self.state.reserved

    @property
    def unreserved(self) -> int:
        """Physical memory not promised to any container."""
        with self._lock:
            return self.state.unreserved

    def container(self, container_id: str) -> ContainerRecord:
        with self._lock:
            return self.state.container(container_id)

    def containers(self, *, include_closed: bool = False) -> list[ContainerRecord]:
        with self._lock:
            records = [
                r
                for r in self.state.records()
                if include_closed or not r.closed
            ]
        return sorted(records, key=lambda r: r.created_seq)

    def paused_containers(self) -> list[ContainerRecord]:
        # One consistent snapshot under a single lock acquisition (the seed
        # filtered the result of containers(), taking the lock twice and
        # allowing a resume to slip between the two reads).
        with self._lock:
            records = [
                r for r in self.state.records() if not r.closed and r.paused
            ]
        return sorted(records, key=lambda r: r.created_seq)

    def check_invariants(self) -> None:
        """Assert global accounting invariants (property tests lean on this)."""
        with self._lock:
            self.state.check_invariants()

    def mem_get_info(self, container_id: str, pid: int) -> tuple[int, int]:
        """The container's virtualized ``cudaMemGetInfo`` view (§IV-B)."""
        with self._lock:
            return self.state.mem_get_info(container_id, pid)

    # ------------------------------------------------------------------
    # transitions (the wrapper/plugin-facing verbs)
    # ------------------------------------------------------------------

    def _transact(self, fn: Callable[[], Transition]) -> Transition:
        """One locked transition + publish, then the unlocked effects.

        When the transport armed a stage clock for this request
        (:func:`repro.obs.stages.current`), the lock wait and the
        transition's critical section are attributed to the ``lock`` and
        ``transition`` stages; with no clock armed anywhere the cost over
        the previous inline form is one module-attribute read and three
        predictable branches.
        """
        clock = _stages.current() if _stages.ARMED_CLOCKS else None
        timed = clock is not None
        began = _perf_counter() if timed else 0.0
        with self._lock:
            acquired = _perf_counter() if timed else 0.0
            transition = fn()
            self._publish(transition)
            done = _perf_counter() if timed else 0.0
        if timed:
            clock.add(_stages.S_LOCK, acquired - began)
            clock.add(_stages.S_TRANSITION, done - acquired)
        self._finish(transition)
        return transition

    def register_container(self, container_id: str, limit: int) -> ContainerRecord:
        """Declare a container's limit before it is created (§III-B)."""
        return self._transact(
            lambda: self.state.register(container_id, limit, self.clock())
        ).value

    def container_exit(self, container_id: str) -> int:
        """The nvidia-docker-plugin's *close* signal (§III-B).

        Returns the bytes reclaimed into the pool.
        """
        return self._transact(
            lambda: self.state.container_exit(container_id, self.clock())
        ).value

    def request_allocation(
        self,
        container_id: str,
        pid: int,
        size: int,
        api: str = "cudaMalloc",
        on_resume: Callable[[dict[str, Any]], None] | None = None,
    ) -> Decision:
        """The wrapper's pre-allocation size check (§III-C step 1).

        Returns GRANT/REJECT immediately; returns PAUSE after queueing the
        request, in which case ``on_resume`` will eventually be called with
        the withheld reply payload (grant or reject).
        """
        return self._transact(
            lambda: self.state.request(
                container_id, pid, size, api, on_resume, self.clock()
            )
        ).value

    def commit_allocation(
        self, container_id: str, pid: int, address: int, size: int
    ) -> None:
        """The wrapper's post-allocation report: address + pid + size."""
        self._transact(
            lambda: self.state.commit(container_id, pid, address, size, self.clock())
        )

    def abort_allocation(self, container_id: str, pid: int, size: int) -> None:
        """The wrapper reports that the *native* allocation failed."""
        self._transact(
            lambda: self.state.abort(container_id, pid, size, self.clock())
        )

    def release_allocation(self, container_id: str, pid: int, address: int) -> int:
        """``cudaFree`` path (§III-C).  Returns the released size."""
        return self._transact(
            lambda: self.state.release(container_id, pid, address, self.clock())
        ).value

    def process_exit(self, container_id: str, pid: int) -> int:
        """``__cudaUnregisterFatBinary`` path (§III-C/D).

        Returns the bytes reclaimed into the reservation.
        """
        return self._transact(
            lambda: self.state.process_exit(container_id, pid, self.clock())
        ).value

    # ------------------------------------------------------------------
    # the effects runtime
    # ------------------------------------------------------------------

    def _publish(self, transition: Transition) -> None:
        """Append the transition's events to the log (caller holds the lock).

        EventLog listeners run here — under the lock — which for an
        attached journal means *enqueueing* the events on the group-commit
        writer, preserving the global event order at queue-append cost.
        The disk write, flush and fsync all happen on the writer thread.
        """
        for event in transition.events:
            self.log.append(event)

    def begin_batch(self) -> None:
        """Enter batch mode on the calling thread (re-entrant).

        Until the matching :meth:`commit_batch`, every transition's
        durability wait and resume-callback deliveries are deferred into a
        per-thread buffer.  The transport's batch dispatcher brackets one
        readable event's worth of frames with these calls, so N pipelined
        decisions share a single group-commit handshake with the journal
        writer instead of paying one ``wait_durable`` round-trip each —
        and still no reply (direct or resumed) leaves before every
        decision in the batch is on disk.
        """
        depth = getattr(self._batch, "depth", 0)
        if depth == 0:
            self._batch.pending = []
        self._batch.depth = depth + 1

    def commit_batch(self) -> None:
        """Flush the calling thread's deferred effects (one durability wait)."""
        depth = getattr(self._batch, "depth", 0)
        if depth == 0:
            return
        self._batch.depth = depth - 1
        if depth > 1:
            return
        pending, self._batch.pending = self._batch.pending, []
        journal = self.journal
        if journal is not None and any(t.events for t in pending):
            # One wait covers the whole batch: the writer thread drains every
            # enqueued event up to (at least) the last one in strict order,
            # so durability of the last implies durability of all.
            journal.wait_durable()
        resumed = 0
        for transition in pending:
            for callback, payload in transition.resumptions:
                callback(payload)
                resumed += 1
        if resumed:
            _REC.record(_EV_RESUME, a=resumed)

    def _finish(self, transition: Transition) -> None:
        """Execute the transition's effects outside the mutex.

        Order matters: durability first (WAL — no reply, resumed or
        direct, may leave before its decision is on disk), then metrics,
        then the resume callbacks (which may do socket I/O).  Inside a
        :meth:`begin_batch` window the durability wait and the resume
        deliveries are deferred to :meth:`commit_batch`; metrics are not
        reply-ordered, so they stay immediate either way.
        """
        batching = getattr(self._batch, "depth", 0) > 0
        if not batching:
            journal = self.journal
            if journal is not None and transition.events:
                clock = _stages.current() if _stages.ARMED_CLOCKS else None
                if clock is None:
                    journal.wait_durable()
                else:
                    began = _perf_counter()
                    journal.wait_durable()
                    clock.add(_stages.S_FSYNC, _perf_counter() - began)
        # Read the handles through the module globals each time so the
        # obs-overhead benchmark can stub them by (module, name).
        if transition.metric == Decision.GRANT:
            _GRANTS.inc()
        elif transition.metric == Decision.PAUSE:
            _PAUSES.inc()
            _REC.record(_EV_PAUSE, s=_container_of(transition))
        elif transition.metric == Decision.REJECT:
            _REJECTS.inc()
            _REC.record(_EV_REJECT, s=_container_of(transition))
        for waited in transition.waits:
            _PAUSE_WAITS.observe(waited)
        if batching:
            self._batch.pending.append(transition)
            return
        resumed = 0
        for callback, payload in transition.resumptions:
            callback(payload)
            resumed += 1
        if resumed:
            _REC.record(_EV_RESUME, a=resumed)

    # ------------------------------------------------------------------
    # compatibility shims (journal replay, tests, stats)
    # ------------------------------------------------------------------

    @property
    def _containers(self) -> dict[str, ContainerRecord]:
        return self.state._containers

    @property
    def _seq(self) -> int:
        return self.state._seq

    @staticmethod
    def _overhead_key(pid: int) -> int:
        return SchedulerState._overhead_key(pid)
