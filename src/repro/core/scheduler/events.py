"""Structured event log of the scheduler.

Every externally visible decision is appended as a typed event, giving the
tests a precise oracle (e.g. "exactly one pause, resumed at t=30, after a
redistribution triggered by container B's exit") and giving the experiment
drivers the raw material for the Fig. 8 suspended-time aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, TypeVar

__all__ = [
    "SchedulerEvent",
    "ContainerRegistered",
    "AllocationGranted",
    "AllocationPaused",
    "AllocationResumed",
    "AllocationRejected",
    "AllocationCommitted",
    "AllocationReleased",
    "AllocationAborted",
    "MemoryAssigned",
    "ReservationReclaimed",
    "ProcessExited",
    "ContainerClosed",
    "EventLog",
]


@dataclass(frozen=True)
class SchedulerEvent:
    """Base event: when it happened and which container it concerns."""

    time: float
    container_id: str


@dataclass(frozen=True)
class ContainerRegistered(SchedulerEvent):
    limit: int
    assigned: int


@dataclass(frozen=True)
class AllocationGranted(SchedulerEvent):
    pid: int
    size: int
    api: str


@dataclass(frozen=True)
class AllocationPaused(SchedulerEvent):
    pid: int
    size: int
    api: str


@dataclass(frozen=True)
class AllocationResumed(SchedulerEvent):
    pid: int
    size: int
    waited: float


@dataclass(frozen=True)
class AllocationRejected(SchedulerEvent):
    pid: int
    size: int
    reason: str


@dataclass(frozen=True)
class AllocationCommitted(SchedulerEvent):
    pid: int
    address: int
    size: int


@dataclass(frozen=True)
class AllocationReleased(SchedulerEvent):
    pid: int
    address: int
    size: int


@dataclass(frozen=True)
class AllocationAborted(SchedulerEvent):
    pid: int
    size: int


@dataclass(frozen=True)
class MemoryAssigned(SchedulerEvent):
    """Redistribution: ``amount`` bytes moved to this container's reservation."""

    amount: int
    assigned_total: int
    policy: str


@dataclass(frozen=True)
class ReservationReclaimed(SchedulerEvent):
    """Wedge-breaking: idle reservation pulled back from a paused container."""

    amount: int
    assigned_total: int


@dataclass(frozen=True)
class ProcessExited(SchedulerEvent):
    pid: int
    reclaimed: int


@dataclass(frozen=True)
class ContainerClosed(SchedulerEvent):
    reclaimed: int
    suspended_total: float


E = TypeVar("E", bound=SchedulerEvent)


@dataclass
class EventLog:
    """Append-only event sink with typed filtering.

    ``listeners`` are called synchronously on every append (inside the
    scheduler's lock), so they must be cheap: the write-ahead journal
    subscribes here but only *enqueues* the event for its group-commit
    writer thread — the disk write, flush and fsync happen off-lock, and
    the runtime facade waits for durability after releasing the lock,
    before any reply leaves the daemon (DESIGN.md §11).
    """

    events: list[SchedulerEvent] = field(default_factory=list)
    listeners: list = field(default_factory=list, compare=False, repr=False)

    def append(self, event: SchedulerEvent) -> None:
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    def of_type(self, event_type: type[E]) -> list[E]:
        return [e for e in self.events if isinstance(e, event_type)]

    def for_container(self, container_id: str) -> list[SchedulerEvent]:
        return [e for e in self.events if e.container_id == container_id]

    def __iter__(self) -> Iterator[SchedulerEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
