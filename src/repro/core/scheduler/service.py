"""Protocol service: binds the scheduler core to any IPC transport.

The handler below implements the ``handler(message, reply_handle) ->
reply | DEFER`` contract shared by :class:`repro.ipc.UnixSocketServer`,
:class:`repro.ipc.TcpSocketServer` and :class:`repro.ipc.InProcessChannel`.
A paused allocation is expressed as ``DEFER``: the reply handle is captured
into the scheduler's pending record and completed when redistribution (or a
release) resumes the container — at which point the wrapper's blocked
``recv`` wakes up.

The resume closure below performs socket I/O, which is safe because the
scheduler runtime delivers resume callbacks *outside* its transition lock
and only after the triggering events are journal-durable (DESIGN.md §11)
— a slow or dead client can never stall a scheduling decision.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.core.scheduler.core import Decision, GpuMemoryScheduler
from repro.errors import (
    ClusterError,
    LimitExceededError,
    SchedulerError,
    UnknownContainerError,
)
from repro.ipc import protocol
from repro.ipc.unix_socket import DEFER
from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY
from repro.obs.trace import Tracer, extract_context

__all__ = ["SchedulerService"]

_MESSAGES = REGISTRY.counter(
    "convgpu_messages_total",
    "Protocol messages handled by the scheduler service",
    labelnames=("type",),
)
_DECISION_SECONDS = REGISTRY.histogram(
    "convgpu_alloc_decision_seconds",
    "Wall time to decide one alloc_request (excluding any pause wait)",
    buckets=LATENCY_BUCKETS,
    labelnames=("policy",),
)


class SchedulerService:
    """Stateless adapter from protocol messages to scheduler-core calls.

    ``heartbeat_sink`` (when set by the daemon) receives the container id of
    every handled message — any traffic from a container is proof of life,
    so the liveness monitor piggybacks on the normal message flow and the
    explicit ``heartbeat`` notification only matters for idle containers.

    ``tracer`` (optional, off by default) records one server-side span per
    handled message, parented on the trace context the wrapper put on the
    wire — the daemon half of a wrapper→daemon trace.

    ``shard_id`` (optional) is this service's identity in a sharded
    control plane: every ``register_container`` reply then carries a
    ``shard`` field, so the router (and a reconnecting wrapper) can check
    that the consistent-hash ring and the daemon that actually answered
    agree.  ``None`` keeps replies byte-identical to the unsharded wire.
    """

    def __init__(
        self,
        scheduler: GpuMemoryScheduler,
        *,
        heartbeat_sink: Callable[[str], None] | None = None,
        tracer: Tracer | None = None,
        shard_id: int | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.heartbeat_sink = heartbeat_sink
        self.tracer = tracer
        self.shard_id = shard_id
        # Label resolution takes the family lock; cache the children so the
        # per-message cost is one dict get plus the bare inc()/observe().
        self._message_counts: dict[str, Any] = {}
        self._decision_seconds: Any = None
        # Bound-method dispatch table: one dict get per message instead of
        # an f-string + getattr on every request.
        self._dispatch: dict[str, Callable[..., Any]] = {
            name[len("_on_"):]: getattr(self, name)
            for name in dir(type(self))
            if name.startswith("_on_")
        }

    # The transport calls this for every decoded, validated request.
    def handle(self, message: dict[str, Any], reply_handle) -> Any:
        msg_type = message["type"]
        counter = self._message_counts.get(msg_type)
        if counter is None:
            counter = self._message_counts[msg_type] = _MESSAGES.labels(type=msg_type)
        counter.inc()
        if self.heartbeat_sink is not None and "container_id" in message:
            self.heartbeat_sink(message["container_id"])
        handler = self._dispatch.get(msg_type)
        if handler is None:
            return protocol.make_error_reply(message, f"unsupported type {msg_type!r}")
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                f"scheduler.{msg_type}",
                parent=extract_context(message),
                container_id=message.get("container_id", ""),
            )
        try:
            reply = handler(message, reply_handle)
        except (
            UnknownContainerError,
            LimitExceededError,
            SchedulerError,
            ClusterError,
        ) as exc:
            reply = protocol.make_error_reply(message, str(exc))
            if span is not None:
                span.finish(status="error")
                span = None
        if span is not None:
            if reply is DEFER:
                span.set_attr("decision", Decision.PAUSE)
            elif isinstance(reply, dict) and "decision" in reply:
                span.set_attr("decision", reply["decision"])
            span.finish()
        if msg_type in protocol.NOTIFICATION_TYPES:
            # Fire-and-forget bookkeeping: the wrapper is not waiting, so
            # no reply goes on the wire (errors surface in the event log).
            return None
        return reply

    __call__ = handle

    # -- batch hooks ------------------------------------------------------
    #
    # The socket servers' batch dispatcher brackets each readable event's
    # frame batch with these, so N pipelined decisions share one journal
    # group-commit wait (see GpuMemoryScheduler.begin_batch).  getattr-guarded:
    # MultiGpuScheduler and test doubles without batch support degrade to
    # per-message durability, never to lost durability.

    def batch_begin(self) -> None:
        begin = getattr(self.scheduler, "begin_batch", None)
        if begin is not None:
            begin()

    def batch_commit(self) -> None:
        commit = getattr(self.scheduler, "commit_batch", None)
        if commit is not None:
            commit()

    # -- per-message handlers --------------------------------------------

    def _on_register_container(self, message: dict[str, Any], reply_handle) -> Any:
        # Registration replies carry the shard identity (when sharded) —
        # the handshake field the router checks against its hash ring.
        identity = {} if self.shard_id is None else {"shard": self.shard_id}
        try:
            result = self.scheduler.register_container(
                message["container_id"], message["limit"]
            )
        except SchedulerError as exc:
            # Reattach path: after a daemon restart the container is already
            # registered (restored from the journal).  A re-register with the
            # same limit is the wrapper/plugin confirming it is still alive —
            # idempotently acknowledge instead of failing the reconnect.
            try:
                record = self.scheduler.container(message["container_id"])
            except (UnknownContainerError, AttributeError):
                raise exc
            if record.closed or record.limit != message["limit"]:
                raise
            return protocol.make_reply(
                message,
                assigned=record.assigned,
                limit=record.limit,
                reattached=True,
                **identity,
            )
        if isinstance(result, tuple):
            # Multi-GPU scheduler: placement decided at registration; the
            # reply tells nvidia-docker which /dev/nvidiaN to attach.
            ordinal, record = result
            return protocol.make_reply(
                message,
                assigned=record.assigned,
                limit=record.limit,
                device=ordinal,
                **identity,
            )
        record = result
        return protocol.make_reply(
            message, assigned=record.assigned, limit=record.limit, **identity
        )

    def _on_container_exit(self, message: dict[str, Any], reply_handle) -> Any:
        reclaimed = self.scheduler.container_exit(message["container_id"])
        return protocol.make_reply(message, reclaimed=reclaimed)

    def _on_alloc_request(self, message: dict[str, Any], reply_handle) -> Any:
        def resume(payload: dict[str, Any]) -> None:
            # Deliver the withheld reply; the container was paused until now.
            try:
                reply_handle.send(protocol.make_reply(message, **payload))
            # reprolint: ignore[swallowed-exception] -- the wrapper's socket
            # is gone (container killed while paused); container_exit
            # cleanup already reconciles the scheduler state.
            except Exception:
                pass

        began = time.perf_counter()
        decision = self.scheduler.request_allocation(
            message["container_id"],
            message["pid"],
            message["size"],
            api=message["api"],
            on_resume=resume,
        )
        histogram = self._decision_seconds
        if histogram is None:
            policy = getattr(self.scheduler, "policy", None)
            name = getattr(policy, "name", type(self.scheduler).__name__)
            histogram = self._decision_seconds = _DECISION_SECONDS.labels(policy=name)
        histogram.observe(time.perf_counter() - began)
        if decision.paused:
            return DEFER
        if decision.granted:
            return protocol.make_reply(message, decision=Decision.GRANT)
        return protocol.make_reply(
            message, decision=Decision.REJECT, reason=decision.reason
        )

    def _on_alloc_commit(self, message: dict[str, Any], reply_handle) -> Any:
        self.scheduler.commit_allocation(
            message["container_id"],
            message["pid"],
            message["address"],
            message["size"],
        )
        return protocol.make_reply(message)

    def _on_alloc_abort(self, message: dict[str, Any], reply_handle) -> Any:
        self.scheduler.abort_allocation(
            message["container_id"], message["pid"], message["size"]
        )
        return protocol.make_reply(message)

    def _on_alloc_release(self, message: dict[str, Any], reply_handle) -> Any:
        released = self.scheduler.release_allocation(
            message["container_id"], message["pid"], message["address"]
        )
        return protocol.make_reply(message, released=released)

    def _on_mem_get_info(self, message: dict[str, Any], reply_handle) -> Any:
        free, total = self.scheduler.mem_get_info(
            message["container_id"], message["pid"]
        )
        return protocol.make_reply(message, free=free, total=total)

    def _on_process_exit(self, message: dict[str, Any], reply_handle) -> Any:
        reclaimed = self.scheduler.process_exit(
            message["container_id"], message["pid"]
        )
        return protocol.make_reply(message, reclaimed=reclaimed)

    def _on_heartbeat(self, message: dict[str, Any], reply_handle) -> Any:
        # Proof of life from an idle container.  The beat itself was already
        # recorded by the heartbeat_sink hook in handle(); nothing else to do
        # (notification: no reply goes on the wire).
        return None
