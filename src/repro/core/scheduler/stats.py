"""Observability: scheduler snapshots and event-log timelines.

The original daemon exposed nothing; any operator of such middleware
immediately needs a ``docker stats``-style view of who holds what and who
is waiting, plus a post-hoc timeline for debugging scheduling decisions.
Both are derived purely from the scheduler's public state and event log —
no new state in the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.events import (
    AllocationPaused,
    AllocationRejected,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    MemoryAssigned,
    ReservationReclaimed,
)
from repro.units import format_size

__all__ = ["ContainerStat", "SchedulerSnapshot", "snapshot", "format_snapshot",
           "SuspensionInterval", "suspension_timeline"]


@dataclass(frozen=True)
class ContainerStat:
    """One container's row in the stats view."""

    container_id: str
    limit: int
    assigned: int
    used: int
    inflight: int
    paused: bool
    pending_requests: int
    suspended_total: float

    @property
    def utilization(self) -> float:
        """Used fraction of the declared limit."""
        return self.used / self.limit if self.limit else 0.0


@dataclass(frozen=True)
class SchedulerSnapshot:
    """Point-in-time view of the whole scheduler."""

    time: float
    total_memory: int
    reserved: int
    policy: str
    containers: tuple[ContainerStat, ...] = ()

    @property
    def unreserved(self) -> int:
        return self.total_memory - self.reserved

    @property
    def paused_count(self) -> int:
        return sum(1 for c in self.containers if c.paused)


def snapshot(scheduler: GpuMemoryScheduler) -> SchedulerSnapshot:
    """Capture the current state (open containers only).

    ``suspended_total`` includes the *in-progress* wait of currently
    pending requests, so a paused container's WAITED column ticks live.
    """
    now = scheduler.clock()
    stats = tuple(
        ContainerStat(
            container_id=record.container_id,
            limit=record.limit,
            assigned=record.assigned,
            used=record.used,
            inflight=record.inflight,
            paused=record.paused,
            pending_requests=len(record.pending),
            suspended_total=record.suspended_total
            + sum(now - pending.requested_at for pending in record.pending),
        )
        for record in scheduler.containers()
    )
    return SchedulerSnapshot(
        time=scheduler.clock(),
        total_memory=scheduler.total_memory,
        reserved=scheduler.reserved,
        policy=scheduler.policy.name,
        containers=stats,
    )


def format_snapshot(snap: SchedulerSnapshot) -> str:
    """Render a ``docker stats``-style table."""
    header = (
        f"t={snap.time:.2f}s  policy={snap.policy}  "
        f"reserved={format_size(snap.reserved)}/{format_size(snap.total_memory)}  "
        f"paused={snap.paused_count}"
    )
    if not snap.containers:
        return header + "\n(no containers)"
    rows = [
        "CONTAINER        LIMIT    ASSIGNED   USED     INFLIGHT  STATE   WAITED",
    ]
    for stat in snap.containers:
        state = "paused" if stat.paused else "running"
        rows.append(
            f"{stat.container_id:<16s} "
            f"{format_size(stat.limit):>8s} "
            f"{format_size(stat.assigned):>9s} "
            f"{format_size(stat.used):>8s} "
            f"{format_size(stat.inflight):>8s}  "
            f"{state:<7s} "
            f"{stat.suspended_total:6.1f}s"
        )
    return "\n".join([header, *rows])


@dataclass(frozen=True)
class SuspensionInterval:
    """One pause episode: [start, end) in scheduler-clock time."""

    container_id: str
    pid: int
    start: float
    end: float
    resolution: str  # "resumed" | "rejected" | "container-exit" | "open"

    @property
    def duration(self) -> float:
        return self.end - self.start


def suspension_timeline(scheduler: GpuMemoryScheduler) -> list[SuspensionInterval]:
    """Reconstruct every pause episode from the event log.

    Pairs each ``AllocationPaused`` with the next resolving event of the
    same container (a resume, a terminal rejection delivered at container
    exit, or nothing — still open).  This is the raw material behind the
    Fig. 8 aggregation, exposed per episode.
    """
    intervals: list[SuspensionInterval] = []
    # Open pauses per container in FIFO order (matching _try_resume).
    open_pauses: dict[str, list[tuple[int, float]]] = {}
    closed_at: dict[str, float] = {}
    for event in scheduler.log:
        if isinstance(event, AllocationPaused):
            open_pauses.setdefault(event.container_id, []).append(
                (event.pid, event.time)
            )
        elif isinstance(event, AllocationResumed):
            queue = open_pauses.get(event.container_id)
            if queue:
                pid, start = queue.pop(0)
                intervals.append(
                    SuspensionInterval(
                        container_id=event.container_id,
                        pid=pid,
                        start=start,
                        end=event.time,
                        resolution="resumed",
                    )
                )
        elif isinstance(event, ContainerClosed):
            closed_at[event.container_id] = event.time
            for pid, start in open_pauses.pop(event.container_id, []):
                intervals.append(
                    SuspensionInterval(
                        container_id=event.container_id,
                        pid=pid,
                        start=start,
                        end=event.time,
                        resolution="container-exit",
                    )
                )
    now = scheduler.clock()
    for container_id, queue in open_pauses.items():
        for pid, start in queue:
            intervals.append(
                SuspensionInterval(
                    container_id=container_id,
                    pid=pid,
                    start=start,
                    end=now,
                    resolution="open",
                )
            )
    return sorted(intervals, key=lambda i: (i.start, i.container_id))


def summarize_events(scheduler: GpuMemoryScheduler) -> dict[str, int]:
    """Counts of the externally interesting event classes."""
    log = scheduler.log
    return {
        "registered": len(log.of_type(ContainerRegistered)),
        "paused": len(log.of_type(AllocationPaused)),
        "resumed": len(log.of_type(AllocationResumed)),
        "rejected": len(log.of_type(AllocationRejected)),
        "assigned": len(log.of_type(MemoryAssigned)),
        "reclaimed": len(log.of_type(ReservationReclaimed)),
        "closed": len(log.of_type(ContainerClosed)),
    }


__all__.append("summarize_events")
