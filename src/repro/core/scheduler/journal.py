"""Write-ahead journal + crash recovery for the GPU memory scheduler.

The paper's daemon keeps every reservation in process memory: kill it and
every container's wrapper blocks forever while the bookkeeping that maps
reservations to containers evaporates.  This module makes the scheduler
crash-recoverable:

- every :class:`~repro.core.scheduler.events.SchedulerEvent` is appended to
  an on-disk journal *inside the scheduler's lock, before the decision's
  reply leaves the daemon* (classic WAL ordering);
- every ``snapshot_interval`` events a **compacted snapshot** — the full
  serialized scheduler state — is interleaved, bounding replay time;
- :func:`restore` rebuilds a scheduler from the newest snapshot plus the
  event tail, byte-identical to the pre-crash state (verified by the
  crash-consistency property suite in ``tests/core/test_journal_properties.py``).

Replay never re-runs the scheduling *policy*: derived decisions
(``MemoryAssigned``, ``ReservationReclaimed``, resumes) are applied verbatim
from the journal, so recovery is deterministic even under the Random policy.

What intentionally does **not** survive a crash:

- withheld reply callbacks (``PendingAllocation.resume``) — they wrap dead
  sockets.  Restored pending entries are *orphans*; when the wrapper
  reconnects and re-issues its request, ``request_allocation`` adopts the
  orphan instead of double-queueing (see ``core.py``);
- event-log history older than the newest snapshot (state is exact, the
  Fig. 8 timeline before the snapshot is compacted away).

Journal format: one JSON object per line (same framing discipline as the
wire protocol).  ``{"kind": "meta"}`` opens the file and pins the scheduler
configuration; ``{"kind": "event"}`` records one scheduler event;
``{"kind": "snapshot"}`` holds a compacted state.  A torn final line —
the expected artifact of a crash mid-write — is detected and dropped.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Callable, TextIO

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    MemoryAssigned,
    ProcessExited,
    ReservationReclaimed,
    SchedulerEvent,
)
from repro.core.scheduler.policies import SchedulingPolicy, make_policy
from repro.core.scheduler.records import (
    AllocationRecord,
    ContainerRecord,
    PendingAllocation,
)
from repro.errors import JournalError
from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY

_APPEND_SECONDS = REGISTRY.histogram(
    "convgpu_journal_append_seconds",
    "Wall time of one journal append (serialize + write + flush + fsync)",
    buckets=LATENCY_BUCKETS,
)
_FSYNC_SECONDS = REGISTRY.histogram(
    "convgpu_journal_fsync_seconds",
    "Wall time of the fsync portion of journal appends (fsync=True only)",
    buckets=LATENCY_BUCKETS,
)

__all__ = [
    "JOURNAL_VERSION",
    "SchedulerJournal",
    "encode_event",
    "decode_event",
    "serialize_state",
    "restore",
    "read_journal",
    "journal_summary",
]

JOURNAL_VERSION = 1

#: Event-type registry for the codec (name -> dataclass).
EVENT_TYPES: dict[str, type[SchedulerEvent]] = {
    cls.__name__: cls
    for cls in (
        ContainerRegistered,
        AllocationGranted,
        AllocationPaused,
        AllocationResumed,
        AllocationRejected,
        AllocationCommitted,
        AllocationReleased,
        AllocationAborted,
        MemoryAssigned,
        ReservationReclaimed,
        ProcessExited,
        ContainerClosed,
    )
}


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


def encode_event(event: SchedulerEvent) -> dict[str, Any]:
    """One event as a journal record (plain JSON types only)."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise JournalError(f"unknown event type {name!r}")
    return {"kind": "event", "event": name, **dataclasses.asdict(event)}


def decode_event(record: dict[str, Any]) -> SchedulerEvent:
    """Rebuild the typed event from a journal record."""
    name = record.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise JournalError(f"journal record has unknown event type {name!r}")
    kwargs = {
        f.name: record[f.name] for f in dataclasses.fields(cls) if f.name in record
    }
    missing = {f.name for f in dataclasses.fields(cls)} - set(kwargs)
    if missing:
        raise JournalError(f"{name} record missing fields {sorted(missing)}")
    return cls(**kwargs)


def serialize_state(scheduler: GpuMemoryScheduler) -> dict[str, Any]:
    """Full scheduler state as plain JSON types (snapshot payload).

    Container order preserves the ``_containers`` dict order so a snapshot
    restore and an event replay produce indistinguishable schedulers.
    ``resume`` callbacks are dropped — they wrap connections that will not
    survive the crash; see the module docstring.
    """
    with scheduler._lock:
        return {
            "seq": scheduler._seq,
            "containers": [
                {
                    "container_id": r.container_id,
                    "limit": r.limit,
                    "created_seq": r.created_seq,
                    "created_at": r.created_at,
                    "assigned": r.assigned,
                    "used": r.used,
                    "inflight": r.inflight,
                    "closed": r.closed,
                    "allocations": [
                        [a.address, a.pid, a.size, a.is_context_overhead]
                        for a in r.allocations.values()
                    ],
                    "pids_charged": sorted(r.pids_charged),
                    "overhead_pending": sorted(r.overhead_pending),
                    "pending": [
                        {
                            "pid": p.pid,
                            "size": p.size,
                            "requested_size": p.requested_size,
                            "api": p.api,
                            "requested_at": p.requested_at,
                        }
                        for p in r.pending
                    ],
                    "last_suspended_at": r.last_suspended_at,
                    "suspended_total": r.suspended_total,
                    "pause_count": r.pause_count,
                }
                for r in scheduler._containers.values()
            ],
        }


def _load_state(scheduler: GpuMemoryScheduler, state: dict[str, Any]) -> None:
    """Install a snapshot payload into a fresh scheduler."""
    scheduler._seq = state["seq"]
    scheduler._containers.clear()
    for entry in state["containers"]:
        record = ContainerRecord(
            container_id=entry["container_id"],
            limit=entry["limit"],
            created_seq=entry["created_seq"],
            created_at=entry["created_at"],
            assigned=entry["assigned"],
            used=entry["used"],
            inflight=entry["inflight"],
            closed=entry["closed"],
            last_suspended_at=entry["last_suspended_at"],
            suspended_total=entry["suspended_total"],
            pause_count=entry["pause_count"],
        )
        record.allocations = {
            address: AllocationRecord(
                address=address, pid=pid, size=size, is_context_overhead=overhead
            )
            for address, pid, size, overhead in entry["allocations"]
        }
        record.pids_charged = set(entry["pids_charged"])
        record.overhead_pending = set(entry["overhead_pending"])
        record.pending = [
            PendingAllocation(
                pid=p["pid"],
                size=p["size"],
                requested_size=p["requested_size"],
                api=p["api"],
                requested_at=p["requested_at"],
                resume=None,  # orphan: re-attached when the wrapper re-issues
            )
            for p in entry["pending"]
        ]
        scheduler._containers[record.container_id] = record


# ---------------------------------------------------------------------------
# the journal writer
# ---------------------------------------------------------------------------


class SchedulerJournal:
    """Append-only on-disk journal subscribed to a scheduler's event log.

    Args:
        path: journal file (created on first attach).
        snapshot_interval: events between compacted snapshots; ``None``
            disables compaction (pure event log — what the property tests
            use so every prefix is replayable).
        fsync: force data to the platters on every append.  Off by default:
            the reproduction favours test throughput, a production deploy
            flips it on for durability across power loss (the write is
            still flushed to the OS either way, so it survives a process
            SIGKILL — the failure mode this PR defends against).
    """

    def __init__(
        self,
        path: str,
        *,
        snapshot_interval: int | None = 256,
        fsync: bool = False,
    ) -> None:
        if snapshot_interval is not None and snapshot_interval < 1:
            raise JournalError(
                f"snapshot_interval must be >= 1 or None: {snapshot_interval}"
            )
        self.path = path
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self._fh: TextIO | None = None
        self._scheduler: GpuMemoryScheduler | None = None
        self._events_since_snapshot = 0
        #: Appended event count this process lifetime (observability).
        self.events_written = 0

    # -- lifecycle ----------------------------------------------------------

    def attach(self, scheduler: GpuMemoryScheduler, *, compact: bool = False) -> None:
        """Subscribe to ``scheduler`` and start journaling its events.

        A fresh (empty) journal gets a ``meta`` record pinning the
        scheduler's configuration; attaching an incompatible scheduler to
        an existing journal raises.  With ``compact=True`` (the recovery
        path) a snapshot of the current state is written immediately.
        """
        if self._scheduler is not None:
            raise JournalError(f"journal {self.path} already attached")
        existing_meta = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            existing_meta, _, _ = read_journal(self.path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._scheduler = scheduler
        if existing_meta is None:
            self._write(
                {
                    "kind": "meta",
                    "version": JOURNAL_VERSION,
                    "total_memory": scheduler.total_memory,
                    "policy": scheduler.policy.name,
                    "context_overhead": scheduler.context_overhead,
                    "resume_mode": scheduler.resume_mode,
                }
            )
        else:
            self._check_meta(existing_meta, scheduler)
        needs_snapshot = compact or (
            existing_meta is None
            and (scheduler._containers or len(scheduler.log) > 0)
        )
        if needs_snapshot:
            self.write_snapshot()
        scheduler.log.listeners.append(self.record)
        scheduler.journal = self

    @staticmethod
    def _check_meta(meta: dict[str, Any], scheduler: GpuMemoryScheduler) -> None:
        mismatches = [
            (key, expected, actual)
            for key, expected, actual in (
                ("total_memory", meta.get("total_memory"), scheduler.total_memory),
                ("policy", meta.get("policy"), scheduler.policy.name),
                (
                    "context_overhead",
                    meta.get("context_overhead"),
                    scheduler.context_overhead,
                ),
                ("resume_mode", meta.get("resume_mode"), scheduler.resume_mode),
            )
            if expected != actual
        ]
        if mismatches:
            detail = ", ".join(
                f"{key}: journal={expected!r} scheduler={actual!r}"
                for key, expected, actual in mismatches
            )
            raise JournalError(f"journal/scheduler configuration mismatch: {detail}")

    def close(self) -> None:
        if self._scheduler is not None:
            try:
                self._scheduler.log.listeners.remove(self.record)
            except ValueError:
                pass
            if getattr(self._scheduler, "journal", None) is self:
                self._scheduler.journal = None
            self._scheduler = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def record(self, event: SchedulerEvent) -> None:
        """EventLog listener: persist one event (called under the lock)."""
        self._write(encode_event(event))
        self.events_written += 1
        self._events_since_snapshot += 1
        if (
            self.snapshot_interval is not None
            and self._events_since_snapshot >= self.snapshot_interval
        ):
            self.write_snapshot()

    def write_snapshot(self) -> None:
        """Append a compacted snapshot of the attached scheduler's state."""
        if self._scheduler is None:
            raise JournalError("journal not attached to a scheduler")
        self._write({"kind": "snapshot", "state": serialize_state(self._scheduler)})
        self._events_since_snapshot = 0

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        began = time.perf_counter()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            fsync_began = time.perf_counter()
            os.fsync(self._fh.fileno())
            _FSYNC_SECONDS.observe(time.perf_counter() - fsync_began)
        _APPEND_SECONDS.observe(time.perf_counter() - began)


# ---------------------------------------------------------------------------
# the reader / recovery path
# ---------------------------------------------------------------------------


def read_journal(
    path: str,
) -> tuple[dict[str, Any] | None, list[dict[str, Any]], int]:
    """Parse a journal file tolerantly.

    Returns ``(meta, records, torn)`` where ``records`` excludes the meta
    line and ``torn`` counts trailing unparseable/unterminated lines that
    were dropped (the artifact of a crash mid-append).  Corruption anywhere
    *before* the tail raises :class:`~repro.errors.JournalError`.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline -> last split element is empty.
    torn = 0
    if lines and lines[-1] == b"":
        lines.pop()
    elif lines:
        lines.pop()  # unterminated tail: torn write
        torn += 1
    records: list[dict[str, Any]] = []
    meta: dict[str, Any] | None = None
    for index, line in enumerate(lines):
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"not a journal record: {record!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            if index == len(lines) - 1:
                torn += 1  # torn final line (crash mid-write)
                break
            raise JournalError(
                f"corrupt journal {path} at line {index + 1}: {exc}"
            ) from exc
        if record["kind"] == "meta":
            if meta is not None:
                raise JournalError(f"duplicate meta record in {path}")
            meta = record
        else:
            records.append(record)
    return meta, records, torn


def restore(
    path: str,
    *,
    clock: Callable[[], float] | None = None,
    policy: SchedulingPolicy | None = None,
    rng=None,
    event_limit: int | None = None,
) -> GpuMemoryScheduler:
    """Rebuild a scheduler from its journal.

    The result's :func:`~repro.core.scheduler.stats.snapshot` is identical
    to the crashed scheduler's at its last journaled event.  ``event_limit``
    replays only the first N events — the fault-injection suite uses it to
    model a crash at every event boundary without rewriting files.

    ``policy``/``rng`` override the policy reconstructed from the meta
    record (replay itself never consults the policy; these only matter for
    post-recovery scheduling).  To *continue* journaling after recovery::

        scheduler = restore(path, clock=clock)
        SchedulerJournal(path).attach(scheduler, compact=True)
    """
    meta, records, _torn = read_journal(path)
    if meta is None:
        raise JournalError(f"journal {path} has no meta record")
    if meta.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} version {meta.get('version')!r} != {JOURNAL_VERSION}"
        )
    if policy is None:
        policy = make_policy(meta["policy"], rng)
    scheduler = GpuMemoryScheduler(
        meta["total_memory"],
        policy,
        clock=clock,
        context_overhead=meta["context_overhead"],
        resume_mode=meta["resume_mode"],
    )
    # Pick the newest snapshot whose position is within the event limit,
    # then replay the event tail after it.
    base_state: dict[str, Any] | None = None
    base_events = 0
    tail: list[SchedulerEvent] = []
    events_seen = 0
    for record in records:
        kind = record["kind"]
        if kind == "event":
            if event_limit is not None and events_seen >= event_limit:
                break
            tail.append(decode_event(record))
            events_seen += 1
        elif kind == "snapshot":
            base_state = record["state"]
            base_events = events_seen
            tail.clear()
        else:
            raise JournalError(f"unknown journal record kind {kind!r} in {path}")
    if base_state is not None:
        _load_state(scheduler, base_state)
    del base_events  # informational only
    for event in tail:
        _apply_event(scheduler, event)
        scheduler.log.append(event)
    return scheduler


# ---------------------------------------------------------------------------
# event replay
# ---------------------------------------------------------------------------


def _apply_event(scheduler: GpuMemoryScheduler, event: SchedulerEvent) -> None:
    """Apply one journaled event to the scheduler state, policy-free.

    Mirrors exactly the state mutation ``core.py`` performed when it logged
    the event; derived amounts (redistribution targets, reclaimed idle
    memory) come from the event itself, so replay never re-runs the policy
    and is deterministic for all four algorithms.
    """
    containers = scheduler._containers
    if isinstance(event, ContainerRegistered):
        scheduler._seq += 1
        record = ContainerRecord(
            container_id=event.container_id,
            limit=event.limit,
            created_seq=scheduler._seq,
            created_at=event.time,
        )
        record.assigned = event.assigned
        containers[event.container_id] = record
        return
    record = containers.get(event.container_id)
    if record is None:
        raise JournalError(
            f"journal references unknown container {event.container_id!r} "
            f"in {type(event).__name__}"
        )
    if isinstance(event, AllocationGranted):
        if record.pending:
            # A grant while replies are withheld can only be the head of the
            # pending queue resuming (direct grants require an unpaused
            # container) — same dichotomy core.py enforces.
            head = record.pending.pop(0)
            record.suspended_total += event.time - head.requested_at
            record.inflight += head.size
        else:
            effective = record.effective_size(
                event.pid, event.size, scheduler.context_overhead
            )
            if effective != event.size:
                record.pids_charged.add(event.pid)
                record.overhead_pending.add(event.pid)
            record.inflight += effective
    elif isinstance(event, AllocationPaused):
        effective = record.effective_size(
            event.pid, event.size, scheduler.context_overhead
        )
        if effective != event.size:
            record.pids_charged.add(event.pid)
            record.overhead_pending.add(event.pid)
        record.pending.append(
            PendingAllocation(
                pid=event.pid,
                size=effective,
                requested_size=event.size,
                api=event.api,
                requested_at=event.time,
                resume=None,
            )
        )
        record.last_suspended_at = event.time
        record.pause_count += 1
    elif isinstance(event, AllocationResumed):
        pass  # state applied by the preceding AllocationGranted
    elif isinstance(event, AllocationRejected):
        pass  # decision only; no state change
    elif isinstance(event, AllocationCommitted):
        overhead = 0
        if event.pid in record.overhead_pending:
            overhead = scheduler.context_overhead
            record.overhead_pending.discard(event.pid)
        total = event.size + overhead
        record.inflight -= total
        record.used += total
        record.allocations[event.address] = AllocationRecord(
            address=event.address, pid=event.pid, size=event.size
        )
        if overhead:
            key = scheduler._overhead_key(event.pid)
            record.allocations[key] = AllocationRecord(
                address=key, pid=event.pid, size=overhead, is_context_overhead=True
            )
    elif isinstance(event, AllocationReleased):
        allocation = record.allocations.pop(event.address, None)
        if allocation is None:
            raise JournalError(
                f"release of unknown address {event.address:#x} during replay"
            )
        record.used -= allocation.size
    elif isinstance(event, AllocationAborted):
        effective = event.size
        if event.pid in record.overhead_pending:
            effective += scheduler.context_overhead
            record.overhead_pending.discard(event.pid)
            record.pids_charged.discard(event.pid)
        record.inflight -= effective
    elif isinstance(event, MemoryAssigned):
        record.assigned = event.assigned_total
    elif isinstance(event, ReservationReclaimed):
        record.assigned = event.assigned_total
    elif isinstance(event, ProcessExited):
        doomed = [a for a in record.allocations.values() if a.pid == event.pid]
        for allocation in doomed:
            del record.allocations[allocation.address]
        record.used -= sum(a.size for a in doomed)
        record.pids_charged.discard(event.pid)
        record.overhead_pending.discard(event.pid)
    elif isinstance(event, ContainerClosed):
        record.pending.clear()
        record.allocations.clear()
        record.used = 0
        record.inflight = 0
        record.assigned = 0
        record.closed = True
        record.suspended_total = event.suspended_total
    else:  # pragma: no cover - registry and appliers move in lockstep
        raise JournalError(f"no replay rule for {type(event).__name__}")


# ---------------------------------------------------------------------------
# inspection (the `repro recover` CLI)
# ---------------------------------------------------------------------------


def journal_summary(path: str) -> dict[str, Any]:
    """Shape of a journal without restoring it: counts per record type."""
    meta, records, torn = read_journal(path)
    event_counts: dict[str, int] = {}
    snapshots = 0
    for record in records:
        if record["kind"] == "snapshot":
            snapshots += 1
        elif record["kind"] == "event":
            name = record.get("event", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
    return {
        "path": path,
        "meta": meta,
        "events": sum(event_counts.values()),
        "event_counts": dict(sorted(event_counts.items())),
        "snapshots": snapshots,
        "torn_lines": torn,
    }
