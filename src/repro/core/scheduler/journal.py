"""Write-ahead journal + crash recovery for the GPU memory scheduler.

The paper's daemon keeps every reservation in process memory: kill it and
every container's wrapper blocks forever while the bookkeeping that maps
reservations to containers evaporates.  This module makes the scheduler
crash-recoverable:

- every :class:`~repro.core.scheduler.events.SchedulerEvent` is appended to
  an on-disk journal *before the decision's reply leaves the daemon*
  (classic WAL ordering);
- every ``snapshot_interval`` events a **compacted snapshot** — the full
  serialized scheduler state — is interleaved, bounding replay time;
- :func:`restore` rebuilds a scheduler from the newest snapshot plus the
  event tail, byte-identical to the pre-crash state (verified by the
  crash-consistency property suite in ``tests/core/test_journal_properties.py``).

**Group commit** (the default, ``mode="group"``): the scheduler's lock is
never held across disk I/O.  The event-log listener only *enqueues* the
event — a list append under a condition variable — and a dedicated writer
thread drains the queue in batches: one ``write`` + ``flush`` (+ one
``fsync`` when enabled) per batch, in strict enqueue order.  The runtime
facade calls :meth:`SchedulerJournal.wait_durable` after releasing the
scheduler lock and before any reply leaves, so the WAL guarantee is
unchanged while concurrent transitions share a single flush instead of
serializing on it (``benchmarks/test_bench_ablation_journal.py`` measures
the difference; ``mode="sync"`` keeps the seed's write-under-the-lock
behaviour as the ablation baseline).  The socket servers' pipelined batch
dispatch leans on the same machinery: a readable event's worth of frames
is bracketed by ``begin_batch``/``commit_batch`` on the scheduler facade,
which defers the ``wait_durable`` to the bracket's end — N pipelined
decisions ride one writer-thread flush, and every reply in the batch still
leaves only after the events it depends on are durable.

Interval snapshots are taken only at **quiescent points**: the writer
thread briefly takes the scheduler lock with its queue drained — so the
serialized state exactly matches the journal position — then writes and
flushes the snapshot *outside* that lock.

**Compaction** (DESIGN.md §14): snapshots bound *replay*, but the file
itself grows with total history.  :meth:`SchedulerJournal.compact`
rewrites the journal down to ``meta + newest snapshot + event tail``
through a fsynced sidecar (``<path>.compact``) and one atomic
``os.rename``, then re-opens the live append handle — producers and the
writer thread never pause, because the only serialization point is the
journal's internal ``_io_lock`` (file-handle I/O), which the scheduler
lock never nests inside.  Compaction runs in three places: a background
compactor thread armed from the writer's quiescent points when the file
outgrows ``compact_at_bytes``; an explicit :meth:`compact` call; and the
offline :func:`compact_journal` (the ``repro compact`` CLI) for journals
with no live daemon.  A half-written sidecar is invisible to recovery —
the live journal is authoritative until the rename — and a stale sidecar
left by a crash is removed on the next :meth:`attach`.

Replay never re-runs the scheduling *policy*: derived decisions
(``MemoryAssigned``, ``ReservationReclaimed``, resumes) are applied
verbatim from the journal via
:meth:`~repro.core.scheduler.state.SchedulerState.apply_event`, so
recovery is deterministic even under the Random policy.

What intentionally does **not** survive a crash:

- withheld reply callbacks (``PendingAllocation.resume``) — they wrap dead
  sockets.  Restored pending entries are *orphans*; when the wrapper
  reconnects and re-issues its request, ``request_allocation`` adopts the
  orphan instead of double-queueing (see ``state.py``);
- event-log history older than the newest snapshot (state is exact, the
  Fig. 8 timeline before the snapshot is compacted away).

Journal format: one JSON object per line (same framing discipline as the
wire protocol).  ``{"kind": "meta"}`` opens the file and pins the scheduler
configuration; ``{"kind": "event"}`` records one scheduler event;
``{"kind": "snapshot"}`` holds a compacted state.  An *unterminated* final
line — the expected artifact of a crash mid-write — is detected and
dropped (and truncated away on re-attach, so new appends never concatenate
onto the fragment).  A *terminated* unparseable line is real corruption
and raises: a crash cannot manufacture a complete line of garbage ending
in a newline.  All reading is streaming (:class:`JournalReader`): neither
:func:`restore`, :func:`journal_summary` nor :meth:`SchedulerJournal.attach`
ever loads the whole file into memory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Any, BinaryIO, Callable, TextIO

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    MemoryAssigned,
    ProcessExited,
    ReservationReclaimed,
    SchedulerEvent,
)
from repro.core.scheduler.policies import SchedulingPolicy, make_policy
from repro.errors import JournalError
from repro.obs.metrics import DURATION_BUCKETS, LATENCY_BUCKETS, REGISTRY
from repro.obs.recorder import RECORDER

# Flight-recorder events (module alias: the obs-overhead bench stub idiom).
_REC = RECORDER
_EV_FLUSH = RECORDER.declare(
    "journal.flush", a="items", b="fsync", x="seconds"
)
_EV_SNAPSHOT = RECORDER.declare("journal.snapshot")
_EV_COMPACT = RECORDER.declare(
    "journal.compact", a="bytes_before", b="bytes_after", x="seconds"
)
_EV_COMPACT_FAILED = RECORDER.declare("journal.compact_failed", s="error")

_APPEND_SECONDS = REGISTRY.histogram(
    "convgpu_journal_append_seconds",
    "Wall time of one journal append batch (serialize + write + flush + fsync)",
    buckets=LATENCY_BUCKETS,
)
_FSYNC_SECONDS = REGISTRY.histogram(
    "convgpu_journal_fsync_seconds",
    "Wall time of the fsync portion of journal appends (fsync=True only)",
    buckets=LATENCY_BUCKETS,
)
_COMPACTIONS = REGISTRY.counter(
    "convgpu_journal_compactions_total",
    "Journal compactions completed (sidecar rewrite + atomic rename)",
)
_COMPACT_FAILURES = REGISTRY.counter(
    "convgpu_journal_compaction_failures_total",
    "Journal compactions that failed before the rename (journal intact)",
)
_COMPACT_SECONDS = REGISTRY.histogram(
    "convgpu_journal_compaction_seconds",
    "Wall time of one journal compaction (snapshot + rewrite + rename + reopen)",
    buckets=DURATION_BUCKETS,
)
_JOURNAL_BYTES = REGISTRY.gauge(
    "convgpu_journal_size_bytes",
    "Live journal file size, sampled at writer quiescent points",
)

__all__ = [
    "JOURNAL_VERSION",
    "JournalReader",
    "SchedulerJournal",
    "compact_journal",
    "encode_event",
    "decode_event",
    "serialize_state",
    "restore",
    "read_journal",
    "read_meta",
    "journal_summary",
]

JOURNAL_VERSION = 1

#: Sidecar suffix for the compaction rewrite (``<journal>.compact``).
COMPACT_SUFFIX = ".compact"

#: Event-type registry for the codec (name -> dataclass).
EVENT_TYPES: dict[str, type[SchedulerEvent]] = {
    cls.__name__: cls
    for cls in (
        ContainerRegistered,
        AllocationGranted,
        AllocationPaused,
        AllocationResumed,
        AllocationRejected,
        AllocationCommitted,
        AllocationReleased,
        AllocationAborted,
        MemoryAssigned,
        ReservationReclaimed,
        ProcessExited,
        ContainerClosed,
    )
}


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


def encode_event(event: SchedulerEvent) -> dict[str, Any]:
    """One event as a journal record (plain JSON types only)."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise JournalError(f"unknown event type {name!r}")
    return {"kind": "event", "event": name, **dataclasses.asdict(event)}


def decode_event(record: dict[str, Any]) -> SchedulerEvent:
    """Rebuild the typed event from a journal record."""
    name = record.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise JournalError(f"journal record has unknown event type {name!r}")
    kwargs = {
        f.name: record[f.name] for f in dataclasses.fields(cls) if f.name in record
    }
    missing = {f.name for f in dataclasses.fields(cls)} - set(kwargs)
    if missing:
        raise JournalError(f"{name} record missing fields {sorted(missing)}")
    return cls(**kwargs)


def serialize_state(scheduler: GpuMemoryScheduler) -> dict[str, Any]:
    """Full scheduler state as plain JSON types (snapshot payload).

    Locks the runtime facade for one consistent read, then delegates to
    the pure core's :meth:`~repro.core.scheduler.state.SchedulerState.
    serialize`.
    """
    with scheduler._lock:
        return scheduler.state.serialize()


# ---------------------------------------------------------------------------
# the streaming reader
# ---------------------------------------------------------------------------


class JournalReader:
    """Iterate a journal's records line-by-line, never slurping the file.

    Yields one decoded record dict per *complete* line (meta included).
    Crash-vs-corruption semantics:

    - an **unterminated** final line is the expected artifact of a crash
      mid-append: it is dropped, counted in :attr:`torn`, and iteration
      ends;
    - a **terminated** unparseable line is real corruption (a crash cannot
      append a newline to garbage it never finished writing) and raises
      :class:`~repro.errors.JournalError` wherever it sits in the file.

    :attr:`offset` tracks the byte position just past the last complete
    line consumed — the compactor's cut point: every byte before it is
    covered by the records already yielded, every byte at or after it is
    the delta to carry over verbatim.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.torn = 0
        self.offset = 0
        self.lineno = 0
        #: Raw bytes (newline included) of the record last yielded.
        self.raw: bytes = b""
        try:
            self._fh: BinaryIO | None = open(path, "rb")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> "JournalReader":
        return self

    def __next__(self) -> dict[str, Any]:
        fh = self._fh
        if fh is None:
            raise JournalError(f"journal reader for {self.path} is closed")
        raw = fh.readline()
        if not raw:
            raise StopIteration
        if not raw.endswith(b"\n"):
            # Unterminated tail: crash mid-append; drop and stop.
            self.torn += 1
            raise StopIteration
        self.lineno += 1
        try:
            record = json.loads(raw.decode("utf-8"))
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"not a journal record: {record!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise JournalError(
                f"corrupt journal {self.path} at line {self.lineno}: {exc}"
            ) from exc
        self.raw = raw
        self.offset += len(raw)
        return record


def read_meta(path: str) -> dict[str, Any] | None:
    """The journal's meta record, reading no further than its line.

    Streams from the top and stops at the first ``meta`` — O(1) for every
    well-formed journal, where meta is the first line — instead of
    parsing the whole file.  Returns ``None`` when the file has no meta
    record at all.
    """
    with JournalReader(path) as reader:
        for record in reader:
            if record.get("kind") == "meta":
                return record
    return None


def _truncate_torn_tail(path: str) -> int:
    """Chop an unterminated final line left by a crash mid-append.

    Returns the number of bytes dropped.  Appending to a journal whose
    last line is torn would concatenate the first new record onto the
    fragment, turning a tolerated crash artifact into mid-file corruption
    — so :meth:`SchedulerJournal.attach` truncates before reopening.
    """
    try:
        if os.path.getsize(path) == 0:
            return 0
    except OSError:
        return 0
    with open(path, "rb+") as fh:
        fh.seek(0, os.SEEK_END)
        end = fh.tell()
        fh.seek(end - 1)
        if fh.read(1) == b"\n":
            return 0
        # Scan backwards in chunks for the last newline; everything after
        # it is the torn fragment.
        cut = 0
        pos = end
        while pos > 0:
            step = min(65536, pos)
            fh.seek(pos - step)
            chunk = fh.read(step)
            newline = chunk.rfind(b"\n")
            if newline != -1:
                cut = pos - step + newline + 1
                break
            pos -= step
        fh.truncate(cut)
        return end - cut


def _fsync_dir(directory: str) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass  # lint: fsync on a directory fd is advisory on some filesystems
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# the journal writer
# ---------------------------------------------------------------------------


class SchedulerJournal:
    """Append-only on-disk journal subscribed to a scheduler's event log.

    Args:
        path: journal file (created on first attach).
        snapshot_interval: events between compacted snapshots; ``None``
            disables interval snapshots (pure event log — what the
            property tests use so every prefix is replayable).
        fsync: force data to the platters on every append batch.  Off by
            default: the reproduction favours test throughput, a production
            deploy flips it on for durability across power loss (the write
            is still flushed to the OS either way, so it survives a process
            SIGKILL — the failure mode PR 1 defends against).
        mode: ``"group"`` (default) appends through the background
            group-commit writer so no disk I/O happens under the scheduler
            lock; ``"sync"`` writes synchronously inside the event-log
            listener — the seed behaviour, kept as the ablation baseline.
        compact_at_bytes: arm the background compactor (group mode only)
            when the live file exceeds this many bytes at a writer
            quiescent point; ``None`` (default) disables auto-compaction.
            :meth:`compact` can always be called explicitly.
    """

    def __init__(
        self,
        path: str,
        *,
        snapshot_interval: int | None = 256,
        fsync: bool = False,
        mode: str = "group",
        compact_at_bytes: int | None = None,
    ) -> None:
        if snapshot_interval is not None and snapshot_interval < 1:
            raise JournalError(
                f"snapshot_interval must be >= 1 or None: {snapshot_interval}"
            )
        if mode not in ("group", "sync"):
            raise JournalError(f"unknown journal mode {mode!r}")
        if compact_at_bytes is not None and compact_at_bytes < 1:
            raise JournalError(
                f"compact_at_bytes must be >= 1 or None: {compact_at_bytes}"
            )
        self.path = path
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self.mode = mode
        self.compact_at_bytes = compact_at_bytes
        self._fh: TextIO | None = None
        self._scheduler: GpuMemoryScheduler | None = None
        self._events_since_snapshot = 0
        #: Appended event count this process lifetime (observability).
        self.events_written = 0
        #: Completed compactions this process lifetime (observability).
        self.compactions = 0
        # Group-commit machinery.  Lock ordering: scheduler lock, then
        # ``_cond`` — producers enqueue under both; the writer's quiescent
        # snapshot acquires them in the same order; never the reverse.
        self._cond = threading.Condition()
        self._queue: list[tuple[str, Any]] = []  # ("event", ev) | ("snapshot", st)
        self._enqueued = 0
        self._durable = 0
        self._stop = False
        self._error: Exception | None = None
        self._writer: threading.Thread | None = None
        # Compaction machinery.  ``_io_lock`` serializes file-handle I/O
        # (writer batches vs the compactor's rename + reopen); it is a
        # leaf lock: nothing else is ever acquired inside it, and the
        # scheduler lock never nests around it on the producer path
        # (producers only touch ``_cond``).
        self._io_lock = threading.Lock()
        self._compact_mutex = threading.Lock()  # one compaction at a time
        self._compact_event = threading.Event()
        self._compact_stop = False
        self._compactor: threading.Thread | None = None
        # Size after the last compaction: the auto-trigger requires the
        # file to double past this floor so a live state larger than
        # ``compact_at_bytes`` cannot thrash the compactor.
        self._compact_floor = 0

    # -- lifecycle ----------------------------------------------------------

    def attach(self, scheduler: GpuMemoryScheduler, *, compact: bool = False) -> None:
        """Subscribe to ``scheduler`` and start journaling its events.

        A fresh (empty) journal gets a ``meta`` record pinning the
        scheduler's configuration; attaching an incompatible scheduler to
        an existing journal raises.  With ``compact=True`` (the recovery
        path) a snapshot of the current state is written immediately.  In
        group mode the writer thread (and, with ``compact_at_bytes``, the
        compactor thread) starts here, after the synchronous meta/initial-
        snapshot writes.

        Re-attach hygiene: a stale ``<path>.compact`` sidecar (crash mid-
        compaction) is deleted — the live journal is authoritative until
        the rename — and an unterminated torn tail is truncated so new
        appends start on a fresh line.  Only the meta line is read; attach
        cost is O(1) in journal size.
        """
        if self._scheduler is not None:
            raise JournalError(f"journal {self.path} already attached")
        sidecar = self.path + COMPACT_SUFFIX
        if os.path.exists(sidecar):
            os.remove(sidecar)
        existing_meta = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            _truncate_torn_tail(self.path)
            existing_meta = read_meta(self.path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._scheduler = scheduler
        if existing_meta is None:
            self._write(
                {
                    "kind": "meta",
                    "version": JOURNAL_VERSION,
                    "total_memory": scheduler.total_memory,
                    "policy": scheduler.policy.name,
                    "context_overhead": scheduler.context_overhead,
                    "resume_mode": scheduler.resume_mode,
                }
            )
        else:
            self._check_meta(existing_meta, scheduler)
        needs_snapshot = compact or (
            existing_meta is None
            and (scheduler._containers or len(scheduler.log) > 0)
        )
        if needs_snapshot:
            self.write_snapshot()
        scheduler.log.listeners.append(self.record)
        scheduler.journal = self
        if self.mode == "group":
            self._stop = False
            self._error = None
            self._writer = threading.Thread(
                target=self._run_writer, name="journal-writer", daemon=True
            )
            self._writer.start()
            if self.compact_at_bytes is not None:
                self._compact_stop = False
                self._compact_event.clear()
                self._compactor = threading.Thread(
                    target=self._run_compactor,
                    name="journal-compactor",
                    daemon=True,
                )
                self._compactor.start()

    @staticmethod
    def _check_meta(meta: dict[str, Any], scheduler: GpuMemoryScheduler) -> None:
        mismatches = [
            (key, expected, actual)
            for key, expected, actual in (
                ("total_memory", meta.get("total_memory"), scheduler.total_memory),
                ("policy", meta.get("policy"), scheduler.policy.name),
                (
                    "context_overhead",
                    meta.get("context_overhead"),
                    scheduler.context_overhead,
                ),
                ("resume_mode", meta.get("resume_mode"), scheduler.resume_mode),
            )
            if expected != actual
        ]
        if mismatches:
            detail = ", ".join(
                f"{key}: journal={expected!r} scheduler={actual!r}"
                for key, expected, actual in mismatches
            )
            raise JournalError(f"journal/scheduler configuration mismatch: {detail}")

    def close(self) -> None:
        """Detach, stop the compactor, drain the writer, close the file.

        Order matters: the compactor goes first (an in-flight compaction
        needs the writer alive for its quiescent snapshot), then the
        writer drains, then the handle closes under ``_io_lock``.
        """
        if self._scheduler is not None:
            try:
                self._scheduler.log.listeners.remove(self.record)
            except ValueError:
                pass
            if getattr(self._scheduler, "journal", None) is self:
                self._scheduler.journal = None
        compactor = self._compactor
        if compactor is not None:
            self._compact_stop = True
            self._compact_event.set()
            compactor.join()
            self._compactor = None
        writer = self._writer
        if writer is not None:
            with self._cond:
                self._stop = True
                self._cond.notify_all()
            writer.join()
            self._writer = None
        self._scheduler = None
        if self._fh is not None:
            with self._io_lock:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def record(self, event: SchedulerEvent) -> None:
        """EventLog listener (called under the scheduler lock).

        Group mode: enqueue only — a list append and a notify; the writer
        thread does the disk I/O.  Sync mode: the seed's behaviour, write +
        flush (+ fsync) right here under the lock.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        if self._writer is None:
            self._write(encode_event(event))
            self.events_written += 1
            self._events_since_snapshot += 1
            if (
                self.snapshot_interval is not None
                and self._events_since_snapshot >= self.snapshot_interval
            ):
                self.write_snapshot()
            return
        with self._cond:
            self._enqueued += 1
            self._queue.append(("event", event))
            self._cond.notify()

    def wait_durable(self) -> None:
        """Block until everything enqueued so far is written and flushed.

        The runtime facade calls this *after* releasing the scheduler lock
        and before any reply leaves — the group-commit half of the WAL
        ordering guarantee.  No-op in sync mode (appends were already
        durable when the listener returned) and when detached.

        A dead writer thread is a durability failure, never a silent
        success: if it died recording an error, that error is re-raised;
        if it died without one (killed, interpreter teardown), a
        :class:`~repro.errors.JournalError` is raised — returning normally
        here would let a reply leave with its events stranded in the
        queue.
        """
        writer = self._writer
        if writer is None:
            if self._error is not None:
                raise self._error
            return
        with self._cond:
            target = self._enqueued
            while self._durable < target and self._error is None:
                if not writer.is_alive():
                    raise JournalError(
                        f"journal writer for {self.path} died with "
                        f"{target - self._durable} record(s) not durable"
                    )
                self._cond.wait(0.05)
            if self._error is not None:
                raise self._error

    def write_snapshot(self) -> None:
        """Append a compacted snapshot of the attached scheduler's state.

        With the writer running, the state is serialized under the
        scheduler lock *while enqueueing* (so no event can slip between
        the serialization and its position in the write order) and the
        call returns once the snapshot is durable.
        """
        if self._scheduler is None:
            raise JournalError("journal not attached to a scheduler")
        if self._writer is None:
            self._write({"kind": "snapshot", "state": serialize_state(self._scheduler)})
            self._events_since_snapshot = 0
            return
        scheduler = self._scheduler
        with scheduler._lock:
            state = scheduler.state.serialize()
            with self._cond:
                self._enqueued += 1
                self._queue.append(("snapshot", state))
                self._cond.notify()
        self.wait_durable()

    # -- compaction ----------------------------------------------------------

    def compact(self) -> bool:
        """Rewrite the journal to ``meta + newest snapshot + event tail``.

        Safe to call from any thread while producers keep appending: the
        scan and sidecar write are lock-free (the journal is append-only,
        so every byte below the scan's stopping offset is immutable), and
        only the final swap — delta copy, rename, reopen — holds the
        journal's internal ``_io_lock``, briefly blocking the writer
        thread's next flush but never a producer (producers only enqueue
        under ``_cond``).  The scheduler lock is not held across any of
        this I/O.

        Returns ``True`` when a compaction ran, ``False`` when another one
        is already in flight.  Crash safety: the live journal is
        untouched until the atomic ``os.rename``; a half-written sidecar
        is simply deleted on the next attach.
        """
        if self._fh is None or self._scheduler is None:
            raise JournalError("journal not attached to a scheduler")
        if not self._compact_mutex.acquire(blocking=False):
            return False
        try:
            began = time.perf_counter()
            bytes_before = os.path.getsize(self.path)
            # A fresh quiescent snapshot makes the rewrite maximally
            # effective (the tail after it is empty or nearly so) and is
            # durable before the scan starts.
            self.write_snapshot()
            sidecar, offset = self._prepare_sidecar()
            self._swap_in(sidecar, offset)
            bytes_after = os.path.getsize(self.path)
            elapsed = time.perf_counter() - began
            self._compact_floor = bytes_after
            self.compactions += 1
            _COMPACTIONS.inc()
            _COMPACT_SECONDS.observe(elapsed)
            _JOURNAL_BYTES.set(bytes_after)
            _REC.record(
                _EV_COMPACT, a=bytes_before, b=bytes_after, x=elapsed
            )
            return True
        finally:
            self._compact_mutex.release()

    def _prepare_sidecar(self) -> tuple[str, int]:
        """Write ``meta + newest snapshot + tail`` to a fsynced sidecar.

        Scans the live journal with no lock held: the file is append-only,
        so every byte up to the scan's stopping offset is immutable.
        Returns ``(sidecar_path, offset)`` where ``offset`` is the first
        live-journal byte *not* covered by the sidecar — the start of the
        delta :meth:`_swap_in` carries over.
        """
        meta_raw: bytes | None = None
        snapshot_raw: bytes | None = None
        tail: list[bytes] = []
        with JournalReader(self.path) as reader:
            for record in reader:
                kind = record.get("kind")
                if kind == "meta":
                    meta_raw = reader.raw
                elif kind == "snapshot":
                    snapshot_raw = reader.raw
                    tail.clear()
                else:
                    tail.append(reader.raw)
            offset = reader.offset
        if meta_raw is None:
            raise JournalError(f"journal {self.path} has no meta record")
        if snapshot_raw is None:
            # compact() writes one first; reaching this means the journal
            # was swapped out from under us — abort, nothing was touched.
            raise JournalError(f"journal {self.path} has no snapshot to compact to")
        sidecar = self.path + COMPACT_SUFFIX
        with open(sidecar, "wb") as fh:
            fh.write(meta_raw)
            fh.write(snapshot_raw)
            for raw in tail:
                fh.write(raw)
            fh.flush()
            os.fsync(fh.fileno())
        return sidecar, offset

    def _swap_in(self, sidecar: str, offset: int) -> None:
        """Atomically replace the live journal with the prepared sidecar.

        Under ``_io_lock`` — so the writer thread cannot append mid-swap —
        the delta (bytes appended past ``offset`` since the scan; always
        whole lines, because batches flush under the same lock) is copied
        onto the sidecar and fsynced, the sidecar is ``os.rename``d over
        the live path (atomic within a filesystem), the directory entry is
        fsynced, and the append handle re-opens on the new file.  A crash
        before the rename leaves the old journal intact; after it, the new
        one — there is no window where recovery sees neither.
        """
        with self._io_lock:
            if self._fh is None:
                raise JournalError(f"journal {self.path} is closed")
            self._fh.flush()
            with open(self.path, "rb") as live, open(sidecar, "ab") as out:
                live.seek(offset)
                while True:
                    chunk = live.read(1 << 20)
                    if not chunk:
                        break
                    out.write(chunk)
                out.flush()
                os.fsync(out.fileno())
            os.rename(sidecar, self.path)
            _fsync_dir(os.path.dirname(self.path))
            old = self._fh
            self._fh = open(self.path, "a", encoding="utf-8")
            old.close()

    def _run_compactor(self) -> None:
        """Background compactor: waits for the writer's size trigger."""
        while True:
            self._compact_event.wait()
            if self._compact_stop:
                return
            self._compact_event.clear()
            try:
                self.compact()
            except (JournalError, OSError) as exc:
                # The live journal is untouched until the rename, so a
                # failed compaction is safe to retry at the next trigger.
                _COMPACT_FAILURES.inc()
                _REC.record(_EV_COMPACT_FAILED, s=type(exc).__name__)

    def _maybe_request_compaction(self) -> None:
        """Arm the compactor when the live file outgrows the threshold.

        Runs on the writer thread at quiescent points (after each drained
        batch), off the producers' path.  The ``2 × floor`` term keeps a
        live state bigger than ``compact_at_bytes`` from re-arming the
        compactor on every batch: each compaction must have had room to
        halve the file before the next one is worth anything.
        """
        if self.compact_at_bytes is None or self._compactor is None:
            return
        fh = self._fh
        if fh is None:
            return
        try:
            size = os.fstat(fh.fileno()).st_size
        except (OSError, ValueError):
            return
        _JOURNAL_BYTES.set(size)
        if size >= self.compact_at_bytes and size >= 2 * self._compact_floor:
            self._compact_event.set()

    # -- the group-commit writer thread --------------------------------------

    def _run_writer(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                batch = self._queue
                self._queue = []
                stopping = self._stop
            if batch:
                try:
                    self._write_items(batch)
                except Exception as exc:  # surface via wait_durable
                    with self._cond:
                        self._error = exc
                        self._durable += len(batch)
                        self._cond.notify_all()
                    return
                with self._cond:
                    self._durable += len(batch)
                    self._cond.notify_all()
                try:
                    self._maybe_snapshot_at_quiescent_point()
                    self._maybe_request_compaction()
                except Exception as exc:
                    with self._cond:
                        self._error = exc
                        self._cond.notify_all()
                    return
            elif stopping:
                return

    def _write_items(self, items: list[tuple[str, Any]]) -> None:
        """One batch: serialize + write every item, one flush, one fsync.

        The file I/O holds ``_io_lock`` so a concurrent compaction swap
        cannot rename the file out from under a half-written batch; the
        serialization and metric observation stay outside it.
        """
        began = time.perf_counter()
        lines: list[str] = []
        snapshots = 0
        events = 0
        since_snapshot = self._events_since_snapshot
        for kind, payload in items:
            if kind == "event":
                lines.append(
                    json.dumps(encode_event(payload), separators=(",", ":")) + "\n"
                )
                events += 1
                since_snapshot += 1
            else:  # snapshot (pre-serialized state)
                lines.append(
                    json.dumps(
                        {"kind": "snapshot", "state": payload},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                snapshots += 1
                since_snapshot = 0
        data = "".join(lines)
        fsync_elapsed = 0.0
        with self._io_lock:
            if self._fh is None:
                raise JournalError(f"journal {self.path} is closed")
            self._fh.write(data)
            self._fh.flush()
            if self.fsync:
                fsync_began = time.perf_counter()
                os.fsync(self._fh.fileno())
                fsync_elapsed = time.perf_counter() - fsync_began
        self.events_written += events
        self._events_since_snapshot = since_snapshot
        if self.fsync:
            _FSYNC_SECONDS.observe(fsync_elapsed)
        elapsed = time.perf_counter() - began
        _APPEND_SECONDS.observe(elapsed)
        _REC.record(
            _EV_FLUSH, a=len(items), b=1 if self.fsync else 0, x=elapsed
        )
        for _ in range(snapshots):
            _REC.record(_EV_SNAPSHOT)

    def _maybe_snapshot_at_quiescent_point(self) -> None:
        """Interval compaction, only ever between batches.

        Quiescence: the scheduler lock is taken with the queue drained, so
        the serialized state corresponds exactly to the current journal
        position.  The lock is released before the snapshot (and any
        events drained with it) hit the disk — no I/O under the lock.
        """
        if (
            self.snapshot_interval is None
            or self._events_since_snapshot < self.snapshot_interval
        ):
            return
        scheduler = self._scheduler
        if scheduler is None:
            return
        with scheduler._lock:
            with self._cond:
                drained = self._queue
                self._queue = []
            state = scheduler.state.serialize()
        self._write_items(drained + [("snapshot", state)])
        if drained:
            with self._cond:
                self._durable += len(drained)
                self._cond.notify_all()

    # -- low-level append (meta, sync mode, pre-writer snapshots) ------------

    def _write(self, record: dict[str, Any]) -> None:
        began = time.perf_counter()
        data = json.dumps(record, separators=(",", ":")) + "\n"
        fsync_elapsed = 0.0
        with self._io_lock:
            if self._fh is None:
                raise JournalError(f"journal {self.path} is closed")
            self._fh.write(data)
            self._fh.flush()
            if self.fsync:
                fsync_began = time.perf_counter()
                os.fsync(self._fh.fileno())
                fsync_elapsed = time.perf_counter() - fsync_began
        if self.fsync:
            _FSYNC_SECONDS.observe(fsync_elapsed)
        elapsed = time.perf_counter() - began
        _APPEND_SECONDS.observe(elapsed)
        _REC.record(_EV_FLUSH, a=1, b=1 if self.fsync else 0, x=elapsed)
        if record.get("kind") == "snapshot":
            _REC.record(_EV_SNAPSHOT)


# ---------------------------------------------------------------------------
# offline compaction (the `repro compact` CLI)
# ---------------------------------------------------------------------------


def compact_journal(path: str) -> dict[str, Any]:
    """Compact a journal with no live daemon attached (``repro compact``).

    Rewrites ``path`` down to ``meta + newest snapshot + event tail``
    through a fsynced sidecar and one atomic ``os.rename`` — the same
    crash discipline as the online compactor.  A journal that has never
    snapshotted gets one synthesized by replaying it, so the rewrite
    always compacts instead of copying the event log.  A torn final line
    is dropped (it would have been dropped at recovery anyway); real
    corruption raises and leaves the file untouched.

    Returns a stats dict: ``bytes_before``/``bytes_after``,
    ``events_kept``/``events_dropped``, ``snapshots_dropped``,
    ``torn_dropped``.
    """
    try:
        bytes_before = os.path.getsize(path)
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    meta_raw: bytes | None = None
    snapshot_raw: bytes | None = None
    tail: list[bytes] = []
    events_total = 0
    snapshots_seen = 0
    with JournalReader(path) as reader:
        for record in reader:
            kind = record.get("kind")
            if kind == "meta":
                if meta_raw is not None:
                    raise JournalError(f"duplicate meta record in {path}")
                meta_raw = reader.raw
            elif kind == "snapshot":
                snapshots_seen += 1
                snapshot_raw = reader.raw
                tail.clear()
            elif kind == "event":
                events_total += 1
                tail.append(reader.raw)
            else:
                raise JournalError(f"unknown journal record kind {kind!r} in {path}")
        torn = reader.torn
    if meta_raw is None:
        raise JournalError(f"journal {path} has no meta record")
    snapshots_kept = 1
    if snapshot_raw is None:
        snapshots_kept = 0
        scheduler = restore(path)
        snapshot_raw = (
            json.dumps(
                {"kind": "snapshot", "state": serialize_state(scheduler)},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        tail = []
    sidecar = path + COMPACT_SUFFIX
    with open(sidecar, "wb") as fh:
        fh.write(meta_raw)
        fh.write(snapshot_raw)
        for raw in tail:
            fh.write(raw)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(sidecar, path)
    _fsync_dir(os.path.dirname(path))
    return {
        "path": path,
        "bytes_before": bytes_before,
        "bytes_after": os.path.getsize(path),
        "events_kept": len(tail),
        "events_dropped": events_total - len(tail),
        "snapshots_dropped": snapshots_seen - snapshots_kept,
        "torn_dropped": torn,
    }


# ---------------------------------------------------------------------------
# the reader / recovery path
# ---------------------------------------------------------------------------


def read_journal(
    path: str,
) -> tuple[dict[str, Any] | None, list[dict[str, Any]], int]:
    """Parse a journal file into memory (streaming under the hood).

    Returns ``(meta, records, torn)`` where ``records`` excludes the meta
    line and ``torn`` counts the dropped unterminated final line (the
    artifact of a crash mid-append).  Any *terminated* unparseable line —
    tail included — raises :class:`~repro.errors.JournalError`: a complete
    line of garbage is real corruption, not a torn write.

    Recovery and inspection paths (:func:`restore`,
    :func:`journal_summary`) stream instead of calling this; it remains
    for callers that genuinely need the full record list (``repro
    doctor``'s merged timeline, tests).
    """
    records: list[dict[str, Any]] = []
    meta: dict[str, Any] | None = None
    with JournalReader(path) as reader:
        for record in reader:
            if record["kind"] == "meta":
                if meta is not None:
                    raise JournalError(f"duplicate meta record in {path}")
                meta = record
            else:
                records.append(record)
        torn = reader.torn
    return meta, records, torn


def _build_scheduler(
    path: str,
    meta: dict[str, Any],
    clock: Callable[[], float] | None,
    policy: SchedulingPolicy | None,
    rng,
) -> GpuMemoryScheduler:
    if meta.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} version {meta.get('version')!r} != {JOURNAL_VERSION}"
        )
    if policy is None:
        policy = make_policy(meta["policy"], rng)
    return GpuMemoryScheduler(
        meta["total_memory"],
        policy,
        clock=clock,
        context_overhead=meta["context_overhead"],
        resume_mode=meta["resume_mode"],
    )


def restore(
    path: str,
    *,
    clock: Callable[[], float] | None = None,
    policy: SchedulingPolicy | None = None,
    rng=None,
    event_limit: int | None = None,
) -> GpuMemoryScheduler:
    """Rebuild a scheduler from its journal, streaming record by record.

    The result's :func:`~repro.core.scheduler.stats.snapshot` is identical
    to the crashed scheduler's at its last journaled event.  ``event_limit``
    replays only the first N events — the fault-injection suite uses it to
    model a crash at every event boundary without rewriting files.

    Memory stays flat in journal size: events are applied as they are
    read (a snapshot record *replaces* the accumulated state wholesale via
    ``load_snapshot``), never buffered.  ``policy``/``rng`` override the
    policy reconstructed from the meta record (replay itself never
    consults the policy; these only matter for post-recovery scheduling).
    To *continue* journaling after recovery::

        scheduler = restore(path, clock=clock)
        SchedulerJournal(path).attach(scheduler, compact=True)
    """
    scheduler: GpuMemoryScheduler | None = None
    # Records seen before the meta line (none, in a well-formed journal)
    # are held until the scheduler can be built.
    prelude: list[dict[str, Any]] | None = []
    events_seen = 0

    def apply(record: dict[str, Any]) -> bool:
        """Apply one record; False means the event limit was reached."""
        nonlocal events_seen
        kind = record["kind"]
        if kind == "event":
            if event_limit is not None and events_seen >= event_limit:
                return False
            event = decode_event(record)
            scheduler.state.apply_event(event)
            scheduler.log.append(event)
            events_seen += 1
        elif kind == "snapshot":
            scheduler.state.load_snapshot(record["state"])
            scheduler.log.events.clear()
        else:
            raise JournalError(f"unknown journal record kind {kind!r} in {path}")
        return True

    with JournalReader(path) as reader:
        for record in reader:
            if record["kind"] == "meta":
                if scheduler is not None:
                    raise JournalError(f"duplicate meta record in {path}")
                scheduler = _build_scheduler(path, record, clock, policy, rng)
                for pending in prelude:
                    if not apply(pending):
                        break
                prelude = None
            elif scheduler is None:
                prelude.append(record)
            elif not apply(record):
                break
    if scheduler is None:
        raise JournalError(f"journal {path} has no meta record")
    return scheduler


# ---------------------------------------------------------------------------
# inspection (the `repro recover` CLI)
# ---------------------------------------------------------------------------


def journal_summary(path: str) -> dict[str, Any]:
    """Shape of a journal without restoring it: counts per record type.

    Streams the file, so multi-GB journals cost O(1) memory.  Corruption
    mid-file is *surfaced*, not raised: the scan stops there and the
    summary's ``corrupt`` key carries the diagnostic (``repro recover`` /
    ``repro doctor`` want to describe a damaged file, not die on it).  A
    missing/unreadable file still raises.
    """
    meta: dict[str, Any] | None = None
    event_counts: dict[str, int] = {}
    snapshots = 0
    corrupt: str | None = None
    with JournalReader(path) as reader:
        try:
            for record in reader:
                kind = record["kind"]
                if kind == "meta":
                    if meta is not None:
                        raise JournalError(f"duplicate meta record in {path}")
                    meta = record
                elif kind == "snapshot":
                    snapshots += 1
                elif kind == "event":
                    name = record.get("event", "?")
                    event_counts[name] = event_counts.get(name, 0) + 1
        except JournalError as exc:
            corrupt = str(exc)
        torn = reader.torn
    return {
        "path": path,
        "meta": meta,
        "events": sum(event_counts.values()),
        "event_counts": dict(sorted(event_counts.items())),
        "snapshots": snapshots,
        "torn_lines": torn,
        "corrupt": corrupt,
    }
