"""Write-ahead journal + crash recovery for the GPU memory scheduler.

The paper's daemon keeps every reservation in process memory: kill it and
every container's wrapper blocks forever while the bookkeeping that maps
reservations to containers evaporates.  This module makes the scheduler
crash-recoverable:

- every :class:`~repro.core.scheduler.events.SchedulerEvent` is appended to
  an on-disk journal *before the decision's reply leaves the daemon*
  (classic WAL ordering);
- every ``snapshot_interval`` events a **compacted snapshot** — the full
  serialized scheduler state — is interleaved, bounding replay time;
- :func:`restore` rebuilds a scheduler from the newest snapshot plus the
  event tail, byte-identical to the pre-crash state (verified by the
  crash-consistency property suite in ``tests/core/test_journal_properties.py``).

**Group commit** (the default, ``mode="group"``): the scheduler's lock is
never held across disk I/O.  The event-log listener only *enqueues* the
event — a list append under a condition variable — and a dedicated writer
thread drains the queue in batches: one ``write`` + ``flush`` (+ one
``fsync`` when enabled) per batch, in strict enqueue order.  The runtime
facade calls :meth:`SchedulerJournal.wait_durable` after releasing the
scheduler lock and before any reply leaves, so the WAL guarantee is
unchanged while concurrent transitions share a single flush instead of
serializing on it (``benchmarks/test_bench_ablation_journal.py`` measures
the difference; ``mode="sync"`` keeps the seed's write-under-the-lock
behaviour as the ablation baseline).  The socket servers' pipelined batch
dispatch leans on the same machinery: a readable event's worth of frames
is bracketed by ``begin_batch``/``commit_batch`` on the scheduler facade,
which defers the ``wait_durable`` to the bracket's end — N pipelined
decisions ride one writer-thread flush, and every reply in the batch still
leaves only after the events it depends on are durable.

Interval snapshots are taken only at **quiescent points**: the writer
thread briefly takes the scheduler lock with its queue drained — so the
serialized state exactly matches the journal position — then writes and
flushes the snapshot *outside* that lock.

Replay never re-runs the scheduling *policy*: derived decisions
(``MemoryAssigned``, ``ReservationReclaimed``, resumes) are applied
verbatim from the journal via
:meth:`~repro.core.scheduler.state.SchedulerState.apply_event`, so
recovery is deterministic even under the Random policy.

What intentionally does **not** survive a crash:

- withheld reply callbacks (``PendingAllocation.resume``) — they wrap dead
  sockets.  Restored pending entries are *orphans*; when the wrapper
  reconnects and re-issues its request, ``request_allocation`` adopts the
  orphan instead of double-queueing (see ``state.py``);
- event-log history older than the newest snapshot (state is exact, the
  Fig. 8 timeline before the snapshot is compacted away).

Journal format: one JSON object per line (same framing discipline as the
wire protocol).  ``{"kind": "meta"}`` opens the file and pins the scheduler
configuration; ``{"kind": "event"}`` records one scheduler event;
``{"kind": "snapshot"}`` holds a compacted state.  A torn final line —
the expected artifact of a crash mid-write — is detected and dropped.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Any, Callable, TextIO

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    MemoryAssigned,
    ProcessExited,
    ReservationReclaimed,
    SchedulerEvent,
)
from repro.core.scheduler.policies import SchedulingPolicy, make_policy
from repro.errors import JournalError
from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY
from repro.obs.recorder import RECORDER

# Flight-recorder events (module alias: the obs-overhead bench stub idiom).
_REC = RECORDER
_EV_FLUSH = RECORDER.declare(
    "journal.flush", a="items", b="fsync", x="seconds"
)
_EV_SNAPSHOT = RECORDER.declare("journal.snapshot")

_APPEND_SECONDS = REGISTRY.histogram(
    "convgpu_journal_append_seconds",
    "Wall time of one journal append batch (serialize + write + flush + fsync)",
    buckets=LATENCY_BUCKETS,
)
_FSYNC_SECONDS = REGISTRY.histogram(
    "convgpu_journal_fsync_seconds",
    "Wall time of the fsync portion of journal appends (fsync=True only)",
    buckets=LATENCY_BUCKETS,
)

__all__ = [
    "JOURNAL_VERSION",
    "SchedulerJournal",
    "encode_event",
    "decode_event",
    "serialize_state",
    "restore",
    "read_journal",
    "journal_summary",
]

JOURNAL_VERSION = 1

#: Event-type registry for the codec (name -> dataclass).
EVENT_TYPES: dict[str, type[SchedulerEvent]] = {
    cls.__name__: cls
    for cls in (
        ContainerRegistered,
        AllocationGranted,
        AllocationPaused,
        AllocationResumed,
        AllocationRejected,
        AllocationCommitted,
        AllocationReleased,
        AllocationAborted,
        MemoryAssigned,
        ReservationReclaimed,
        ProcessExited,
        ContainerClosed,
    )
}


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


def encode_event(event: SchedulerEvent) -> dict[str, Any]:
    """One event as a journal record (plain JSON types only)."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise JournalError(f"unknown event type {name!r}")
    return {"kind": "event", "event": name, **dataclasses.asdict(event)}


def decode_event(record: dict[str, Any]) -> SchedulerEvent:
    """Rebuild the typed event from a journal record."""
    name = record.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise JournalError(f"journal record has unknown event type {name!r}")
    kwargs = {
        f.name: record[f.name] for f in dataclasses.fields(cls) if f.name in record
    }
    missing = {f.name for f in dataclasses.fields(cls)} - set(kwargs)
    if missing:
        raise JournalError(f"{name} record missing fields {sorted(missing)}")
    return cls(**kwargs)


def serialize_state(scheduler: GpuMemoryScheduler) -> dict[str, Any]:
    """Full scheduler state as plain JSON types (snapshot payload).

    Locks the runtime facade for one consistent read, then delegates to
    the pure core's :meth:`~repro.core.scheduler.state.SchedulerState.
    serialize`.
    """
    with scheduler._lock:
        return scheduler.state.serialize()


# ---------------------------------------------------------------------------
# the journal writer
# ---------------------------------------------------------------------------


class SchedulerJournal:
    """Append-only on-disk journal subscribed to a scheduler's event log.

    Args:
        path: journal file (created on first attach).
        snapshot_interval: events between compacted snapshots; ``None``
            disables compaction (pure event log — what the property tests
            use so every prefix is replayable).
        fsync: force data to the platters on every append batch.  Off by
            default: the reproduction favours test throughput, a production
            deploy flips it on for durability across power loss (the write
            is still flushed to the OS either way, so it survives a process
            SIGKILL — the failure mode PR 1 defends against).
        mode: ``"group"`` (default) appends through the background
            group-commit writer so no disk I/O happens under the scheduler
            lock; ``"sync"`` writes synchronously inside the event-log
            listener — the seed behaviour, kept as the ablation baseline.
    """

    def __init__(
        self,
        path: str,
        *,
        snapshot_interval: int | None = 256,
        fsync: bool = False,
        mode: str = "group",
    ) -> None:
        if snapshot_interval is not None and snapshot_interval < 1:
            raise JournalError(
                f"snapshot_interval must be >= 1 or None: {snapshot_interval}"
            )
        if mode not in ("group", "sync"):
            raise JournalError(f"unknown journal mode {mode!r}")
        self.path = path
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self.mode = mode
        self._fh: TextIO | None = None
        self._scheduler: GpuMemoryScheduler | None = None
        self._events_since_snapshot = 0
        #: Appended event count this process lifetime (observability).
        self.events_written = 0
        # Group-commit machinery.  Lock ordering: scheduler lock, then
        # ``_cond`` — producers enqueue under both; the writer's quiescent
        # snapshot acquires them in the same order; never the reverse.
        self._cond = threading.Condition()
        self._queue: list[tuple[str, Any]] = []  # ("event", ev) | ("snapshot", st)
        self._enqueued = 0
        self._durable = 0
        self._stop = False
        self._error: Exception | None = None
        self._writer: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def attach(self, scheduler: GpuMemoryScheduler, *, compact: bool = False) -> None:
        """Subscribe to ``scheduler`` and start journaling its events.

        A fresh (empty) journal gets a ``meta`` record pinning the
        scheduler's configuration; attaching an incompatible scheduler to
        an existing journal raises.  With ``compact=True`` (the recovery
        path) a snapshot of the current state is written immediately.  In
        group mode the writer thread starts here, after the synchronous
        meta/initial-snapshot writes.
        """
        if self._scheduler is not None:
            raise JournalError(f"journal {self.path} already attached")
        existing_meta = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            existing_meta, _, _ = read_journal(self.path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._scheduler = scheduler
        if existing_meta is None:
            self._write(
                {
                    "kind": "meta",
                    "version": JOURNAL_VERSION,
                    "total_memory": scheduler.total_memory,
                    "policy": scheduler.policy.name,
                    "context_overhead": scheduler.context_overhead,
                    "resume_mode": scheduler.resume_mode,
                }
            )
        else:
            self._check_meta(existing_meta, scheduler)
        needs_snapshot = compact or (
            existing_meta is None
            and (scheduler._containers or len(scheduler.log) > 0)
        )
        if needs_snapshot:
            self.write_snapshot()
        scheduler.log.listeners.append(self.record)
        scheduler.journal = self
        if self.mode == "group":
            self._stop = False
            self._error = None
            self._writer = threading.Thread(
                target=self._run_writer, name="journal-writer", daemon=True
            )
            self._writer.start()

    @staticmethod
    def _check_meta(meta: dict[str, Any], scheduler: GpuMemoryScheduler) -> None:
        mismatches = [
            (key, expected, actual)
            for key, expected, actual in (
                ("total_memory", meta.get("total_memory"), scheduler.total_memory),
                ("policy", meta.get("policy"), scheduler.policy.name),
                (
                    "context_overhead",
                    meta.get("context_overhead"),
                    scheduler.context_overhead,
                ),
                ("resume_mode", meta.get("resume_mode"), scheduler.resume_mode),
            )
            if expected != actual
        ]
        if mismatches:
            detail = ", ".join(
                f"{key}: journal={expected!r} scheduler={actual!r}"
                for key, expected, actual in mismatches
            )
            raise JournalError(f"journal/scheduler configuration mismatch: {detail}")

    def close(self) -> None:
        """Detach, drain the writer, and close the file."""
        if self._scheduler is not None:
            try:
                self._scheduler.log.listeners.remove(self.record)
            except ValueError:
                pass
            if getattr(self._scheduler, "journal", None) is self:
                self._scheduler.journal = None
        writer = self._writer
        if writer is not None:
            with self._cond:
                self._stop = True
                self._cond.notify_all()
            writer.join()
            self._writer = None
        self._scheduler = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SchedulerJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def record(self, event: SchedulerEvent) -> None:
        """EventLog listener (called under the scheduler lock).

        Group mode: enqueue only — a list append and a notify; the writer
        thread does the disk I/O.  Sync mode: the seed's behaviour, write +
        flush (+ fsync) right here under the lock.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        if self._writer is None:
            self._write(encode_event(event))
            self.events_written += 1
            self._events_since_snapshot += 1
            if (
                self.snapshot_interval is not None
                and self._events_since_snapshot >= self.snapshot_interval
            ):
                self.write_snapshot()
            return
        with self._cond:
            self._enqueued += 1
            self._queue.append(("event", event))
            self._cond.notify()

    def wait_durable(self) -> None:
        """Block until everything enqueued so far is written and flushed.

        The runtime facade calls this *after* releasing the scheduler lock
        and before any reply leaves — the group-commit half of the WAL
        ordering guarantee.  No-op in sync mode (appends were already
        durable when the listener returned) and when detached.
        """
        writer = self._writer
        if writer is None:
            if self._error is not None:
                raise self._error
            return
        with self._cond:
            target = self._enqueued
            while self._durable < target and self._error is None:
                if not writer.is_alive():
                    break
                self._cond.wait(0.05)
            if self._error is not None:
                raise self._error

    def write_snapshot(self) -> None:
        """Append a compacted snapshot of the attached scheduler's state.

        With the writer running, the state is serialized under the
        scheduler lock *while enqueueing* (so no event can slip between
        the serialization and its position in the write order) and the
        call returns once the snapshot is durable.
        """
        if self._scheduler is None:
            raise JournalError("journal not attached to a scheduler")
        if self._writer is None:
            self._write({"kind": "snapshot", "state": serialize_state(self._scheduler)})
            self._events_since_snapshot = 0
            return
        scheduler = self._scheduler
        with scheduler._lock:
            state = scheduler.state.serialize()
            with self._cond:
                self._enqueued += 1
                self._queue.append(("snapshot", state))
                self._cond.notify()
        self.wait_durable()

    # -- the group-commit writer thread --------------------------------------

    def _run_writer(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                batch = self._queue
                self._queue = []
                stopping = self._stop
            if batch:
                try:
                    self._write_items(batch)
                except Exception as exc:  # surface via wait_durable
                    with self._cond:
                        self._error = exc
                        self._durable += len(batch)
                        self._cond.notify_all()
                    return
                with self._cond:
                    self._durable += len(batch)
                    self._cond.notify_all()
                try:
                    self._maybe_snapshot_at_quiescent_point()
                except Exception as exc:
                    with self._cond:
                        self._error = exc
                        self._cond.notify_all()
                    return
            elif stopping:
                return

    def _write_items(self, items: list[tuple[str, Any]]) -> None:
        """One batch: serialize + write every item, one flush, one fsync."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        began = time.perf_counter()
        snapshots = 0
        for kind, payload in items:
            if kind == "event":
                self._fh.write(
                    json.dumps(encode_event(payload), separators=(",", ":")) + "\n"
                )
                self.events_written += 1
                self._events_since_snapshot += 1
            else:  # snapshot (pre-serialized state)
                self._fh.write(
                    json.dumps(
                        {"kind": "snapshot", "state": payload},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                self._events_since_snapshot = 0
                snapshots += 1
        self._fh.flush()
        if self.fsync:
            fsync_began = time.perf_counter()
            os.fsync(self._fh.fileno())
            _FSYNC_SECONDS.observe(time.perf_counter() - fsync_began)
        elapsed = time.perf_counter() - began
        _APPEND_SECONDS.observe(elapsed)
        _REC.record(
            _EV_FLUSH, a=len(items), b=1 if self.fsync else 0, x=elapsed
        )
        for _ in range(snapshots):
            _REC.record(_EV_SNAPSHOT)

    def _maybe_snapshot_at_quiescent_point(self) -> None:
        """Interval compaction, only ever between batches.

        Quiescence: the scheduler lock is taken with the queue drained, so
        the serialized state corresponds exactly to the current journal
        position.  The lock is released before the snapshot (and any
        events drained with it) hit the disk — no I/O under the lock.
        """
        if (
            self.snapshot_interval is None
            or self._events_since_snapshot < self.snapshot_interval
        ):
            return
        scheduler = self._scheduler
        if scheduler is None:
            return
        with scheduler._lock:
            with self._cond:
                drained = self._queue
                self._queue = []
            state = scheduler.state.serialize()
        self._write_items(drained + [("snapshot", state)])
        if drained:
            with self._cond:
                self._durable += len(drained)
                self._cond.notify_all()

    # -- low-level append (meta, sync mode, pre-writer snapshots) ------------

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        began = time.perf_counter()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            fsync_began = time.perf_counter()
            os.fsync(self._fh.fileno())
            _FSYNC_SECONDS.observe(time.perf_counter() - fsync_began)
        elapsed = time.perf_counter() - began
        _APPEND_SECONDS.observe(elapsed)
        _REC.record(_EV_FLUSH, a=1, b=1 if self.fsync else 0, x=elapsed)
        if record.get("kind") == "snapshot":
            _REC.record(_EV_SNAPSHOT)


# ---------------------------------------------------------------------------
# the reader / recovery path
# ---------------------------------------------------------------------------


def read_journal(
    path: str,
) -> tuple[dict[str, Any] | None, list[dict[str, Any]], int]:
    """Parse a journal file tolerantly.

    Returns ``(meta, records, torn)`` where ``records`` excludes the meta
    line and ``torn`` counts trailing unparseable/unterminated lines that
    were dropped (the artifact of a crash mid-append).  Corruption anywhere
    *before* the tail raises :class:`~repro.errors.JournalError`.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline -> last split element is empty.
    torn = 0
    if lines and lines[-1] == b"":
        lines.pop()
    elif lines:
        lines.pop()  # unterminated tail: torn write
        torn += 1
    records: list[dict[str, Any]] = []
    meta: dict[str, Any] | None = None
    for index, line in enumerate(lines):
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"not a journal record: {record!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            if index == len(lines) - 1:
                torn += 1  # torn final line (crash mid-write)
                break
            raise JournalError(
                f"corrupt journal {path} at line {index + 1}: {exc}"
            ) from exc
        if record["kind"] == "meta":
            if meta is not None:
                raise JournalError(f"duplicate meta record in {path}")
            meta = record
        else:
            records.append(record)
    return meta, records, torn


def restore(
    path: str,
    *,
    clock: Callable[[], float] | None = None,
    policy: SchedulingPolicy | None = None,
    rng=None,
    event_limit: int | None = None,
) -> GpuMemoryScheduler:
    """Rebuild a scheduler from its journal.

    The result's :func:`~repro.core.scheduler.stats.snapshot` is identical
    to the crashed scheduler's at its last journaled event.  ``event_limit``
    replays only the first N events — the fault-injection suite uses it to
    model a crash at every event boundary without rewriting files.

    ``policy``/``rng`` override the policy reconstructed from the meta
    record (replay itself never consults the policy; these only matter for
    post-recovery scheduling).  To *continue* journaling after recovery::

        scheduler = restore(path, clock=clock)
        SchedulerJournal(path).attach(scheduler, compact=True)
    """
    meta, records, _torn = read_journal(path)
    if meta is None:
        raise JournalError(f"journal {path} has no meta record")
    if meta.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} version {meta.get('version')!r} != {JOURNAL_VERSION}"
        )
    if policy is None:
        policy = make_policy(meta["policy"], rng)
    scheduler = GpuMemoryScheduler(
        meta["total_memory"],
        policy,
        clock=clock,
        context_overhead=meta["context_overhead"],
        resume_mode=meta["resume_mode"],
    )
    # Pick the newest snapshot whose position is within the event limit,
    # then replay the event tail after it.
    base_state: dict[str, Any] | None = None
    tail: list[SchedulerEvent] = []
    events_seen = 0
    for record in records:
        kind = record["kind"]
        if kind == "event":
            if event_limit is not None and events_seen >= event_limit:
                break
            tail.append(decode_event(record))
            events_seen += 1
        elif kind == "snapshot":
            base_state = record["state"]
            tail.clear()
        else:
            raise JournalError(f"unknown journal record kind {kind!r} in {path}")
    if base_state is not None:
        scheduler.state.load_snapshot(base_state)
    for event in tail:
        scheduler.state.apply_event(event)
        scheduler.log.append(event)
    return scheduler


# ---------------------------------------------------------------------------
# inspection (the `repro recover` CLI)
# ---------------------------------------------------------------------------


def journal_summary(path: str) -> dict[str, Any]:
    """Shape of a journal without restoring it: counts per record type."""
    meta, records, torn = read_journal(path)
    event_counts: dict[str, int] = {}
    snapshots = 0
    for record in records:
        if record["kind"] == "snapshot":
            snapshots += 1
        elif record["kind"] == "event":
            name = record.get("event", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
    return {
        "path": path,
        "meta": meta,
        "events": sum(event_counts.values()),
        "event_counts": dict(sorted(event_counts.items())),
        "snapshots": snapshots,
        "torn_lines": torn,
    }
