"""ConVGPU's GPU memory scheduler (the paper's core contribution, §III-D).

- :class:`~repro.core.scheduler.state.SchedulerState` — the pure decision
  core (accept / pause / reject, redistribution, per-pid bookkeeping) whose
  transitions return :class:`~repro.core.scheduler.state.Transition`
  effect lists instead of performing I/O;
- :class:`~repro.core.scheduler.core.GpuMemoryScheduler` — the runtime
  facade: one mutex around each transition, effects (journal durability,
  metrics, resume callbacks) executed outside it;
- :mod:`~repro.core.scheduler.policies` — FIFO / Best-Fit / Recent-Use /
  Random plus ablation policies, each with an incremental candidate index;
- :class:`~repro.core.scheduler.service.SchedulerService` — protocol
  adapter for any IPC transport;
- :class:`~repro.core.scheduler.daemon.SchedulerDaemon` — the live host
  daemon with real per-container UNIX sockets;
- :mod:`~repro.core.scheduler.journal` — write-ahead journal + crash
  recovery (``restore()`` rebuilds the exact pre-crash state);
- :mod:`~repro.core.scheduler.liveness` — per-container heartbeats and
  orphan reaping for containers that die without a *close*.
"""

from repro.core.scheduler.core import (
    CONTEXT_OVERHEAD_CHARGE,
    Decision,
    GpuMemoryScheduler,
)
from repro.core.scheduler.state import SchedulerState, Transition
from repro.core.scheduler.daemon import (
    CONTAINER_SOCKET_NAME,
    WRAPPER_SONAME,
    SchedulerDaemon,
)
from repro.core.scheduler.liveness import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    HeartbeatMonitor,
)
from repro.core.scheduler.journal import (
    JOURNAL_VERSION,
    JournalReader,
    SchedulerJournal,
    compact_journal,
    journal_summary,
    read_journal,
    read_meta,
    restore,
    serialize_state,
)
from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    EventLog,
    MemoryAssigned,
    ProcessExited,
    SchedulerEvent,
)
from repro.core.scheduler.policies import (
    PAPER_POLICIES,
    POLICIES,
    BestFitPolicy,
    FifoPolicy,
    RandomPolicy,
    RecentUsePolicy,
    SchedulingPolicy,
    SmallestFirstPolicy,
    WorstFitPolicy,
    make_policy,
    register_policy,
)
from repro.core.scheduler.records import (
    AllocationRecord,
    ContainerRecord,
    PendingAllocation,
)
from repro.core.scheduler.service import SchedulerService
from repro.core.scheduler.stats import (
    ContainerStat,
    SchedulerSnapshot,
    SuspensionInterval,
    format_snapshot,
    snapshot,
    summarize_events,
    suspension_timeline,
)

__all__ = [
    "GpuMemoryScheduler",
    "SchedulerState",
    "Transition",
    "Decision",
    "CONTEXT_OVERHEAD_CHARGE",
    "SchedulerService",
    "SchedulerDaemon",
    "WRAPPER_SONAME",
    "CONTAINER_SOCKET_NAME",
    "SchedulingPolicy",
    "FifoPolicy",
    "BestFitPolicy",
    "RecentUsePolicy",
    "RandomPolicy",
    "WorstFitPolicy",
    "SmallestFirstPolicy",
    "POLICIES",
    "PAPER_POLICIES",
    "make_policy",
    "register_policy",
    "ContainerRecord",
    "AllocationRecord",
    "PendingAllocation",
    "EventLog",
    "SchedulerEvent",
    "ContainerRegistered",
    "AllocationGranted",
    "AllocationPaused",
    "AllocationResumed",
    "AllocationRejected",
    "AllocationCommitted",
    "AllocationReleased",
    "AllocationAborted",
    "MemoryAssigned",
    "ProcessExited",
    "ContainerClosed",
    "HeartbeatMonitor",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "SchedulerJournal",
    "JournalReader",
    "JOURNAL_VERSION",
    "restore",
    "serialize_state",
    "read_journal",
    "read_meta",
    "journal_summary",
    "compact_journal",
    "snapshot",
    "format_snapshot",
    "SchedulerSnapshot",
    "ContainerStat",
    "suspension_timeline",
    "SuspensionInterval",
    "summarize_events",
]
