"""Bookkeeping records of the GPU memory scheduler (§III-D).

The scheduler tracks, per container:

- ``limit``     — the GPU memory declared at creation (option/label/default);
- ``assigned``  — the slice of physical GPU memory currently reserved for
  the container (``assigned <= limit``; the sum over containers never
  exceeds the device);
- ``used``      — bytes of live allocations (plus per-pid context overhead);
- ``inflight``  — bytes granted but not yet committed (the window between
  the wrapper's size check and its address report, §III-C/D);
- every allocation "using hash structure" — address → (pid, size);
- pause state: the FIFO of withheld allocation replies, plus the
  suspension timestamps Fig. 8 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AllocationRecord", "PendingAllocation", "ContainerRecord"]


@dataclass(frozen=True)
class AllocationRecord:
    """One committed allocation (the scheduler's hash-table entry)."""

    address: int
    pid: int
    size: int
    #: True for the synthetic 66 MiB context-overhead charge of a pid.
    is_context_overhead: bool = False


@dataclass
class PendingAllocation:
    """An allocation whose reply is being withheld (container paused)."""

    pid: int
    #: Effective size (request + context overhead if first for the pid).
    size: int
    #: Raw requested size (without overhead), echoed in the grant.
    requested_size: int
    api: str
    requested_at: float
    #: Completes the deferred reply; installed by the service layer.
    resume: Callable[[dict[str, Any]], None] | None = None


@dataclass
class ContainerRecord:
    """All scheduler state for one container."""

    container_id: str
    limit: int
    created_seq: int
    created_at: float
    assigned: int = 0
    used: int = 0
    inflight: int = 0
    closed: bool = False
    #: address -> AllocationRecord (the paper's hash structure).
    allocations: dict[int, AllocationRecord] = field(default_factory=dict)
    #: pids that have been charged the first-allocation context overhead.
    pids_charged: set[int] = field(default_factory=set)
    #: pids whose overhead charge is still inflight (granted, not committed).
    overhead_pending: set[int] = field(default_factory=set)
    #: Deferred allocation requests in arrival order.
    pending: list[PendingAllocation] = field(default_factory=list)
    #: Timestamp of the most recent suspension (Recent-Use policy key).
    last_suspended_at: float = -1.0
    #: Total time this container's allocations spent suspended (Fig. 8).
    suspended_total: float = 0.0
    #: Number of pause episodes (observability).
    pause_count: int = 0

    # -- derived -------------------------------------------------------------

    @property
    def paused(self) -> bool:
        """A container is paused while any allocation reply is withheld."""
        return bool(self.pending)

    @property
    def committed_and_inflight(self) -> int:
        return self.used + self.inflight

    @property
    def insufficiency(self) -> int:
        """How far ``assigned`` is from the declared requirement.

        This is the quantity the Best-Fit policy matches against freed
        memory: "the container whose insufficient memory is closest, but
        not exceed to the remaining memory" (§III-D).
        """
        return max(0, self.limit - self.assigned)

    @property
    def headroom(self) -> int:
        """Bytes of assigned memory not yet used or promised."""
        return self.assigned - self.used - self.inflight

    @property
    def is_redistribution_candidate(self) -> bool:
        """Eligible to receive freed memory from the policy (§III-D).

        Open, paused, and still short of its declared limit — the exact
        filter the redistribution loop applies before asking the policy,
        and the candidacy predicate every incremental policy index keys on.
        """
        return not self.closed and bool(self.pending) and self.insufficiency > 0

    def effective_size(self, pid: int, size: int, overhead: int) -> int:
        """Request size adjusted with the first-allocation overhead (§III-D)."""
        if pid in self.pids_charged:
            return size
        return size + overhead

    def usage_of_pid(self, pid: int) -> int:
        """Committed bytes attributed to one pid."""
        return sum(r.size for r in self.allocations.values() if r.pid == pid)
