"""The scheduler daemon — the live analogue of the paper's Go program.

"GPU memory scheduler is a standalone program written in Go ... It runs on
the host machine similar to nvidia-docker-plugin" (§III-D).  Here it is a
thread-backed server owning:

- one **control socket** (``convgpu.sock``) that the customized
  nvidia-docker and the nvidia-docker-plugin talk to (registration, exit);
- one **per-container directory** containing that container's UNIX socket
  and a copy of the wrapper module — the directory nvidia-docker
  bind-mounts into the container (§III-B/D).

The daemon is used by the live experiments (Fig. 4/5) where real AF_UNIX
round-trips are measured; simulations bypass it and drive the scheduler
core directly.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.service import SchedulerService
from repro.errors import SchedulerError
from repro.ipc import protocol
from repro.ipc.unix_socket import UnixSocketServer

__all__ = ["SchedulerDaemon", "WRAPPER_SONAME", "CONTAINER_SOCKET_NAME"]

#: File name of the wrapper module the daemon "copies" per container.
WRAPPER_SONAME = "libgpushare.so"
#: Socket file name inside each container directory.
CONTAINER_SOCKET_NAME = "convgpu.sock"


class SchedulerDaemon:
    """Host daemon: control socket + per-container sockets and directories."""

    def __init__(self, scheduler: GpuMemoryScheduler, base_dir: str | None = None) -> None:
        self.scheduler = scheduler
        self.service = SchedulerService(scheduler)
        self._owns_base_dir = base_dir is None
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="convgpu-")
        os.makedirs(self.base_dir, exist_ok=True)
        self.control_path = os.path.join(self.base_dir, "control.sock")
        self._control_server: UnixSocketServer | None = None
        self._container_servers: dict[str, UnixSocketServer] = {}
        self._container_dirs: dict[str, str] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SchedulerDaemon":
        if self._control_server is not None:
            raise SchedulerError("daemon already started")
        self._control_server = UnixSocketServer(self.control_path, self._handle_control)
        self._control_server.start()
        return self

    def stop(self) -> None:
        for server in self._container_servers.values():
            server.stop()
        self._container_servers.clear()
        if self._control_server is not None:
            self._control_server.stop()
            self._control_server = None
        for directory in self._container_dirs.values():
            shutil.rmtree(directory, ignore_errors=True)
        self._container_dirs.clear()
        if self._owns_base_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)

    def __enter__(self) -> "SchedulerDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- control-plane handling ---------------------------------------------

    def _handle_control(self, message: dict[str, Any], reply_handle) -> Any:
        """Handle nvidia-docker / plugin traffic on the control socket."""
        msg_type = message["type"]
        if msg_type == protocol.MSG_REGISTER_CONTAINER:
            reply = self.service.handle(message, reply_handle)
            if isinstance(reply, dict) and reply.get("status") == "ok":
                directory = self._prepare_container_dir(message["container_id"])
                reply = {**reply, "socket_dir": directory}
            return reply
        if msg_type == protocol.MSG_CONTAINER_EXIT:
            reply = self.service.handle(message, reply_handle)
            self._teardown_container_dir(message["container_id"])
            return reply
        # Anything else on the control socket is a protocol misuse.
        return protocol.make_error_reply(
            message, f"{msg_type!r} not accepted on the control socket"
        )

    def _prepare_container_dir(self, container_id: str) -> str:
        """Create the container's directory, socket and wrapper copy (§III-D)."""
        directory = os.path.join(self.base_dir, container_id[:12])
        os.makedirs(directory, exist_ok=True)
        # "copies the wrapper module to the directory" — our wrapper is a
        # Python object, so the copy is a marker file recording the mount.
        with open(os.path.join(directory, WRAPPER_SONAME), "w", encoding="utf-8") as fh:
            fh.write(f"ConVGPU wrapper module for container {container_id}\n")
        socket_path = os.path.join(directory, CONTAINER_SOCKET_NAME)
        server = UnixSocketServer(socket_path, self.service.handle)
        server.start()
        self._container_servers[container_id] = server
        self._container_dirs[container_id] = directory
        return directory

    def _teardown_container_dir(self, container_id: str) -> None:
        server = self._container_servers.pop(container_id, None)
        if server is not None:
            server.stop()
        directory = self._container_dirs.pop(container_id, None)
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)

    # -- conveniences ---------------------------------------------------------

    def container_socket_path(self, container_id: str) -> str:
        """Path of the per-container socket (as mounted into the container)."""
        directory = self._container_dirs.get(container_id)
        if directory is None:
            raise SchedulerError(f"container {container_id!r} not registered")
        return os.path.join(directory, CONTAINER_SOCKET_NAME)
