"""The scheduler daemon — the live analogue of the paper's Go program.

"GPU memory scheduler is a standalone program written in Go ... It runs on
the host machine similar to nvidia-docker-plugin" (§III-D).  Here it is a
thread-backed server owning:

- one **control socket** (``convgpu.sock``) that the customized
  nvidia-docker and the nvidia-docker-plugin talk to (registration, exit);
- one **per-container directory** containing that container's UNIX socket
  and a copy of the wrapper module — the directory nvidia-docker
  bind-mounts into the container (§III-B/D).

Beyond the paper, this daemon is **crash-safe**:

- pass a :class:`~repro.core.scheduler.journal.SchedulerJournal` and every
  scheduler decision is durable before its reply leaves the host;
  :meth:`SchedulerDaemon.recover` rebuilds a daemon from the journal after
  a crash, recreating every open container's socket so reconnecting
  wrappers find it at the same path;
- pass a :class:`~repro.core.scheduler.liveness.HeartbeatMonitor` and a
  background reaper synthesizes the missing *close* for containers that
  die without one, through the same ``container_exit`` path the
  nvidia-docker-plugin uses;
- ``transport="tcp"`` serves the same protocol over loopback TCP (the
  ablation transport), which also lets the fault-injection suite exercise
  recovery on both socket families.

The daemon is used by the live experiments (Fig. 4/5) where real AF_UNIX
round-trips are measured; simulations bypass it and drive the scheduler
core directly.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
import weakref
from typing import Any, Callable

from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.journal import SchedulerJournal, restore
from repro.core.scheduler.liveness import HeartbeatMonitor
from repro.core.scheduler.policies import SchedulingPolicy
from repro.core.scheduler.service import SchedulerService
from repro.errors import SchedulerError
from repro.ipc import protocol
from repro.ipc.loop import DEFAULT_IO_WORKERS, IoLoop
from repro.ipc.tcp_socket import TcpSocketServer
from repro.ipc.unix_socket import UnixSocketServer
from repro.obs.http import MetricsServer
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER
from repro.obs.trace import Tracer

__all__ = ["SchedulerDaemon", "WRAPPER_SONAME", "CONTAINER_SOCKET_NAME"]

_REC = RECORDER
_EV_START = RECORDER.declare("daemon.start", s="transport", a="containers")
_EV_STOP = RECORDER.declare("daemon.stop")
_EV_REGISTER = RECORDER.declare("daemon.register", s="container", a="limit")
_EV_EXIT = RECORDER.declare("daemon.exit", s="container", a="reclaimed")
_EV_REAP = RECORDER.declare("daemon.reap", s="container")
_EV_STALL = RECORDER.declare("daemon.watchdog_stall", x="stalled_seconds")

_REAPED = REGISTRY.counter(
    "convgpu_reaped_containers_total",
    "Containers whose close was synthesized by the orphan reaper",
)
_RESERVED = REGISTRY.gauge(
    "convgpu_container_reserved_bytes",
    "Bytes currently reserved (assigned) for the container",
    labelnames=("container",),
)
_USED = REGISTRY.gauge(
    "convgpu_container_used_bytes",
    "Bytes committed + inflight for the container",
    labelnames=("container",),
)
_PAUSE_DEPTH = REGISTRY.gauge(
    "convgpu_pause_queue_depth",
    "Pending (paused) allocation requests across all containers",
)
_UNRESERVED = REGISTRY.gauge(
    "convgpu_unreserved_bytes",
    "Physical GPU memory not promised to any container",
)

#: File name of the wrapper module the daemon "copies" per container.
WRAPPER_SONAME = "libgpushare.so"
#: Socket file name inside each container directory.
CONTAINER_SOCKET_NAME = "convgpu.sock"


class _ControlHandler:
    """Handler object for the control socket.

    The servers' batch dispatcher discovers ``batch_begin``/``batch_commit``
    by attribute lookup on the handler; a bound method exposes neither, so
    the daemon hands the servers handler *objects* — the service itself for
    per-container sockets, and this thin wrapper (which forwards dispatch to
    ``SchedulerDaemon._handle_control`` and the batch hooks to the service)
    for the control socket.
    """

    __slots__ = ("_daemon",)

    def __init__(self, daemon: "SchedulerDaemon") -> None:
        self._daemon = daemon

    def __call__(self, message: dict[str, Any], reply_handle) -> Any:
        return self._daemon._handle_control(message, reply_handle)

    def batch_begin(self) -> None:
        self._daemon.service.batch_begin()

    def batch_commit(self) -> None:
        self._daemon.service.batch_commit()


class SchedulerDaemon:
    """Host daemon: control socket + per-container sockets and directories.

    Args:
        scheduler: the decision engine to serve.
        base_dir: directory for the control socket and per-container
            directories (a temp dir, removed on stop, when omitted).
        transport: ``"unix"`` (the paper's choice) or ``"tcp"``; TCP mode
            listens on ``host``/``control_port`` and hands each container
            an ephemeral port in its registration reply.
        io: ``"loop"`` (default) serves the control socket and every
            per-container socket from one shared selector thread plus a
            bounded worker pool — the daemon's thread count stays constant
            no matter how many containers attach; ``"threads"`` keeps the
            original accept-thread + reader-thread-per-connection model
            (the Fig. 4 ablation baseline).
        io_workers: dispatch pool size for ``io="loop"``.
        codec: wire codec offered by every socket the daemon serves —
            ``"auto"`` (default) negotiates binary with capable peers and
            falls back to JSON; ``"json"`` pins the trace-friendly debug
            mode (and models an old, JSON-only daemon in the downgrade
            tests).  See ``docs/PROTOCOL.md``.
        journal: attached write-ahead journal (owned: closed on stop).
        monitor: heartbeat monitor enabling the orphan reaper.
        reap_interval: seconds between reaper sweeps.
        metrics_port: when not ``None``, serve the observability endpoint
            (``/metrics`` Prometheus text, ``/metrics.json``, ``/top.json``,
            ``/flight.jsonl``, ``/healthz``) on ``127.0.0.1:metrics_port``
            for the daemon's lifetime (0 = ephemeral; read
            :attr:`metrics_server` ``.port``).
        tracer: span recorder threaded into the service; spans parented on
            wire trace context (off when ``None``, the default).
        flight_dump: path the flight recorder dumps to on a watchdog stall
            (and where :meth:`dump_flight` writes by default — the CLI's
            SIGUSR2 handler and crash hook route here).  Enables the I/O
            watchdog thread when ``io="loop"``.
        watchdog_interval: seconds the shared I/O loop may go without an
            iteration before the watchdog declares a stall and dumps.
        shard_id / shard_count: this daemon's identity in a sharded
            control plane (DESIGN.md §15).  When set, every socket the
            daemon serves announces ``shard``/``shards`` in its hello
            reply, registration replies carry ``shard``, and ``/top.json``
            rows are tagged — so the router (and any client) can verify
            which shard actually answered.  ``None`` (the default) is the
            unsharded daemon; its wire traffic is byte-identical to
            pre-shard builds (golden traces pin this).
    """

    def __init__(
        self,
        scheduler: GpuMemoryScheduler,
        base_dir: str | None = None,
        *,
        transport: str = "unix",
        host: str = "127.0.0.1",
        control_port: int = 0,
        io: str = "loop",
        io_workers: int = DEFAULT_IO_WORKERS,
        codec: str = "auto",
        journal: SchedulerJournal | None = None,
        monitor: HeartbeatMonitor | None = None,
        reap_interval: float = 1.0,
        metrics_port: int | None = None,
        tracer: Tracer | None = None,
        flight_dump: str | None = None,
        watchdog_interval: float = 5.0,
        shard_id: int | None = None,
        shard_count: int | None = None,
    ) -> None:
        if transport not in ("unix", "tcp"):
            raise SchedulerError(f"unknown transport {transport!r}")
        if io not in ("loop", "threads"):
            raise SchedulerError(f"unknown io backend {io!r}")
        if codec not in ("auto", protocol.CODEC_BINARY, protocol.CODEC_JSON):
            raise SchedulerError(f"unknown codec {codec!r}")
        if (shard_id is None) != (shard_count is None):
            raise SchedulerError("shard_id and shard_count go together")
        if shard_id is not None and not 0 <= shard_id < (shard_count or 0):
            raise SchedulerError(
                f"shard_id {shard_id} out of range for {shard_count} shards"
            )
        self.scheduler = scheduler
        self.journal = journal
        self.monitor = monitor
        self.reap_interval = reap_interval
        self.tracer = tracer
        self.shard_id = shard_id
        self.shard_count = shard_count
        #: Handshake identity merged into every hello reply this daemon's
        #: sockets send (empty for the unsharded daemon — hello replies are
        #: then byte-identical to pre-shard builds).
        self.identity: dict[str, Any] = (
            {"shard": shard_id, "shards": shard_count}
            if shard_id is not None
            else {}
        )
        self.log = get_logger("daemon")
        self.service = SchedulerService(
            scheduler,
            heartbeat_sink=monitor.beat if monitor is not None else None,
            tracer=tracer,
            shard_id=shard_id,
        )
        self.transport = transport
        self.host = host
        self.control_port = control_port
        self.io = io
        self.io_workers = io_workers
        self.codec = codec
        self._control_handler = _ControlHandler(self)
        self._io_loop: IoLoop | None = None
        self._owns_base_dir = base_dir is None
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="convgpu-")
        os.makedirs(self.base_dir, exist_ok=True)
        self.control_path = os.path.join(self.base_dir, "control.sock")
        self._control_server: UnixSocketServer | TcpSocketServer | None = None
        self._container_servers: dict[str, UnixSocketServer | TcpSocketServer] = {}
        self._container_dirs: dict[str, str] = {}
        self._container_ports: dict[str, int] = {}
        self._teardown_lock = threading.Lock()
        self._reaper: threading.Thread | None = None
        self._reaper_stop = threading.Event()
        self.flight_dump = flight_dump
        self.watchdog_interval = watchdog_interval
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        self._stall_dumped = False
        #: Container ids whose close was synthesized by the reaper.
        self.reaped: list[str] = []
        self.metrics_port = metrics_port
        self.metrics_server: MetricsServer | None = None
        # Point-in-time gauges (reservations, queue depth) are produced at
        # scrape time from scheduler state rather than pushed from hot
        # paths — they cannot drift, and restoring from a journal needs no
        # special handling.  The collector closes over a weakref so the
        # process-global registry never pins a dead daemon alive.
        daemon_ref = weakref.ref(self)

        def collect_gauges() -> None:
            daemon = daemon_ref()
            if daemon is not None:
                daemon._collect_gauges()

        self._collector = collect_gauges
        self._collector_registered = True
        REGISTRY.add_collector(collect_gauges, owner=self)

    # -- recovery -------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_path: str,
        *,
        clock: Callable[[], float] | None = None,
        policy: SchedulingPolicy | None = None,
        rng: Any = None,
        snapshot_interval: int | None = 256,
        fsync: bool = False,
        journal_mode: str = "group",
        compact_at_bytes: int | None = None,
        **daemon_kwargs: Any,
    ) -> "SchedulerDaemon":
        """Rebuild a daemon from a crashed daemon's journal.

        Restores the scheduler state, re-attaches the journal (writing a
        compaction snapshot so the recovery itself is durable), and returns
        a daemon ready to :meth:`start` — which recreates the socket of
        every container that was open at the crash.  ``fsync``,
        ``journal_mode`` and ``compact_at_bytes`` configure the re-attached
        journal the same way :class:`SchedulerJournal` takes them (group
        commit by default, auto-compaction off unless a byte threshold is
        given).
        """
        scheduler = restore(journal_path, clock=clock, policy=policy, rng=rng)
        journal = SchedulerJournal(
            journal_path,
            snapshot_interval=snapshot_interval,
            fsync=fsync,
            mode=journal_mode,
            compact_at_bytes=compact_at_bytes,
        )
        journal.attach(scheduler, compact=True)
        return cls(scheduler, journal=journal, **daemon_kwargs)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SchedulerDaemon":
        if self._control_server is not None:
            raise SchedulerError("daemon already started")
        if not self._collector_registered:
            self._collector_registered = True
            REGISTRY.add_collector(self._collector, owner=self)
        if self.io == "loop":
            self._io_loop = IoLoop(workers=self.io_workers).start()
        if self.transport == "unix":
            self._control_server = UnixSocketServer(
                self.control_path,
                self._control_handler,
                loop=self._io_loop,
                codec=self.codec,
                identity=self.identity,
            )
            self._control_server.start()
        else:
            server = TcpSocketServer(
                self._control_handler,
                host=self.host,
                port=self.control_port,
                loop=self._io_loop,
                codec=self.codec,
                identity=self.identity,
            )
            server.start()
            self.control_port = server.port
            self._control_server = server
        # Recovery: every container restored open from the journal gets its
        # socket back at the same path, and a fresh heartbeat grace period
        # so reconnecting wrappers are not reaped while they back off.
        for record in self.scheduler.containers():
            if record.container_id not in self._container_dirs:
                self._prepare_container_dir(record.container_id)
            if self.monitor is not None:
                self.monitor.beat(record.container_id)
        if self.monitor is not None:
            self._reaper_stop.clear()
            self._reaper = threading.Thread(target=self._reap_loop, daemon=True)
            self._reaper.start()
        if self.metrics_port is not None and self.metrics_server is None:
            self.metrics_server = MetricsServer(
                REGISTRY,
                port=self.metrics_port,
                top_source=self.top_snapshot,
                flight_source=lambda: RECORDER.dump_text(reason="http"),
            ).start()
        if self.flight_dump is not None and self._io_loop is not None:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(target=self._watchdog_loop, daemon=True)
            self._watchdog.start()
        _REC.record(_EV_START, s=self.transport, a=len(self._container_dirs))
        self.log.info(
            "daemon_started",
            transport=self.transport,
            io=self.io,
            base_dir=self.base_dir,
            containers=len(self._container_dirs),
            metrics_url=(
                self.metrics_server.url if self.metrics_server is not None else None
            ),
        )
        return self

    def stop(self) -> None:
        """Orderly shutdown: sockets down, directories removed, journal closed."""
        self.kill()
        for container_id, directory in self._container_dirs.items():
            # Per-container gauge rows live in the process-global registry;
            # an orderly shutdown must not leave them behind as stale truth
            # (kill() deliberately does — a crash leaves everything).
            _RESERVED.remove(container=container_id)
            _USED.remove(container=container_id)
            shutil.rmtree(directory, ignore_errors=True)
        self._container_dirs.clear()
        self._container_ports.clear()
        if self.journal is not None:
            self.journal.close()
        if self._owns_base_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)

    def kill(self) -> None:
        """Crash simulation: drop every socket, leave all state on disk.

        The journal file, container directories and scheduler object are
        left exactly as they were — what a SIGKILL leaves behind.  The
        fault-injection tests follow this with :meth:`recover`.
        """
        if self._watchdog is not None:
            self._watchdog_stop.set()
            self._watchdog.join(timeout=2.0)
            self._watchdog = None
        if self._reaper is not None:
            self._reaper_stop.set()
            self._reaper.join(timeout=2.0)
            self._reaper = None
        for server in self._container_servers.values():
            server.stop()
        self._container_servers.clear()
        if self._control_server is not None:
            self._control_server.stop()
            self._control_server = None
            _REC.record(_EV_STOP)
            self.log.info("daemon_stopped")
        if self._io_loop is not None:
            self._io_loop.stop()
            self._io_loop = None
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        # A dead process's collector dies with it; the in-process analogue
        # must do the same.  Without this, every shard restart in one
        # process (recover() builds a new daemon, each __init__ registers a
        # collector, and the supervisor keeps the old daemon referenced)
        # stacks collectors whose stale schedulers re-publish gauge rows —
        # the metrics double-counting bug.  Idempotent, so stop() calling
        # kill() twice is fine; start() re-registers for an in-process
        # kill-then-start of the *same* daemon object.
        REGISTRY.remove_collector(self._collector)
        self._collector_registered = False

    def __enter__(self) -> "SchedulerDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- control-plane handling ---------------------------------------------

    def _handle_control(self, message: dict[str, Any], reply_handle) -> Any:
        """Handle nvidia-docker / plugin traffic on the control socket."""
        msg_type = message["type"]
        if msg_type == protocol.MSG_REGISTER_CONTAINER:
            reply = self.service.handle(message, reply_handle)
            if isinstance(reply, dict) and reply.get("status") == "ok":
                container_id = message["container_id"]
                if container_id not in self._container_dirs:
                    self._prepare_container_dir(container_id)
                reply = {**reply, "socket_dir": self._container_dirs[container_id]}
                if self.transport == "tcp":
                    reply["host"] = self.host
                    reply["port"] = self._container_ports[container_id]
                _REC.record(_EV_REGISTER, s=container_id, a=message["limit"])
                self.log.info(
                    "container_registered",
                    container_id=container_id,
                    limit=message["limit"],
                    assigned=reply.get("assigned"),
                    reattached=bool(reply.get("reattached")),
                )
            return reply
        if msg_type == protocol.MSG_CONTAINER_EXIT:
            reply = self.service.handle(message, reply_handle)
            if isinstance(reply, dict) and reply.get("status") != "ok":
                # Unknown (or already-exited) container: there is nothing to
                # tear down, and tearing down anyway is exactly the
                # reaper-races-a-real-exit double-teardown bug.
                self.log.warning(
                    "container_exit_rejected",
                    container_id=message["container_id"],
                    error=reply.get("error"),
                )
                return reply
            self._teardown_container_dir(message["container_id"])
            reclaimed = reply.get("reclaimed") if isinstance(reply, dict) else None
            _REC.record(
                _EV_EXIT, s=message["container_id"], a=int(reclaimed or 0)
            )
            self.log.info(
                "container_exited",
                container_id=message["container_id"],
                reclaimed=reclaimed,
            )
            return reply
        # Anything else on the control socket is a protocol misuse.
        return protocol.make_error_reply(
            message, f"{msg_type!r} not accepted on the control socket"
        )

    def _prepare_container_dir(self, container_id: str) -> str:
        """Create the container's directory, socket and wrapper copy (§III-D)."""
        directory = os.path.join(self.base_dir, container_id[:12])
        os.makedirs(directory, exist_ok=True)
        # "copies the wrapper module to the directory" — our wrapper is a
        # Python object, so the copy is a marker file recording the mount.
        with open(os.path.join(directory, WRAPPER_SONAME), "w", encoding="utf-8") as fh:
            fh.write(f"ConVGPU wrapper module for container {container_id}\n")
        server: UnixSocketServer | TcpSocketServer
        if self.transport == "unix":
            socket_path = os.path.join(directory, CONTAINER_SOCKET_NAME)
            # (UnixSocketServer.start unlinks a stale socket left by a crash.)
            # The service *object* (not its bound .handle) goes in so the
            # batch dispatcher finds the batch_begin/batch_commit hooks.
            server = UnixSocketServer(
                socket_path,
                self.service,
                loop=self._io_loop,
                codec=self.codec,
                identity=self.identity,
            )
            server.start()
        else:
            server = TcpSocketServer(
                self.service,
                host=self.host,
                port=0,
                loop=self._io_loop,
                codec=self.codec,
                identity=self.identity,
            )
            server.start()
            self._container_ports[container_id] = server.port
        self._container_servers[container_id] = server
        self._container_dirs[container_id] = directory
        return directory

    def _teardown_container_dir(self, container_id: str) -> None:
        """Remove one container's socket, directory and gauge rows.

        Idempotent by construction: all bookkeeping is claimed atomically
        under ``_teardown_lock``, so the orphan reaper racing a real
        ``container_exit`` (or a repeated exit) finds nothing left to tear
        down and returns without touching a stopped server twice.
        """
        with self._teardown_lock:
            server = self._container_servers.pop(container_id, None)
            directory = self._container_dirs.pop(container_id, None)
            self._container_ports.pop(container_id, None)
        _RESERVED.remove(container=container_id)
        _USED.remove(container=container_id)
        if self.monitor is not None:
            self.monitor.forget(container_id)
        if server is not None:
            server.stop()
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)

    # -- orphan reaping -------------------------------------------------------

    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(self.reap_interval):
            try:
                self.reap_orphans()
            except Exception as exc:
                # The reaper thread must survive a failed sweep; individual
                # failures are logged and retried on the next interval.
                self.log.error("reap_sweep_failed", error=str(exc))
                continue

    def reap_orphans(self) -> list[str]:
        """Synthesize *close* for every heartbeat-stale container.

        Funnels through :meth:`_handle_control`'s ``container_exit`` branch
        — exactly the path the nvidia-docker-plugin's unmount hook takes —
        so reservations are reclaimed and redistributed as if the container
        had exited cleanly.  Returns the ids reaped in this sweep.
        """
        if self.monitor is None:
            return []
        swept: list[str] = []
        for container_id in self.monitor.stale():
            message = protocol.make_request(
                protocol.MSG_CONTAINER_EXIT, seq=0, container_id=container_id
            )
            self._handle_control(message, None)
            swept.append(container_id)
            _REAPED.inc()
            _REC.record(_EV_REAP, s=container_id)
            self.log.warning("container_reaped", container_id=container_id)
        self.reaped.extend(swept)
        return swept

    # -- observability --------------------------------------------------------

    def dump_flight(self, reason: str) -> str:
        """Dump the flight recorder; returns the path written.

        Writes to :attr:`flight_dump` when configured, else
        ``<base_dir>/flight.jsonl``.  The CLI's SIGUSR2 handler and crash
        hook, and the watchdog's stall path, all funnel through here so
        every post-mortem input lands at one predictable location.
        """
        path = self.flight_dump or os.path.join(self.base_dir, "flight.jsonl")
        RECORDER.dump(path, reason=reason)
        self.log.warning("flight_dumped", path=path, reason=reason)
        return path

    def _watchdog_loop(self) -> None:
        """Dump the flight recorder once if the shared I/O loop stalls.

        A wedged selector thread (handler deadlock, runaway callback) stops
        advancing ``IoLoop.last_tick``; when the gap exceeds
        ``watchdog_interval`` the recorder still holds the events leading up
        to the wedge — exactly what ``repro doctor`` needs.  One-shot: a
        stalled loop would otherwise be re-dumped every interval.
        """
        poll = max(0.2, self.watchdog_interval / 4.0)
        while not self._watchdog_stop.wait(poll):
            loop = self._io_loop
            if loop is None or self._stall_dumped:
                continue
            last = loop.last_tick
            if last == 0.0:
                continue
            stalled = time.time() - last
            if stalled > self.watchdog_interval:
                self._stall_dumped = True
                _REC.record(_EV_STALL, x=stalled)
                try:
                    self.dump_flight("watchdog-stall")
                except OSError as exc:
                    self.log.error("flight_dump_failed", error=str(exc))

    def _collect_gauges(self) -> None:
        """Refresh point-in-time gauges from scheduler state (at scrape)."""
        depth = 0
        for record in self.scheduler.containers():
            _RESERVED.labels(container=record.container_id).set(record.assigned)
            _USED.labels(container=record.container_id).set(
                record.used + record.inflight
            )
            depth += len(record.pending)
        _PAUSE_DEPTH.set(depth)
        _UNRESERVED.set(self.scheduler.unreserved)

    def top_snapshot(self) -> list[dict[str, Any]]:
        """Per-container rows for ``/top.json`` (what ``repro top`` renders)."""
        rows: list[dict[str, Any]] = []
        for record in self.scheduler.containers():
            rows.append(
                {
                    **({"shard": self.shard_id} if self.shard_id is not None else {}),
                    "container": record.container_id,
                    "limit": record.limit,
                    "reserved": record.assigned,
                    "used": record.used,
                    "inflight": record.inflight,
                    "pending": len(record.pending),
                    "pauses": record.pause_count,
                    "suspended_s": record.suspended_total,
                }
            )
        return rows

    # -- conveniences ---------------------------------------------------------

    def container_socket_path(self, container_id: str) -> str:
        """Path of the per-container socket (as mounted into the container)."""
        directory = self._container_dirs.get(container_id)
        if directory is None:
            raise SchedulerError(f"container {container_id!r} not registered")
        return os.path.join(directory, CONTAINER_SOCKET_NAME)

    def container_port(self, container_id: str) -> int:
        """Port of the per-container TCP server (``transport="tcp"`` only)."""
        port = self._container_ports.get(container_id)
        if port is None:
            raise SchedulerError(
                f"container {container_id!r} has no TCP port (transport={self.transport})"
            )
        return port
