"""Container liveness tracking — the daemon side of crash safety.

The paper's lifecycle assumes every container ends with the customized
nvidia-docker-plugin sending *close* (§III-B).  In practice containers die
without one: the docker daemon is killed, the node reboots mid-run, the
plugin itself crashes.  Each orphan then pins its reservation forever and —
because redistribution only triggers on exits — can starve every paused
container behind it.

:class:`HeartbeatMonitor` tracks a last-seen timestamp per container.  Any
message on a container's socket counts as a beat (an allocating container
is self-evidently alive); idle containers are covered by the wrapper's
explicit ``heartbeat`` notification.  Containers silent for longer than
``timeout`` are *stale*; the daemon's reaper synthesizes the missing
*close* for them, funnelling through the exact same
``container_exit`` path the plugin uses so reclamation and redistribution
behave identically to a clean shutdown.

Deliberately transport- and thread-free: the daemon owns the reap loop, the
tests drive :meth:`HeartbeatMonitor.stale` with a manual clock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.metrics import REGISTRY

__all__ = ["HeartbeatMonitor", "DEFAULT_HEARTBEAT_TIMEOUT"]

_HEARTBEAT_MISSES = REGISTRY.counter(
    "convgpu_heartbeat_misses_total",
    "Containers that went heartbeat-stale (counted once per transition)",
)

#: Generous default: one missed beat must never reap a live container that
#: is merely blocked in a long native kernel launch.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


class HeartbeatMonitor:
    """Last-seen bookkeeping with a staleness predicate.

    Args:
        timeout: seconds of silence after which a container is stale.
        clock: time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive: {timeout}")
        self.timeout = timeout
        self.clock = clock if clock is not None else time.monotonic
        self._last_beat: dict[str, float] = {}
        self._reported_stale: set[str] = set()
        self._lock = threading.Lock()

    def beat(self, container_id: str) -> None:
        """Record proof of life (any message from the container counts)."""
        with self._lock:
            self._last_beat[container_id] = self.clock()
            self._reported_stale.discard(container_id)

    def forget(self, container_id: str) -> None:
        """Stop tracking (clean exit or completed reap)."""
        with self._lock:
            self._last_beat.pop(container_id, None)
            self._reported_stale.discard(container_id)

    def last_beat(self, container_id: str) -> float | None:
        with self._lock:
            return self._last_beat.get(container_id)

    @property
    def tracked(self) -> list[str]:
        with self._lock:
            return sorted(self._last_beat)

    def stale(self, now: float | None = None) -> list[str]:
        """Containers silent for longer than the timeout (reap candidates)."""
        if now is None:
            now = self.clock()
        with self._lock:
            stale = sorted(
                cid
                for cid, seen in self._last_beat.items()
                if now - seen > self.timeout
            )
            for cid in stale:
                if cid not in self._reported_stale:
                    self._reported_stale.add(cid)
                    _HEARTBEAT_MISSES.inc()
            return stale
