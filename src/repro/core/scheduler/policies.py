"""The four scheduling algorithms of the paper, plus ablation extras.

When a container finishes and returns its assigned GPU memory, the
scheduler repeatedly asks the policy to pick one *paused* container to top
up (§III-D).  The paper's four policies:

- **FIFO**  — oldest *created* container first;
- **Best-Fit (BF)** — the container whose insufficiency is closest to (but
  not exceeding) the free memory; if none fits, the least-insufficient one.
  Fig. 7 shows BF winning overall finish time at high load; Fig. 8 shows it
  paying with longer average suspension (starvation of mismatched sizes);
- **Recent-Use (RU)** — most recently suspended first;
- **Random (Rand)** — uniform choice among paused containers.

Extension policies (not in the paper; used by the ablation bench): Worst-Fit
and Smallest-Insufficiency-First.

All ties break on creation order, keeping runs deterministic for a seed.

Since the core/runtime split (DESIGN.md §11) a policy is consulted through
a per-state :class:`CandidateIndex` built by :meth:`SchedulingPolicy.
make_index`.  The index receives lifecycle hooks (``on_pause`` /
``on_resume`` / ``on_assign`` / ``on_close``) from the transition core and
keeps the candidate set *incrementally* — a lazy-deletion heap for FIFO and
Recent-Use, a bisect-sorted insufficiency list for the fit family — so each
redistribution pick is O(log n) instead of a full candidate-list rebuild.
``select()`` remains the policy's pure ordering contract (the scan-based
default index and the direct unit tests still call it); every incremental
index must pick exactly what ``select()`` would.
"""

from __future__ import annotations

import abc
import heapq
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.scheduler.records import ContainerRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.scheduler.state import SchedulerState

__all__ = [
    "SchedulingPolicy",
    "CandidateIndex",
    "ScanIndex",
    "FifoPolicy",
    "BestFitPolicy",
    "RecentUsePolicy",
    "RandomPolicy",
    "WorstFitPolicy",
    "SmallestFirstPolicy",
    "POLICIES",
    "make_policy",
]


class CandidateIndex:
    """Incremental redistribution-candidate view over one scheduler state.

    A container is a candidate while it is open, paused and still short of
    its limit (``ContainerRecord.is_redistribution_candidate``).  The
    transition core invokes the hooks below at every point where a record's
    candidacy or ordering key can change; ``pick`` returns the policy's
    choice among current candidates, or ``None`` when there is none.

    One index serves exactly one :class:`SchedulerState` — built via
    :meth:`SchedulingPolicy.make_index`, so a single policy instance can be
    shared across the per-device states of a multi-GPU cluster.
    """

    def __init__(self, state: "SchedulerState") -> None:
        self._state = state

    # -- lifecycle hooks (called by the transition core) -------------------

    def on_pause(self, record: ContainerRecord) -> None:
        """``record`` just queued a pending allocation (may become candidate)."""

    def on_resume(self, record: ContainerRecord) -> None:
        """``record``'s pending queue just drained (no longer a candidate)."""

    def on_assign(self, record: ContainerRecord) -> None:
        """``record.assigned`` changed (redistribution or wedge reclaim)."""

    def on_close(self, record: ContainerRecord) -> None:
        """``record`` closed (never a candidate again)."""

    def rebuild(self) -> None:
        """Resynchronize from scratch (snapshot load)."""

    def pick(self, free: int) -> ContainerRecord | None:
        """The policy's choice among current candidates, or ``None``."""
        raise NotImplementedError


class ScanIndex(CandidateIndex):
    """Rebuild-and-select fallback: the seed's O(n) scan per pick.

    Kept as the default (and for :class:`RandomPolicy`, deliberately so:
    Rand draws an index into the candidate list in registration order, and
    preserving its RNG stream byte-for-byte requires reproducing that exact
    list construction).
    """

    def __init__(self, state: "SchedulerState", policy: "SchedulingPolicy") -> None:
        super().__init__(state)
        self._policy = policy

    def pick(self, free: int) -> ContainerRecord | None:
        candidates = [
            r for r in self._state.records() if r.is_redistribution_candidate
        ]
        if not candidates:
            return None
        return self._policy.select(candidates, free)


class FifoHeapIndex(CandidateIndex):
    """Lazy-deletion min-heap on ``created_seq`` (FIFO's only key).

    ``created_seq`` never changes, so entries are pushed once per candidacy
    episode and invalid entries (resumed, satisfied or closed records) are
    discarded when they surface at the heap top.
    """

    def __init__(self, state: "SchedulerState") -> None:
        super().__init__(state)
        self._heap: list[tuple[int, ContainerRecord]] = []
        self._queued: set[int] = set()  # created_seq values present in heap
        self.rebuild()

    def _add(self, record: ContainerRecord) -> None:
        if record.is_redistribution_candidate and record.created_seq not in self._queued:
            self._queued.add(record.created_seq)
            heapq.heappush(self._heap, (record.created_seq, record))

    # A pause can create candidacy; a wedge reclaim (assigned shrinking)
    # can restore it for a paused record whose insufficiency had hit 0.
    on_pause = _add
    on_assign = _add

    def rebuild(self) -> None:
        self._heap.clear()
        self._queued.clear()
        for record in self._state.records():
            self._add(record)

    def pick(self, free: int) -> ContainerRecord | None:
        while self._heap:
            seq, record = self._heap[0]
            if record.is_redistribution_candidate:
                return record
            heapq.heappop(self._heap)
            self._queued.discard(seq)
        return None


class RecentUseHeapIndex(CandidateIndex):
    """Lazy-deletion max-heap on ``(last_suspended_at, created_seq)``.

    Every pause re-keys the record (``last_suspended_at`` moves), so the
    heap holds one entry per (record, suspension-time) pair; an entry is
    stale once the record re-paused or left candidacy, and is discarded at
    the top.  ``_keyed`` dedupes pushes for the record's *current* key.
    """

    def __init__(self, state: "SchedulerState") -> None:
        super().__init__(state)
        self._heap: list[tuple[float, int, ContainerRecord]] = []
        self._keyed: dict[int, float] = {}  # created_seq -> pushed key
        self.rebuild()

    def _add(self, record: ContainerRecord) -> None:
        if not record.is_redistribution_candidate:
            return
        if self._keyed.get(record.created_seq) == record.last_suspended_at:
            return
        self._keyed[record.created_seq] = record.last_suspended_at
        heapq.heappush(
            self._heap,
            (-record.last_suspended_at, -record.created_seq, record),
        )

    on_pause = _add
    on_assign = _add

    def rebuild(self) -> None:
        self._heap.clear()
        self._keyed.clear()
        for record in self._state.records():
            self._add(record)

    def pick(self, free: int) -> ContainerRecord | None:
        while self._heap:
            neg_time, neg_seq, record = self._heap[0]
            if (
                record.is_redistribution_candidate
                and record.last_suspended_at == -neg_time
            ):
                return record
            heapq.heappop(self._heap)
            if self._keyed.get(-neg_seq) == -neg_time:
                del self._keyed[-neg_seq]
        return None


class SortedInsufficiencyIndex(CandidateIndex):
    """Bisect-sorted candidate list on ``(insufficiency, created_seq)``.

    Shared by the fit family (BF / WF / SF), whose picks are all order
    statistics of the insufficiency ordering.  The key pair is unique
    (``created_seq`` is), so records never compare; every hook re-syncs the
    touched record in O(log n) + O(n) list splice — still far below the
    seed's full rebuild + linear ``min``/``max`` per pick.
    """

    def __init__(self, state: "SchedulerState", kind: str) -> None:
        super().__init__(state)
        self._kind = kind  # "BF" | "WF" | "SF"
        self._entries: list[tuple[int, int, ContainerRecord]] = []
        self._keys: dict[int, tuple[int, int]] = {}  # created_seq -> key
        self.rebuild()

    def _sync(self, record: ContainerRecord) -> None:
        seq = record.created_seq
        old = self._keys.get(seq)
        new = (
            (record.insufficiency, seq)
            if record.is_redistribution_candidate
            else None
        )
        if old == new:
            return
        if old is not None:
            del self._entries[bisect_left(self._entries, old)]
            del self._keys[seq]
        if new is not None:
            insort(self._entries, (new[0], new[1], record))
            self._keys[seq] = new

    on_pause = _sync
    on_resume = _sync
    on_assign = _sync
    on_close = _sync

    def rebuild(self) -> None:
        self._entries = sorted(
            (r.insufficiency, r.created_seq, r)
            for r in self._state.records()
            if r.is_redistribution_candidate
        )
        self._keys = {seq: (ins, seq) for ins, seq, _ in self._entries}

    def pick(self, free: int) -> ContainerRecord | None:
        entries = self._entries
        if not entries:
            return None
        if self._kind == "SF":
            # Least insufficiency, oldest first: the leftmost entry.
            return entries[0][2]
        if self._kind == "WF":
            # Most insufficiency; ties break oldest-first, i.e. the *first*
            # entry of the maximal-insufficiency run.
            return entries[bisect_left(entries, (entries[-1][0],))][2]
        # BF: the largest insufficiency still covered by ``free`` (ties
        # oldest-first); if nobody fits, the least-insufficient container.
        cut = bisect_left(entries, (free + 1,))
        if cut == 0:
            return entries[0][2]
        return entries[bisect_left(entries, (entries[cut - 1][0],))][2]


class SchedulingPolicy(abc.ABC):
    """Strategy choosing which paused container receives freed memory."""

    #: Short name used in tables/CLI (matches the paper's abbreviations).
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, paused: Sequence[ContainerRecord], free: int
    ) -> ContainerRecord:
        """Pick one container from a non-empty ``paused`` sequence.

        ``free`` is the currently unreserved GPU memory in bytes.  The
        scheduler then assigns ``min(insufficiency, free)`` to the pick.
        """

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        """Build this policy's candidate index over ``state``.

        The default is the scan-based fallback, correct for any ``select``
        implementation; policies with an incremental structure override.
        """
        return ScanIndex(state, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class FifoPolicy(SchedulingPolicy):
    """First-in, first-out: "the oldest created container" (§III-D)."""

    name = "FIFO"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return min(paused, key=lambda c: c.created_seq)

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        return FifoHeapIndex(state)


class BestFitPolicy(SchedulingPolicy):
    """Best-Fit: maximize memory throughput by closest-fit matching."""

    name = "BF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        fitting = [c for c in paused if c.insufficiency <= free]
        if fitting:
            # Closest to the remaining memory without exceeding it: the
            # *largest* insufficiency that still fits.
            return max(fitting, key=lambda c: (c.insufficiency, -c.created_seq))
        # Nobody fits entirely: "the container which has the least
        # insufficient memory".
        return min(paused, key=lambda c: (c.insufficiency, c.created_seq))

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        return SortedInsufficiencyIndex(state, "BF")


class RecentUsePolicy(SchedulingPolicy):
    """Recent-Use: "the most recently suspended containers" (§III-D)."""

    name = "RU"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return max(paused, key=lambda c: (c.last_suspended_at, c.created_seq))

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        return RecentUseHeapIndex(state)


class RandomPolicy(SchedulingPolicy):
    """Random: uniform choice among paused containers."""

    name = "Rand"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        index = int(self._rng.integers(0, len(paused)))
        return paused[index]


class WorstFitPolicy(SchedulingPolicy):
    """Ablation: the *most* insufficient container first (anti-Best-Fit)."""

    name = "WF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return max(paused, key=lambda c: (c.insufficiency, -c.created_seq))

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        return SortedInsufficiencyIndex(state, "WF")


class SmallestFirstPolicy(SchedulingPolicy):
    """Ablation: least-insufficient container first (SJF-like; unfair)."""

    name = "SF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return min(paused, key=lambda c: (c.insufficiency, c.created_seq))

    def make_index(self, state: "SchedulerState") -> CandidateIndex:
        return SortedInsufficiencyIndex(state, "SF")


#: Registry: name -> zero/one-arg factory (RandomPolicy accepts an rng).
POLICIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "FIFO": FifoPolicy,
    "BF": BestFitPolicy,
    "RU": RecentUsePolicy,
    "Rand": RandomPolicy,
    "WF": WorstFitPolicy,
    "SF": SmallestFirstPolicy,
}

#: The four algorithms evaluated in the paper, in table order.
PAPER_POLICIES = ("FIFO", "BF", "RU", "Rand")
__all__ += ["PAPER_POLICIES", "register_policy"]


def register_policy(
    name: str,
    factory: Callable[..., SchedulingPolicy],
    *,
    replace: bool = False,
) -> Callable[..., SchedulingPolicy]:
    """Register an out-of-tree scheduling policy under ``name``.

    ``factory`` is a zero-argument callable (typically the policy class)
    returning a :class:`SchedulingPolicy`; after registration the daemon
    CLI reaches it via ``--policy NAME`` (load the defining module with
    ``--policy-plugin``).  Registered policies are held to the same
    contract as the built-ins — ``select`` is the pure ordering,
    ``make_index`` may ship a custom :class:`CandidateIndex` — and
    reprolint's ``purity`` rule applies to any ``SchedulingPolicy``
    subclass it can see.

    Returns the factory, so a module can register at import time::

        register_policy("LRU", LruPolicy)

    Raises:
        ValueError: the name is taken (pass ``replace=True`` to override).
        TypeError: the factory is not callable.
    """
    if not callable(factory):
        raise TypeError(f"policy factory for {name!r} is not callable: {factory!r}")
    if not replace and name in POLICIES:
        raise ValueError(
            f"policy {name!r} is already registered; pass replace=True to override"
        )
    POLICIES[name] = factory
    return factory


def make_policy(name: str, rng: np.random.Generator | None = None) -> SchedulingPolicy:
    """Instantiate a policy by table name (rng used only by "Rand")."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return RandomPolicy(rng)
    return factory()
