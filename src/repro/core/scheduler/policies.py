"""The four scheduling algorithms of the paper, plus ablation extras.

When a container finishes and returns its assigned GPU memory, the
scheduler repeatedly asks the policy to pick one *paused* container to top
up (§III-D).  The paper's four policies:

- **FIFO**  — oldest *created* container first;
- **Best-Fit (BF)** — the container whose insufficiency is closest to (but
  not exceeding) the free memory; if none fits, the least-insufficient one.
  Fig. 7 shows BF winning overall finish time at high load; Fig. 8 shows it
  paying with longer average suspension (starvation of mismatched sizes);
- **Recent-Use (RU)** — most recently suspended first;
- **Random (Rand)** — uniform choice among paused containers.

Extension policies (not in the paper; used by the ablation bench): Worst-Fit
and Smallest-Insufficiency-First.

All ties break on creation order, keeping runs deterministic for a seed.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.core.scheduler.records import ContainerRecord

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "BestFitPolicy",
    "RecentUsePolicy",
    "RandomPolicy",
    "WorstFitPolicy",
    "SmallestFirstPolicy",
    "POLICIES",
    "make_policy",
]


class SchedulingPolicy(abc.ABC):
    """Strategy choosing which paused container receives freed memory."""

    #: Short name used in tables/CLI (matches the paper's abbreviations).
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, paused: Sequence[ContainerRecord], free: int
    ) -> ContainerRecord:
        """Pick one container from a non-empty ``paused`` sequence.

        ``free`` is the currently unreserved GPU memory in bytes.  The
        scheduler then assigns ``min(insufficiency, free)`` to the pick.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class FifoPolicy(SchedulingPolicy):
    """First-in, first-out: "the oldest created container" (§III-D)."""

    name = "FIFO"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return min(paused, key=lambda c: c.created_seq)


class BestFitPolicy(SchedulingPolicy):
    """Best-Fit: maximize memory throughput by closest-fit matching."""

    name = "BF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        fitting = [c for c in paused if c.insufficiency <= free]
        if fitting:
            # Closest to the remaining memory without exceeding it: the
            # *largest* insufficiency that still fits.
            return max(fitting, key=lambda c: (c.insufficiency, -c.created_seq))
        # Nobody fits entirely: "the container which has the least
        # insufficient memory".
        return min(paused, key=lambda c: (c.insufficiency, c.created_seq))


class RecentUsePolicy(SchedulingPolicy):
    """Recent-Use: "the most recently suspended containers" (§III-D)."""

    name = "RU"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return max(paused, key=lambda c: (c.last_suspended_at, c.created_seq))


class RandomPolicy(SchedulingPolicy):
    """Random: uniform choice among paused containers."""

    name = "Rand"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        index = int(self._rng.integers(0, len(paused)))
        return paused[index]


class WorstFitPolicy(SchedulingPolicy):
    """Ablation: the *most* insufficient container first (anti-Best-Fit)."""

    name = "WF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return max(paused, key=lambda c: (c.insufficiency, -c.created_seq))


class SmallestFirstPolicy(SchedulingPolicy):
    """Ablation: least-insufficient container first (SJF-like; unfair)."""

    name = "SF"

    def select(self, paused: Sequence[ContainerRecord], free: int) -> ContainerRecord:
        return min(paused, key=lambda c: (c.insufficiency, c.created_seq))


#: Registry: name -> zero/one-arg factory (RandomPolicy accepts an rng).
POLICIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "FIFO": FifoPolicy,
    "BF": BestFitPolicy,
    "RU": RecentUsePolicy,
    "Rand": RandomPolicy,
    "WF": WorstFitPolicy,
    "SF": SmallestFirstPolicy,
}

#: The four algorithms evaluated in the paper, in table order.
PAPER_POLICIES = ("FIFO", "BF", "RU", "Rand")
__all__.append("PAPER_POLICIES")


def make_policy(name: str, rng: np.random.Generator | None = None) -> SchedulingPolicy:
    """Instantiate a policy by table name (rng used only by "Rand")."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return RandomPolicy(rng)
    return factory()
