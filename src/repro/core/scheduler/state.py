"""Pure transition core of the GPU memory scheduler (DESIGN.md §11).

This module is the lock-free half of the core/runtime split: a
:class:`SchedulerState` owns every byte of bookkeeping (§III-D's records,
the sequence counter, the reserved-memory total and the policy's candidate
index) and exposes one deterministic **transition function** per protocol
verb.  A transition validates, mutates the bookkeeping, and returns a
:class:`Transition` describing everything that must happen *outside* the
caller's critical section:

- ``events``      — the typed scheduler events the runtime appends to its
  :class:`~repro.core.scheduler.events.EventLog` (and thus the journal);
- ``resumptions`` — deferred-reply callbacks to deliver (socket I/O);
- ``waits``       — pause durations to feed the latency histogram.

Nothing in this file touches a lock, a clock, a socket, a metric or a file
descriptor: timestamps come in through the explicit ``now`` argument and
all effects go out through the :class:`Transition`.  That makes every
transition a plain function of ``(state, inputs, now)`` — the property the
golden-trace suite and the journal's replay path
(:meth:`SchedulerState.apply_event`) both lean on.

The runtime wrapper that adds the mutex, the event log, metrics and the
group-commit journal handshake lives in
:class:`~repro.core.scheduler.core.GpuMemoryScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.scheduler.events import (
    AllocationAborted,
    AllocationCommitted,
    AllocationGranted,
    AllocationPaused,
    AllocationRejected,
    AllocationReleased,
    AllocationResumed,
    ContainerClosed,
    ContainerRegistered,
    MemoryAssigned,
    ProcessExited,
    ReservationReclaimed,
    SchedulerEvent,
)
from repro.core.scheduler.policies import CandidateIndex, SchedulingPolicy
from repro.core.scheduler.records import (
    AllocationRecord,
    ContainerRecord,
    PendingAllocation,
)
from repro.errors import (
    JournalError,
    LimitExceededError,
    SchedulerError,
    UnknownContainerError,
)
from repro.units import MiB, format_size

__all__ = [
    "CONTEXT_OVERHEAD_CHARGE",
    "Decision",
    "Transition",
    "SchedulerState",
]

#: What §III-D charges per pid on its first allocation: 64 MiB process data
#: + 2 MiB context.
CONTEXT_OVERHEAD_CHARGE: int = 66 * MiB

#: A deferred-reply delivery: ``callback(payload)``, run outside the lock.
Resumption = tuple[Callable[[dict[str, Any]], None], dict[str, Any]]


class Decision:
    """Outcome of an allocation request."""

    GRANT = "grant"
    PAUSE = "pause"
    REJECT = "reject"

    __slots__ = ("kind", "reason")

    def __init__(self, kind: str, reason: str = "") -> None:
        self.kind = kind
        self.reason = reason

    @property
    def granted(self) -> bool:
        return self.kind == Decision.GRANT

    @property
    def paused(self) -> bool:
        return self.kind == Decision.PAUSE

    @property
    def rejected(self) -> bool:
        return self.kind == Decision.REJECT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" ({self.reason})" if self.reason else ""
        return f"<Decision {self.kind}{suffix}>"


@dataclass
class Transition:
    """What one transition decided plus the effects it deferred.

    The pure core *describes* effects; the runtime *executes* them after
    releasing the mutex.  ``metric`` names the decision counter to bump
    (``None`` e.g. for an adopted orphan, which the seed implementation
    also did not re-count).
    """

    value: Any = None
    events: list[SchedulerEvent] = field(default_factory=list)
    resumptions: list[Resumption] = field(default_factory=list)
    #: Pause durations (seconds) resolved by this transition.
    waits: list[float] = field(default_factory=list)
    metric: str | None = None


class SchedulerState:
    """Lock-free scheduler bookkeeping + deterministic transitions.

    Single-threaded by contract: the caller (the runtime facade, the
    journal's replay loop, or a test) serializes access.  ``reserved`` is
    maintained incrementally so the redistribution loop's free-memory reads
    are O(1) instead of a rescan per pick.
    """

    def __init__(
        self,
        total_memory: int,
        policy: SchedulingPolicy,
        *,
        context_overhead: int = CONTEXT_OVERHEAD_CHARGE,
        resume_mode: str = "fit",
    ) -> None:
        if total_memory <= 0:
            raise SchedulerError(f"total_memory must be positive: {total_memory}")
        if resume_mode not in ("fit", "full"):
            raise SchedulerError(f"unknown resume_mode {resume_mode!r}")
        if context_overhead < 0:
            raise SchedulerError("context_overhead must be >= 0")
        self.total_memory = total_memory
        self.policy = policy
        self.context_overhead = context_overhead
        self.resume_mode = resume_mode
        self._containers: dict[str, ContainerRecord] = {}
        self._seq = 0
        #: Sum of open containers' ``assigned``, maintained incrementally.
        self._reserved = 0
        #: The policy's incremental candidate index over *this* state (one
        #: index per state, so one policy instance can serve many devices).
        self._index: CandidateIndex = policy.make_index(self)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def reserved(self) -> int:
        """Sum of all live reservations (O(1))."""
        return self._reserved

    @property
    def unreserved(self) -> int:
        """Physical memory not promised to any container (O(1))."""
        return self.total_memory - self._reserved

    def records(self) -> Iterable[ContainerRecord]:
        """All container records (open and closed) in registration order.

        A snapshot tuple, not a live view: callers iterate outside the
        runtime lock (policy indexes hold one across transitions), and a
        live ``.values()`` view would mutate under them (state-escape).
        """
        return tuple(self._containers.values())

    def container(self, container_id: str) -> ContainerRecord:
        record = self._containers.get(container_id)
        if record is None:
            raise UnknownContainerError(f"unknown container {container_id!r}")
        return record

    def mem_get_info(self, container_id: str, pid: int) -> tuple[int, int]:
        """The container's virtualized ``cudaMemGetInfo`` view (§IV-B)."""
        record = self._require_open(container_id)
        return record.limit - record.used - record.inflight, record.limit

    def check_invariants(self) -> None:
        """Assert global accounting invariants (property tests lean on this)."""
        reserved = 0
        for record in self._containers.values():
            if record.closed:
                if record.assigned or record.used or record.inflight:
                    raise SchedulerError(
                        f"{record.container_id}: closed but holds memory"
                    )
                continue
            if not 0 <= record.assigned <= record.limit:
                raise SchedulerError(
                    f"{record.container_id}: assigned {record.assigned} "
                    f"outside [0, {record.limit}]"
                )
            if record.used + record.inflight > record.assigned:
                raise SchedulerError(
                    f"{record.container_id}: used+inflight "
                    f"{record.used + record.inflight} > assigned {record.assigned}"
                )
            committed = sum(r.size for r in record.allocations.values())
            if committed != record.used:
                raise SchedulerError(
                    f"{record.container_id}: used {record.used} != "
                    f"sum(allocations) {committed}"
                )
            reserved += record.assigned
        if reserved > self.total_memory:
            raise SchedulerError(f"over-reserved: {reserved} > {self.total_memory}")
        if reserved != self._reserved:
            raise SchedulerError(
                f"reserved counter drifted: cached {self._reserved} != "
                f"actual {reserved}"
            )

    # ------------------------------------------------------------------
    # transitions: registration / teardown
    # ------------------------------------------------------------------

    def register(self, container_id: str, limit: int, now: float) -> Transition:
        """Declare a container's limit before it is created (§III-B).

        Immediately reserves ``min(limit, unreserved)`` for it (Fig. 3b);
        the remainder arrives later through redistribution.
        """
        if limit <= 0:
            raise SchedulerError(f"limit must be positive: {limit}")
        if limit > self.total_memory:
            raise LimitExceededError(
                f"limit {format_size(limit)} exceeds GPU capacity "
                f"{format_size(self.total_memory)}"
            )
        existing = self._containers.get(container_id)
        if existing is not None and not existing.closed:
            raise SchedulerError(f"container {container_id!r} already registered")
        transition = Transition()
        self._seq += 1
        record = ContainerRecord(
            container_id=container_id,
            limit=limit,
            created_seq=self._seq,
            created_at=now,
        )
        record.assigned = min(limit, self.unreserved)
        self._reserved += record.assigned
        self._containers[container_id] = record
        transition.events.append(
            ContainerRegistered(
                time=now,
                container_id=container_id,
                limit=limit,
                assigned=record.assigned,
            )
        )
        transition.value = record
        return transition

    def container_exit(self, container_id: str, now: float) -> Transition:
        """The nvidia-docker-plugin's *close* signal (§III-B).

        Clears every record of the container, fails any still-pending
        allocations (their processes are gone anyway, but the reply handles
        must not leak), returns the reservation to the pool, and triggers
        redistribution.  ``value`` is the bytes reclaimed.
        """
        transition = Transition(value=0)
        record = self._containers.get(container_id)
        if record is None or record.closed:
            return transition
        reclaimed = record.assigned
        # Fail pending replies in-band before dropping state.
        for pending in record.pending:
            record.suspended_total += now - pending.requested_at
            transition.waits.append(now - pending.requested_at)
            if pending.resume is not None:
                transition.resumptions.append(
                    (pending.resume, {"decision": "reject", "reason": "container exited"})
                )
        record.pending.clear()
        record.allocations.clear()
        record.used = 0
        record.inflight = 0
        record.assigned = 0
        record.closed = True
        self._reserved -= reclaimed
        self._index.on_close(record)
        transition.events.append(
            ContainerClosed(
                time=now,
                container_id=container_id,
                reclaimed=reclaimed,
                suspended_total=record.suspended_total,
            )
        )
        self._redistribute(now, transition)
        self._resolve_wedge(now, transition)
        transition.value = reclaimed
        return transition

    # ------------------------------------------------------------------
    # transitions: the allocation protocol (wrapper-facing)
    # ------------------------------------------------------------------

    def request(
        self,
        container_id: str,
        pid: int,
        size: int,
        api: str,
        on_resume: Callable[[dict[str, Any]], None] | None,
        now: float,
    ) -> Transition:
        """The wrapper's pre-allocation size check (§III-C step 1).

        ``value`` is the :class:`Decision`; a PAUSE decision queues the
        request and ``on_resume`` is eventually delivered the withheld
        reply payload (grant or reject) by a later transition.
        """
        if size <= 0:
            raise SchedulerError(f"allocation size must be positive: {size}")
        transition = Transition()
        record = self._require_open(container_id)
        if on_resume is not None and self._adopt_orphan(
            record, pid, size, api, on_resume
        ):
            transition.value = Decision(Decision.PAUSE)
            return transition
        effective = record.effective_size(pid, size, self.context_overhead)
        charges_overhead = effective != size
        if record.used + record.inflight + effective > record.limit:
            transition.events.append(
                AllocationRejected(
                    time=now,
                    container_id=container_id,
                    pid=pid,
                    size=size,
                    reason="exceeds container limit",
                )
            )
            transition.value = Decision(Decision.REJECT, "exceeds container limit")
            transition.metric = Decision.REJECT
            return transition
        if charges_overhead:
            record.pids_charged.add(pid)
            record.overhead_pending.add(pid)
        if (
            not record.paused
            and record.used + record.inflight + effective <= record.assigned
        ):
            self._grant(record, pid, effective, size, api, now, transition)
            transition.value = Decision(Decision.GRANT)
            transition.metric = Decision.GRANT
            return transition
        # Valid but under-assigned (or behind earlier pending requests):
        # withhold the reply.  Fig. 3c.
        record.pending.append(
            PendingAllocation(
                pid=pid,
                size=effective,
                requested_size=size,
                api=api,
                requested_at=now,
                resume=on_resume,
            )
        )
        record.last_suspended_at = now
        record.pause_count += 1
        self._index.on_pause(record)
        transition.events.append(
            AllocationPaused(
                time=now, container_id=container_id, pid=pid, size=size, api=api
            )
        )
        transition.value = Decision(Decision.PAUSE)
        transition.metric = Decision.PAUSE
        # This pause may have been the last runnable container going idle:
        # check for the all-paused wedge and break it if so.
        self._resolve_wedge(now, transition)
        return transition

    def commit(
        self, container_id: str, pid: int, address: int, size: int, now: float
    ) -> Transition:
        """The wrapper's post-allocation report: address + pid + size.

        Moves the inflight reservation to committed usage and records the
        address in the hash structure.  The first commit of a pid also
        materializes its context-overhead record.
        """
        transition = Transition()
        record = self._require_open(container_id)
        if address in record.allocations:
            raise SchedulerError(
                f"duplicate commit for address {address:#x} in {container_id}"
            )
        overhead = 0
        overhead_key = self._overhead_key(pid)
        if pid in record.overhead_pending:
            overhead = self.context_overhead
            record.overhead_pending.discard(pid)
        total = size + overhead
        if total > record.inflight:
            raise SchedulerError(
                f"commit of {format_size(total)} exceeds inflight "
                f"{format_size(record.inflight)} in {container_id}"
            )
        record.inflight -= total
        record.used += total
        record.allocations[address] = AllocationRecord(
            address=address, pid=pid, size=size
        )
        if overhead:
            record.allocations[overhead_key] = AllocationRecord(
                address=overhead_key,
                pid=pid,
                size=overhead,
                is_context_overhead=True,
            )
        transition.events.append(
            AllocationCommitted(
                time=now,
                container_id=container_id,
                pid=pid,
                address=address,
                size=size,
            )
        )
        return transition

    def abort(self, container_id: str, pid: int, size: int, now: float) -> Transition:
        """The wrapper reports that the *native* allocation failed.

        Rolls the inflight reservation back (including the overhead charge
        when the pid has no committed allocation yet), then re-checks this
        container's own pending queue — the freed headroom may unblock it.
        """
        transition = Transition()
        record = self._require_open(container_id)
        effective = size
        if pid in record.overhead_pending:
            effective += self.context_overhead
            record.overhead_pending.discard(pid)
            record.pids_charged.discard(pid)
        if effective > record.inflight:
            raise SchedulerError(
                f"abort of {format_size(effective)} exceeds inflight "
                f"{format_size(record.inflight)} in {container_id}"
            )
        record.inflight -= effective
        transition.events.append(
            AllocationAborted(time=now, container_id=container_id, pid=pid, size=size)
        )
        self._try_resume(record, now, transition)
        self._resolve_wedge(now, transition)
        return transition

    def release(
        self, container_id: str, pid: int, address: int, now: float
    ) -> Transition:
        """``cudaFree`` path: drop the hash entry, shrink usage (§III-C).

        Freed bytes stay inside the container's reservation (the guarantee
        is for the container's lifetime) but may resume the container's own
        pending allocations.  ``value`` is the released size.
        """
        transition = Transition()
        record = self._require_open(container_id)
        allocation = record.allocations.pop(address, None)
        if allocation is None:
            raise SchedulerError(
                f"release of unknown address {address:#x} in {container_id}"
            )
        record.used -= allocation.size
        transition.events.append(
            AllocationReleased(
                time=now,
                container_id=container_id,
                pid=pid,
                address=address,
                size=allocation.size,
            )
        )
        self._try_resume(record, now, transition)
        self._resolve_wedge(now, transition)
        transition.value = allocation.size
        return transition

    def process_exit(self, container_id: str, pid: int, now: float) -> Transition:
        """``__cudaUnregisterFatBinary`` path (§III-C/D).

        Drops *all* allocation records of the pid — "some program may not
        free its allocated GPU memory" — including its context-overhead
        charge.  ``value`` is the bytes reclaimed into the reservation.
        """
        transition = Transition()
        record = self._require_open(container_id)
        doomed = [a for a in record.allocations.values() if a.pid == pid]
        reclaimed = sum(a.size for a in doomed)
        for allocation in doomed:
            del record.allocations[allocation.address]
        record.used -= reclaimed
        record.pids_charged.discard(pid)
        record.overhead_pending.discard(pid)
        transition.events.append(
            ProcessExited(
                time=now, container_id=container_id, pid=pid, reclaimed=reclaimed
            )
        )
        self._try_resume(record, now, transition)
        self._resolve_wedge(now, transition)
        transition.value = reclaimed
        return transition

    # ------------------------------------------------------------------
    # redistribution + resumption
    # ------------------------------------------------------------------

    def _redistribute(self, now: float, transition: Transition) -> None:
        """Hand unreserved memory to paused containers via the policy.

        The candidate index makes each pick O(log n) (heap pop / bisect)
        instead of the seed's O(n) candidate-list rebuild; the pool size is
        the O(1) incremental ``unreserved``.
        """
        while True:
            free = self.unreserved
            if free <= 0:
                break
            chosen = self._index.pick(free)
            if chosen is None:
                break
            amount = min(chosen.insufficiency, free)
            if amount <= 0:  # defensive; the index only yields insufficiency > 0
                break
            chosen.assigned += amount
            self._reserved += amount
            self._index.on_assign(chosen)
            transition.events.append(
                MemoryAssigned(
                    time=now,
                    container_id=chosen.container_id,
                    amount=amount,
                    assigned_total=chosen.assigned,
                    policy=self.policy.name,
                )
            )
            self._try_resume(chosen, now, transition)

    def _resolve_wedge(self, now: float, transition: Transition) -> None:
        """Break the all-paused reservation wedge (deadlock prevention, §I).

        Partial reservations (registration grants and policy leftovers,
        Fig. 3b/3d) can reach a state where *every* open container is
        paused and every byte is reserved — nobody can run, nobody will
        exit, nothing will ever be redistributed.  The paper asserts its
        algorithms "can prevent the system from falling into deadlock
        situations"; the mechanism we implement for that guarantee is:

        when no open container is runnable, reclaim the *idle* part of
        every paused container's reservation (memory they cannot use —
        their head request exceeds it by definition) back into the pool and
        re-run the policy loop, which then completes containers one at a
        time instead of leaving everyone starved.
        """
        open_records = [r for r in self._containers.values() if not r.closed]
        if not open_records or any(not r.paused for r in open_records):
            return
        reclaimed = 0
        for record in open_records:
            idle = record.assigned - record.used - record.inflight
            if idle > 0:
                record.assigned -= idle
                self._reserved -= idle
                reclaimed += idle
                self._index.on_assign(record)
                transition.events.append(
                    ReservationReclaimed(
                        time=now,
                        container_id=record.container_id,
                        amount=idle,
                        assigned_total=record.assigned,
                    )
                )
        if reclaimed:
            self._redistribute(now, transition)

    def _try_resume(
        self, record: ContainerRecord, now: float, transition: Transition
    ) -> None:
        """Resume the head of the pending queue while it fits.

        Pending requests resume strictly in order — the wrapper blocks the
        calling thread per request, so out-of-order resumption cannot
        happen on the real socket either.
        """
        was_paused = bool(record.pending)
        while record.pending:
            head = record.pending[0]
            if self.resume_mode == "full" and record.assigned < record.limit:
                break
            if record.used + record.inflight + head.size > record.assigned:
                break
            record.pending.pop(0)
            waited = now - head.requested_at
            record.suspended_total += waited
            transition.waits.append(waited)
            self._grant(
                record, head.pid, head.size, head.requested_size, head.api, now,
                transition,
            )
            transition.events.append(
                AllocationResumed(
                    time=now,
                    container_id=record.container_id,
                    pid=head.pid,
                    size=head.requested_size,
                    waited=waited,
                )
            )
            if head.resume is not None:
                transition.resumptions.append((head.resume, {"decision": "grant"}))
        if was_paused and not record.pending:
            self._index.on_resume(record)

    def _grant(
        self,
        record: ContainerRecord,
        pid: int,
        effective: int,
        size: int,
        api: str,
        now: float,
        transition: Transition,
    ) -> None:
        record.inflight += effective
        transition.events.append(
            AllocationGranted(
                time=now,
                container_id=record.container_id,
                pid=pid,
                size=size,
                api=api,
            )
        )

    def _adopt_orphan(
        self,
        record: ContainerRecord,
        pid: int,
        size: int,
        api: str,
        on_resume: Callable[[dict[str, Any]], None],
    ) -> bool:
        """Re-attach a reconnecting wrapper to its pre-crash pending entry.

        After :func:`~repro.core.scheduler.journal.restore` the pending
        queue is rebuilt from the journal but its ``resume`` callbacks are
        gone (they wrapped the dead daemon's sockets).  When the wrapper's
        retry loop re-issues the identical ``alloc_request``, we adopt the
        orphaned entry — keeping its original queue position and
        ``requested_at`` timestamp — instead of double-queueing the request.
        No event is logged: the pause already is in the journal.

        Returns True when an orphan was adopted.
        """
        for pending in record.pending:
            if (
                pending.resume is None
                and pending.pid == pid
                and pending.requested_size == size
                and pending.api == api
            ):
                pending.resume = on_resume
                return True
        return False

    # ------------------------------------------------------------------
    # journal integration: replay + snapshots
    # ------------------------------------------------------------------

    def apply_event(self, event: SchedulerEvent) -> None:
        """Apply one journaled event, policy-free (crash recovery).

        Mirrors exactly the state mutation the matching transition
        performed when it emitted the event; derived amounts
        (redistribution targets, reclaimed idle memory) come from the
        event itself, so replay never re-runs the policy and is
        deterministic even under the Random policy.
        """
        if isinstance(event, ContainerRegistered):
            self._seq += 1
            record = ContainerRecord(
                container_id=event.container_id,
                limit=event.limit,
                created_seq=self._seq,
                created_at=event.time,
            )
            record.assigned = event.assigned
            self._reserved += event.assigned
            self._containers[event.container_id] = record
            return
        record = self._containers.get(event.container_id)
        if record is None:
            raise JournalError(
                f"journal references unknown container {event.container_id!r} "
                f"in {type(event).__name__}"
            )
        if isinstance(event, AllocationGranted):
            if record.pending:
                # A grant while replies are withheld can only be the head of
                # the pending queue resuming (direct grants require an
                # unpaused container) — same dichotomy request() enforces.
                head = record.pending.pop(0)
                record.suspended_total += event.time - head.requested_at
                record.inflight += head.size
                if not record.pending:
                    self._index.on_resume(record)
            else:
                effective = record.effective_size(
                    event.pid, event.size, self.context_overhead
                )
                if effective != event.size:
                    record.pids_charged.add(event.pid)
                    record.overhead_pending.add(event.pid)
                record.inflight += effective
        elif isinstance(event, AllocationPaused):
            effective = record.effective_size(
                event.pid, event.size, self.context_overhead
            )
            if effective != event.size:
                record.pids_charged.add(event.pid)
                record.overhead_pending.add(event.pid)
            record.pending.append(
                PendingAllocation(
                    pid=event.pid,
                    size=effective,
                    requested_size=event.size,
                    api=event.api,
                    requested_at=event.time,
                    resume=None,
                )
            )
            record.last_suspended_at = event.time
            record.pause_count += 1
            self._index.on_pause(record)
        elif isinstance(event, AllocationResumed):
            pass  # state applied by the preceding AllocationGranted
        elif isinstance(event, AllocationRejected):
            pass  # decision only; no state change
        elif isinstance(event, AllocationCommitted):
            overhead = 0
            if event.pid in record.overhead_pending:
                overhead = self.context_overhead
                record.overhead_pending.discard(event.pid)
            total = event.size + overhead
            record.inflight -= total
            record.used += total
            record.allocations[event.address] = AllocationRecord(
                address=event.address, pid=event.pid, size=event.size
            )
            if overhead:
                key = self._overhead_key(event.pid)
                record.allocations[key] = AllocationRecord(
                    address=key, pid=event.pid, size=overhead, is_context_overhead=True
                )
        elif isinstance(event, AllocationReleased):
            allocation = record.allocations.pop(event.address, None)
            if allocation is None:
                raise JournalError(
                    f"release of unknown address {event.address:#x} during replay"
                )
            record.used -= allocation.size
        elif isinstance(event, AllocationAborted):
            effective = event.size
            if event.pid in record.overhead_pending:
                effective += self.context_overhead
                record.overhead_pending.discard(event.pid)
                record.pids_charged.discard(event.pid)
            record.inflight -= effective
        elif isinstance(event, (MemoryAssigned, ReservationReclaimed)):
            self._reserved += event.assigned_total - record.assigned
            record.assigned = event.assigned_total
            self._index.on_assign(record)
        elif isinstance(event, ProcessExited):
            doomed = [a for a in record.allocations.values() if a.pid == event.pid]
            for allocation in doomed:
                del record.allocations[allocation.address]
            record.used -= sum(a.size for a in doomed)
            record.pids_charged.discard(event.pid)
            record.overhead_pending.discard(event.pid)
        elif isinstance(event, ContainerClosed):
            self._reserved -= record.assigned
            record.pending.clear()
            record.allocations.clear()
            record.used = 0
            record.inflight = 0
            record.assigned = 0
            record.closed = True
            record.suspended_total = event.suspended_total
            self._index.on_close(record)
        else:  # pragma: no cover - registry and appliers move in lockstep
            raise JournalError(f"no replay rule for {type(event).__name__}")

    def serialize(self) -> dict[str, Any]:
        """Full state as plain JSON types (the journal's snapshot payload).

        Container order preserves the ``_containers`` dict order so a
        snapshot restore and an event replay produce indistinguishable
        schedulers.  ``resume`` callbacks are dropped — they wrap
        connections that will not survive a crash.
        """
        return {
            "seq": self._seq,
            "containers": [
                {
                    "container_id": r.container_id,
                    "limit": r.limit,
                    "created_seq": r.created_seq,
                    "created_at": r.created_at,
                    "assigned": r.assigned,
                    "used": r.used,
                    "inflight": r.inflight,
                    "closed": r.closed,
                    "allocations": [
                        [a.address, a.pid, a.size, a.is_context_overhead]
                        for a in r.allocations.values()
                    ],
                    "pids_charged": sorted(r.pids_charged),
                    "overhead_pending": sorted(r.overhead_pending),
                    "pending": [
                        {
                            "pid": p.pid,
                            "size": p.size,
                            "requested_size": p.requested_size,
                            "api": p.api,
                            "requested_at": p.requested_at,
                        }
                        for p in r.pending
                    ],
                    "last_suspended_at": r.last_suspended_at,
                    "suspended_total": r.suspended_total,
                    "pause_count": r.pause_count,
                }
                for r in self._containers.values()
            ],
        }

    def load_snapshot(self, state: dict[str, Any]) -> None:
        """Install a snapshot payload into a fresh state."""
        self._seq = state["seq"]
        self._containers.clear()
        for entry in state["containers"]:
            record = ContainerRecord(
                container_id=entry["container_id"],
                limit=entry["limit"],
                created_seq=entry["created_seq"],
                created_at=entry["created_at"],
                assigned=entry["assigned"],
                used=entry["used"],
                inflight=entry["inflight"],
                closed=entry["closed"],
                last_suspended_at=entry["last_suspended_at"],
                suspended_total=entry["suspended_total"],
                pause_count=entry["pause_count"],
            )
            record.allocations = {
                address: AllocationRecord(
                    address=address, pid=pid, size=size, is_context_overhead=overhead
                )
                for address, pid, size, overhead in entry["allocations"]
            }
            record.pids_charged = set(entry["pids_charged"])
            record.overhead_pending = set(entry["overhead_pending"])
            record.pending = [
                PendingAllocation(
                    pid=p["pid"],
                    size=p["size"],
                    requested_size=p["requested_size"],
                    api=p["api"],
                    requested_at=p["requested_at"],
                    resume=None,  # orphan: re-attached when the wrapper re-issues
                )
                for p in entry["pending"]
            ]
            self._containers[record.container_id] = record
        self._reserved = sum(
            r.assigned for r in self._containers.values() if not r.closed
        )
        self._index.rebuild()

    # ------------------------------------------------------------------

    def _require_open(self, container_id: str) -> ContainerRecord:
        record = self._containers.get(container_id)
        if record is None:
            raise UnknownContainerError(f"unknown container {container_id!r}")
        if record.closed:
            raise UnknownContainerError(f"container {container_id!r} already closed")
        return record

    @staticmethod
    def _overhead_key(pid: int) -> int:
        """Synthetic hash key for a pid's context-overhead record.

        Negative so it can never collide with a real device address.
        """
        return -pid
