"""The ConVGPU middleware facade: one object wiring the whole stack.

Composition (Fig. 1/2 of the paper):

- a simulated **GPU device** (Tesla K20m by default) with its context table
  and fat-binary registry;
- the **GPU memory scheduler** with a selectable policy;
- a **Docker engine** with the **nvidia-docker-plugin** registered (driver
  volume + dummy exit-detection volume);
- the **customized nvidia-docker** CLI wrapper;
- per-process **CUDA runtime / driver libraries** installed as library
  providers, and the **wrapper module** published for ``LD_PRELOAD``.

``managed=False`` produces the paper's baseline: stock nvidia-docker, GPU
passthrough, no scheduler, no interception — the configuration under which
concurrent containers can fail or deadlock (§I).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.container.container import Container
from repro.container.engine import DockerEngine
from repro.container.linker import SharedLibrary
from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.policies import SchedulingPolicy, make_policy
from repro.core.scheduler.service import SchedulerService
from repro.core.wrapper.module import WrapperModule
from repro.cuda.context import ContextTable
from repro.cuda.driver import CudaDriver
from repro.cuda.fatbinary import FatBinaryRegistry
from repro.cuda.runtime import CudaRuntime
from repro.gpu.device import GpuDevice
from repro.gpu.properties import DeviceProperties
from repro.ipc import protocol
from repro.ipc.channel import InProcessChannel
from repro.nvdocker.cli import NvidiaDocker
from repro.nvdocker.plugin import NvidiaDockerPlugin
from repro.obs.trace import Tracer

__all__ = ["ConVGPU"]


class ConVGPU:
    """The assembled middleware (in-process transport).

    Args:
        policy: a :class:`SchedulingPolicy` or a name from the registry
            ("FIFO", "BF", "RU", "Rand", ...).
        properties: device model (defaults to the paper's Tesla K20m).
        clock: injected time source (DES clock or wall clock).
        managed: False = stock nvidia-docker baseline (no ConVGPU).
        rng: random generator for the "Rand" policy.
        context_overhead / resume_mode: forwarded to the scheduler core
            (ablation knobs).
        tracer: span recorder shared by every wrapper module and the
            scheduler service, so one CUDA call appears as a single
            wrapper→scheduler trace (``None`` = tracing off).
    """

    def __init__(
        self,
        policy: SchedulingPolicy | str = "BF",
        *,
        properties: DeviceProperties | None = None,
        clock: Callable[[], float] | None = None,
        managed: bool = True,
        live: bool = False,
        rng: np.random.Generator | None = None,
        context_overhead: int | None = None,
        resume_mode: str = "fit",
        device_count: int = 1,
        placement: str = "most-free",
        tracer: "Tracer | None" = None,
    ) -> None:
        if live and clock is None:
            import time

            clock = time.monotonic
        if device_count < 1:
            raise ValueError(f"device_count must be >= 1, got {device_count}")
        if device_count > 1 and not managed:
            raise ValueError(
                "multi-device hosts require managed=True (placement happens "
                "at the scheduler's registration step)"
            )
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.managed = managed
        self.live = live
        self.tracer = tracer

        # --- GPU + CUDA substrate ---------------------------------------
        from repro.gpu.device import DeviceRegistry

        self.devices = DeviceRegistry(
            [GpuDevice(i, properties) for i in range(device_count)]
        )
        #: Device 0, kept as the single-device shorthand (most callers).
        self.device = self.devices.get(0)
        self.contexts_by_device = [ContextTable(d) for d in self.devices]
        self.contexts = self.contexts_by_device[0]
        self.fatbins = FatBinaryRegistry()

        # --- scheduler core ----------------------------------------------
        if isinstance(policy, str):
            policy = make_policy(policy, rng)
        self.policy = policy
        scheduler_kwargs: dict[str, Any] = {"clock": self.clock, "resume_mode": resume_mode}
        if context_overhead is not None:
            scheduler_kwargs["context_overhead"] = context_overhead
        if device_count > 1:
            from repro.cluster.multigpu import MultiGpuScheduler

            self.scheduler = MultiGpuScheduler(
                self.devices,
                policy,
                placement=placement,
                clock=self.clock,
                context_overhead=context_overhead,
            )
        else:
            self.scheduler = GpuMemoryScheduler(
                self.device.properties.total_global_mem, policy, **scheduler_kwargs
            )
        self.service = SchedulerService(self.scheduler, tracer=tracer)
        self.channel = InProcessChannel(self.service.handle)

        # --- live mode: real daemon + real control socket -----------------
        self.daemon = None
        self._control_client = None
        if live and managed:
            from repro.core.scheduler.daemon import SchedulerDaemon
            from repro.ipc.unix_socket import UnixSocketClient

            self.daemon = SchedulerDaemon(self.scheduler).start()
            self._control_client = UnixSocketClient(self.daemon.control_path)

        # --- container stack -----------------------------------------------
        self.engine = DockerEngine(clock=self.clock)
        control = self.control_call if managed else None
        self.plugin = NvidiaDockerPlugin(control_call=control)
        self.engine.volumes.register_plugin(self.plugin)
        self.nvdocker = NvidiaDocker(self.engine, self.plugin, control_call=control)

        # --- library wiring -------------------------------------------------
        self._runtimes: dict[tuple[str, int], CudaRuntime] = {}
        self._drivers: dict[tuple[str, int], CudaDriver] = {}
        self._wrappers: dict[tuple[str, int], WrapperModule] = {}
        self.engine.install_library("libcudart.so", self._cudart_provider)
        self.engine.install_library("libcuda.so", self._driver_provider)
        if managed:
            self.engine.publish_preload("libgpushare.so", self._wrapper_provider)

    # ------------------------------------------------------------------
    # control plane (nvidia-docker / plugin -> scheduler)
    # ------------------------------------------------------------------

    def control_call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Reach the scheduler's control plane.

        Live mode goes over the daemon's real control socket; otherwise the
        in-process channel stands in, mimicking the daemon's behaviour of
        answering registrations with the per-container directory path
        (virtual here; the live daemon creates a real one).
        """
        if self._control_client is not None:
            return self._control_client.call(msg_type, **payload)
        reply = self.channel.call_sync(msg_type, **payload)
        if (
            msg_type == protocol.MSG_REGISTER_CONTAINER
            and reply.get("status") == "ok"
        ):
            reply = {**reply, "socket_dir": f"/var/convgpu/{payload['container_id']}"}
        return reply

    def container_socket_path(self, scheduler_key: str) -> str:
        """Live mode: the real per-container socket path."""
        if self.daemon is None:
            raise RuntimeError("container_socket_path requires live=True")
        return self.daemon.container_socket_path(scheduler_key)

    def close(self) -> None:
        """Stop the live daemon and control client (no-op otherwise)."""
        if self._control_client is not None:
            self._control_client.close()
            self._control_client = None
        if self.daemon is not None:
            self.daemon.stop()
            self.daemon = None

    def __enter__(self) -> "ConVGPU":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # per-process library providers
    # ------------------------------------------------------------------

    def device_of(self, scheduler_key: str) -> int:
        """The device ordinal a container was placed on (0 on 1-GPU hosts)."""
        if len(self.devices) == 1:
            return 0
        try:
            return self.scheduler.device_of(scheduler_key)
        except Exception:
            # Unregistered (non-CUDA container): anything it links sees
            # device 0, like a process on a host whose GPUs it cannot open.
            return 0

    def runtime_for(self, scheduler_key: str, host_pid: int) -> CudaRuntime:
        """The (memoized) native CUDA runtime of one process."""
        key = (scheduler_key, host_pid)
        runtime = self._runtimes.get(key)
        if runtime is None:
            ordinal = self.device_of(scheduler_key)
            runtime = CudaRuntime(
                self.devices.get(ordinal),
                host_pid,
                self.contexts_by_device[ordinal],
                self.fatbins,
            )
            runtime.device_count = len(self.devices)
            self._runtimes[key] = runtime
        return runtime

    def driver_for(self, scheduler_key: str, host_pid: int) -> CudaDriver:
        """The (memoized) native CUDA driver handle of one process."""
        key = (scheduler_key, host_pid)
        driver = self._drivers.get(key)
        if driver is None:
            ordinal = self.device_of(scheduler_key)
            driver = CudaDriver(
                self.devices.get(ordinal),
                host_pid,
                self.contexts_by_device[ordinal],
            )
            self._drivers[key] = driver
        return driver

    def wrapper_for(self, scheduler_key: str, host_pid: int) -> WrapperModule:
        """The (memoized) wrapper module of one process."""
        key = (scheduler_key, host_pid)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            wrapper = WrapperModule(
                self.runtime_for(scheduler_key, host_pid),
                container_id=scheduler_key,
                native_driver=self.driver_for(scheduler_key, host_pid),
                tracer=self.tracer,
            )
            self._wrappers[key] = wrapper
        return wrapper

    def _cudart_provider(self, container: Container, host_pid: int) -> SharedLibrary:
        runtime = self.runtime_for(container.name, host_pid)
        return SharedLibrary(
            "libcudart.so",
            {symbol: runtime.resolve(symbol) for symbol in CudaRuntime.SYMBOLS},
        )

    def _driver_provider(self, container: Container, host_pid: int) -> SharedLibrary:
        driver = self.driver_for(container.name, host_pid)
        return SharedLibrary(
            "libcuda.so",
            {symbol: driver.resolve(symbol) for symbol in CudaDriver.SYMBOLS},
        )

    def _wrapper_provider(self, container: Container, host_pid: int) -> SharedLibrary:
        wrapper = self.wrapper_for(container.name, host_pid)
        return wrapper.as_shared_library()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def creation_overhead(self) -> float:
        """Modelled extra creation latency ConVGPU adds (Fig. 5, ≈0.06 s).

        Components: the registration round-trip, directory + socket setup,
        and the wrapper-module copy the daemon performs per container.
        """
        if not self.managed:
            return 0.0
        return 0.0618

    def container_record(self, container: Container):
        """Scheduler record of a container started through nvidia-docker."""
        return self.scheduler.container(container.name)
