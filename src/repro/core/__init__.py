"""ConVGPU core: scheduler, wrapper module, and the assembled middleware."""

from repro.core.middleware import ConVGPU
from repro.core.scheduler import (
    CONTEXT_OVERHEAD_CHARGE,
    Decision,
    GpuMemoryScheduler,
    SchedulerDaemon,
    SchedulerService,
    make_policy,
    register_policy,
)
from repro.core.wrapper import INTERCEPTED_SYMBOLS, SizeAdjuster, WrapperModule

__all__ = [
    "ConVGPU",
    "GpuMemoryScheduler",
    "Decision",
    "SchedulerService",
    "SchedulerDaemon",
    "CONTEXT_OVERHEAD_CHARGE",
    "make_policy",
    "register_policy",
    "WrapperModule",
    "INTERCEPTED_SYMBOLS",
    "SizeAdjuster",
]
