"""Driver-API interception (§III-C).

"Moreover, our wrapper module can cover both CUDA Driver API and Runtime
API."  These hooks wrap the ``cu*`` memory symbols with the same
grant → allocate → commit/abort protocol the Runtime hooks use, reporting
Driver-style ``CUresult`` codes (a scheduler rejection surfaces as
``CUDA_ERROR_OUT_OF_MEMORY``, indistinguishable from a full device — the
same story as the Runtime side).
"""

from __future__ import annotations

from typing import Any

from repro.cuda.driver import CudaDriver
from repro.cuda.effects import IpcCall
from repro.cuda.errors import CUresult
from repro.ipc import protocol

__all__ = ["DriverHooks", "INTERCEPTED_DRIVER_SYMBOLS"]

#: The driver symbols libgpushare.so additionally overrides.
INTERCEPTED_DRIVER_SYMBOLS = ("cuMemAlloc", "cuMemFree", "cuMemGetInfo")


class DriverHooks:
    """Per-process driver interception state."""

    def __init__(self, native: CudaDriver, container_id: str) -> None:
        self.native = native
        self.container_id = container_id
        self.pid = native.pid

    def _ipc(self, msg_type: str, **payload: Any) -> IpcCall:
        return IpcCall(
            message=protocol.make_request(
                msg_type, container_id=self.container_id, pid=self.pid, **payload
            ),
            await_reply=msg_type not in protocol.NOTIFICATION_TYPES,
        )

    # ------------------------------------------------------------------

    def cuMemAlloc(self, size: int):  # noqa: N802 - CUDA name
        if size <= 0:
            return CUresult.CUDA_ERROR_INVALID_VALUE, None
        reply = yield self._ipc(
            protocol.MSG_ALLOC_REQUEST, size=size, api="cuMemAlloc"
        )
        if reply.get("status") != "ok" or reply.get("decision") != "grant":
            return CUresult.CUDA_ERROR_OUT_OF_MEMORY, None
        result, dptr = yield from self.native.cuMemAlloc(size)
        if not result.is_success:
            yield self._ipc(protocol.MSG_ALLOC_ABORT, size=size)
            return result, None
        yield self._ipc(protocol.MSG_ALLOC_COMMIT, address=dptr, size=size)
        return CUresult.CUDA_SUCCESS, dptr

    def cuMemFree(self, dptr: int):  # noqa: N802
        result, value = yield from self.native.cuMemFree(dptr)
        if result.is_success:
            yield self._ipc(protocol.MSG_ALLOC_RELEASE, address=dptr)
        return result, value

    def cuMemGetInfo(self):  # noqa: N802
        """Answered from scheduler bookkeeping, like the Runtime hook."""
        reply = yield self._ipc(protocol.MSG_MEM_GET_INFO)
        if reply.get("status") != "ok":
            return (yield from self.native.cuMemGetInfo())
        return CUresult.CUDA_SUCCESS, (reply["free"], reply["total"])

    def exports(self) -> dict[str, Any]:
        return {symbol: getattr(self, symbol) for symbol in INTERCEPTED_DRIVER_SYMBOLS}
