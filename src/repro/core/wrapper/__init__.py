"""The CUDA wrapper API module (``libgpushare.so``) and its size adjuster."""

from repro.core.wrapper.adjust import SizeAdjuster
from repro.core.wrapper.module import INTERCEPTED_SYMBOLS, WrapperModule

__all__ = ["WrapperModule", "INTERCEPTED_SYMBOLS", "SizeAdjuster"]
