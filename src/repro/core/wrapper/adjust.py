"""Allocation-size adjustment (§III-C).

"Some memory allocation APIs may allocate increased size of memory which is
different user program's first memory request."  Before asking the
scheduler whether a request fits, the wrapper recomputes what the driver
will *actually* take:

- ``cudaMallocPitch`` / ``cudaMalloc3D``: rows are widened to the device
  pitch granularity ("This pitched size varies among the GPU model", so the
  wrapper reads it from ``cudaGetDeviceProperties`` on first use);
- ``cudaMallocManaged``: rounded up to 128 MiB multiples (mapped memory);
- ``cudaMalloc``: taken as requested.

Keeping this a pure, separately-tested module matters: if the wrapper's
estimate and the driver's real consumption disagree, the scheduler's
per-container accounting drifts, which is exactly the failure the paper's
design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.runtime import align_up
from repro.cuda.types import cudaExtent

__all__ = ["SizeAdjuster"]


@dataclass
class SizeAdjuster:
    """Computes the device-side size of each allocation request.

    ``pitch_granularity`` and ``managed_granularity`` start unknown (None)
    and are learned from the device-properties query the wrapper performs
    lazily — mirroring "the wrapper module retrieves the pitched size of
    current GPU using cudaGetDeviceProperties API on the first call".
    """

    pitch_granularity: int | None = None
    managed_granularity: int | None = None

    @property
    def knows_pitch(self) -> bool:
        return self.pitch_granularity is not None

    def learn(self, *, pitch_granularity: int, managed_granularity: int) -> None:
        """Record granularities from a device-properties result."""
        if pitch_granularity <= 0 or managed_granularity <= 0:
            raise ValueError("granularities must be positive")
        self.pitch_granularity = pitch_granularity
        self.managed_granularity = managed_granularity

    def _require_learned(self) -> None:
        if self.pitch_granularity is None or self.managed_granularity is None:
            raise RuntimeError(
                "SizeAdjuster used before device properties were learned"
            )

    def malloc(self, size: int) -> int:
        """``cudaMalloc``: the driver takes what was asked."""
        if size <= 0:
            raise ValueError(f"size must be positive: {size}")
        return size

    def malloc_managed(self, size: int) -> int:
        """``cudaMallocManaged``: multiples of the managed granularity."""
        if size <= 0:
            raise ValueError(f"size must be positive: {size}")
        self._require_learned()
        return align_up(size, self.managed_granularity)

    def malloc_pitch(self, width: int, height: int) -> tuple[int, int]:
        """``cudaMallocPitch``: returns (adjusted_total, pitch)."""
        if width <= 0 or height <= 0:
            raise ValueError(f"width/height must be positive: {width}x{height}")
        self._require_learned()
        pitch = align_up(width, self.pitch_granularity)
        return pitch * height, pitch

    def malloc_3d(self, extent: cudaExtent) -> tuple[int, int]:
        """``cudaMalloc3D``: returns (adjusted_total, pitch)."""
        if extent.width <= 0 or extent.height <= 0 or extent.depth <= 0:
            raise ValueError(f"extent components must be positive: {extent}")
        self._require_learned()
        pitch = align_up(extent.width, self.pitch_granularity)
        return pitch * extent.height * extent.depth, pitch
