"""The CUDA wrapper API module — ``libgpushare.so`` (§III-C).

One instance exists per (container, process); the engine's preload provider
constructs it when a container is started with ``LD_PRELOAD`` pointing at
the wrapper.  It exports *exactly* the Table II symbols, so every other
CUDA API resolves straight to the native runtime — "we did not implement
entire copies of CUDA API because wrapper module only overrides the
function symbol name of some CUDA APIs and it leaves other CUDA API
available".

Interception pattern for allocation APIs (§III-C):

1. compute the adjusted size (pitch / 128 MiB rounding);
2. ``IpcCall(alloc_request)`` — the scheduler may grant, reject, or simply
   not answer yet (pause; the program blocks inside the CUDA call);
3. on grant, call the *original* CUDA API;
4. on native success, ``IpcCall(alloc_commit)`` with the real address;
   on native failure, ``IpcCall(alloc_abort)`` to roll the grant back;
5. return the original API's result to the user program.

``cudaFree`` frees natively first, then notifies.  ``cudaMemGetInfo`` is
answered *from the scheduler* without touching the device — which is why
Fig. 4 shows it *faster* under ConVGPU.  ``__cudaUnregisterFatBinary``
forwards, then reports process exit when the last fat binary is gone.
"""

from __future__ import annotations

from typing import Any

from repro.core.wrapper.adjust import SizeAdjuster
from repro.cuda.effects import HostCompute, IpcCall
from repro.cuda.errors import cudaError
from repro.cuda.fatbinary import FatBinaryHandle
from repro.cuda.runtime import ApiGen, CudaRuntime
from repro.cuda.types import cudaExtent, cudaPitchedPtr
from repro.container.linker import SharedLibrary
from repro.ipc import protocol
from repro.ipc.retry import RetryPolicy
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Span, Tracer, inject_context

__all__ = ["WrapperModule", "INTERCEPTED_SYMBOLS", "WRAPPER_RETRY_POLICY"]

_WRAPPER_RETRIES = REGISTRY.counter(
    "convgpu_wrapper_ipc_retries_total",
    "Wrapper-level IPC exchanges re-asked after a transient scheduler error",
)

#: Deterministic (jitter-free) backoff for the wrapper's IPC retry loop —
#: simulations replay identically; live mode layers the jittered transport
#: retry of :class:`repro.ipc.retry.ResilientClient` underneath this.
WRAPPER_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.05, multiplier=2.0, max_delay=1.0, jitter=0.0
)

#: Table II of the paper: the symbols libgpushare.so overrides.
INTERCEPTED_SYMBOLS = (
    "cudaMalloc",
    "cudaMallocManaged",
    "cudaMallocPitch",
    "cudaMalloc3D",
    "cudaFree",
    "cudaMemGetInfo",
    "cudaGetDeviceProperties",
    "__cudaUnregisterFatBinary",
)


class WrapperModule:
    """Per-process interposition state + the intercepted entry points."""

    def __init__(
        self,
        native: CudaRuntime,
        container_id: str,
        native_driver=None,
        retry_policy: RetryPolicy = WRAPPER_RETRY_POLICY,
        tracer: Tracer | None = None,
    ) -> None:
        self.native = native
        self.container_id = container_id
        self.pid = native.pid
        self.adjuster = SizeAdjuster()
        self.retry_policy = retry_policy
        #: Span recorder; when set, every intercepted API opens a span whose
        #: context rides the IPC messages it sends (one wrapper API = one
        #: trace, continued daemon-side by the scheduler service).
        self.tracer = tracer
        self._current_span: Span | None = None
        #: Transient IPC failures retried (observability / test oracle).
        self.ipc_retries = 0
        #: Cached device properties (the wrapper queries once, §III-C).
        self._cached_properties = None
        #: Driver-API hooks (§III-C: "can cover both CUDA Driver API and
        #: Runtime API"); None when the process has no driver handle.
        self.driver_hooks = None
        if native_driver is not None:
            from repro.core.wrapper.driver_hooks import DriverHooks

            self.driver_hooks = DriverHooks(native_driver, container_id)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _ipc(self, msg_type: str, **payload: Any) -> IpcCall:
        message = protocol.make_request(
            msg_type, container_id=self.container_id, pid=self.pid, **payload
        )
        # Stamp the active API span's context onto the wire so the daemon's
        # span joins the same trace.  CUDA calls on one process are serial
        # through this wrapper, so one active-span slot suffices.
        inject_context(message, self._current_span)
        return IpcCall(
            message=message,
            # Bookkeeping messages are one-way; only size checks and queries
            # block on the scheduler (see protocol.NOTIFICATION_TYPES).
            await_reply=msg_type not in protocol.NOTIFICATION_TYPES,
        )

    def _begin_span(self, name: str, **attrs: Any) -> Span | None:
        if self.tracer is None:
            return None
        span = self.tracer.start_span(name, **attrs)
        self._current_span = span
        return span

    def _end_span(self, span: Span | None, err: Any = None) -> None:
        if span is not None:
            status = "ok" if err in (None, cudaError.cudaSuccess) else "error"
            span.finish(status=status)
            self._current_span = None

    def _ipc_retry(self, msg_type: str, **payload: Any) -> ApiGen:
        """One IPC exchange with bounded retry on *transient* failures.

        The interpreter marks replies from a dead or wedged scheduler with
        ``transient: True`` (typed :class:`~repro.errors.IpcDisconnected` /
        :class:`~repro.errors.IpcTimeoutError` underneath); those are worth
        re-asking — the daemon may be restarting from its journal.  The
        backoff between attempts is yielded as :class:`HostCompute` so
        simulated time accounts for the wait exactly like any host-side
        work.  Protocol errors and rejections pass through untouched.
        """
        attempt = 0
        while True:
            reply = yield self._ipc(msg_type, **payload)
            transient = (
                isinstance(reply, dict)
                and reply.get("status") == "error"
                and reply.get("transient")
            )
            if not transient or attempt >= self.retry_policy.max_attempts - 1:
                return reply
            self.ipc_retries += 1
            _WRAPPER_RETRIES.inc()
            delay = self.retry_policy.delay(attempt)
            if delay > 0:
                yield HostCompute(delay)
            attempt += 1

    def _ensure_properties(self) -> ApiGen:
        """Fetch device properties once to learn pitch/managed granularity."""
        if self._cached_properties is None:
            err, props = yield from self.native.cudaGetDeviceProperties()
            if err is not cudaError.cudaSuccess:
                return err, None
            self._cached_properties = props
            self.adjuster.learn(
                pitch_granularity=props.pitchGranularity,
                managed_granularity=self.native.device.properties.managed_granularity,
            )
        return cudaError.cudaSuccess, self._cached_properties

    def _checked_alloc(self, adjusted_size: int, api: str, native_call) -> ApiGen:
        """The grant → allocate → commit/abort protocol around one native call."""
        span = self._begin_span(f"wrapper.{api}", size=adjusted_size)
        reply = yield from self._ipc_retry(
            protocol.MSG_ALLOC_REQUEST, size=adjusted_size, api=api
        )
        if reply.get("status") != "ok" or reply.get("decision") != "grant":
            # Rejected (over the container limit) — the program sees the
            # same error an exhausted device would produce.
            self._end_span(span, cudaError.cudaErrorMemoryAllocation)
            return cudaError.cudaErrorMemoryAllocation, None
        err, value = yield from native_call()
        if err is not cudaError.cudaSuccess:
            yield from self._ipc_retry(protocol.MSG_ALLOC_ABORT, size=adjusted_size)
            self._end_span(span, err)
            return err, None
        address = value[0] if isinstance(value, tuple) else (
            value.ptr if isinstance(value, cudaPitchedPtr) else value
        )
        yield from self._ipc_retry(
            protocol.MSG_ALLOC_COMMIT, address=address, size=adjusted_size
        )
        self._end_span(span)
        return cudaError.cudaSuccess, value

    # ------------------------------------------------------------------
    # intercepted allocation APIs
    # ------------------------------------------------------------------

    def cudaMalloc(self, size: int) -> ApiGen:  # noqa: N802 - CUDA name
        if size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        adjusted = self.adjuster.malloc(size)
        return (
            yield from self._checked_alloc(
                adjusted, "cudaMalloc", lambda: self.native.cudaMalloc(size)
            )
        )

    def cudaMallocManaged(self, size: int) -> ApiGen:  # noqa: N802
        if size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_properties()
        if err is not cudaError.cudaSuccess:
            return err, None
        adjusted = self.adjuster.malloc_managed(size)
        return (
            yield from self._checked_alloc(
                adjusted,
                "cudaMallocManaged",
                lambda: self.native.cudaMallocManaged(size),
            )
        )

    def cudaMallocPitch(self, width: int, height: int) -> ApiGen:  # noqa: N802
        if width <= 0 or height <= 0:
            return cudaError.cudaErrorInvalidValue, None
        # First call pays the cudaGetDeviceProperties round-trip — the ~2x
        # first-call bar in Fig. 4.
        err, _ = yield from self._ensure_properties()
        if err is not cudaError.cudaSuccess:
            return err, None
        adjusted, _pitch = self.adjuster.malloc_pitch(width, height)
        return (
            yield from self._checked_alloc(
                adjusted,
                "cudaMallocPitch",
                lambda: self.native.cudaMallocPitch(width, height),
            )
        )

    def cudaMalloc3D(self, extent: cudaExtent) -> ApiGen:  # noqa: N802
        if extent.width <= 0 or extent.height <= 0 or extent.depth <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_properties()
        if err is not cudaError.cudaSuccess:
            return err, None
        adjusted, _pitch = self.adjuster.malloc_3d(extent)
        return (
            yield from self._checked_alloc(
                adjusted,
                "cudaMalloc3D",
                lambda: self.native.cudaMalloc3D(extent),
            )
        )

    # ------------------------------------------------------------------
    # intercepted deallocation / query APIs
    # ------------------------------------------------------------------

    def cudaFree(self, dev_ptr: int) -> ApiGen:  # noqa: N802
        """Free natively, then tell the scheduler the address (§III-C)."""
        span = self._begin_span("wrapper.cudaFree", address=dev_ptr)
        err, value = yield from self.native.cudaFree(dev_ptr)
        if err is cudaError.cudaSuccess and dev_ptr != 0:
            yield from self._ipc_retry(protocol.MSG_ALLOC_RELEASE, address=dev_ptr)
        self._end_span(span, err)
        return err, value

    def cudaMemGetInfo(self) -> ApiGen:  # noqa: N802
        """Answer from scheduler bookkeeping — no device round-trip (§IV-B)."""
        span = self._begin_span("wrapper.cudaMemGetInfo")
        reply = yield from self._ipc_retry(protocol.MSG_MEM_GET_INFO)
        if reply.get("status") != "ok":
            # Scheduler unavailable: degrade to the native (device-wide) view.
            result = yield from self.native.cudaMemGetInfo()
            self._end_span(span, result[0])
            return result
        self._end_span(span)
        return cudaError.cudaSuccess, (reply["free"], reply["total"])

    def cudaGetDeviceProperties(self, ordinal: int = 0) -> ApiGen:  # noqa: N802
        """Forward, caching the result the adjuster needs."""
        if ordinal == self.native.device.ordinal and self._cached_properties is not None:
            return cudaError.cudaSuccess, self._cached_properties
        err, props = yield from self.native.cudaGetDeviceProperties(ordinal)
        if err is cudaError.cudaSuccess and ordinal == self.native.device.ordinal:
            self._cached_properties = props
            self.adjuster.learn(
                pitch_granularity=props.pitchGranularity,
                managed_granularity=self.native.device.properties.managed_granularity,
            )
        return err, props

    # ------------------------------------------------------------------
    # intercepted implicit API
    # ------------------------------------------------------------------

    def cudaUnregisterFatBinary(self, handle: FatBinaryHandle) -> ApiGen:  # noqa: N802
        """``__cudaUnregisterFatBinary``: forward, then report process exit."""
        span = self._begin_span("wrapper.__cudaUnregisterFatBinary")
        err, last = yield from self.native.cudaUnregisterFatBinary(handle)
        if err is cudaError.cudaSuccess and last:
            # The last chance to report: a lost process_exit would pin the
            # pid's allocations (and 66 MiB context charge) forever.
            yield from self._ipc_retry(protocol.MSG_PROCESS_EXIT)
        self._end_span(span, err)
        return err, last

    # ------------------------------------------------------------------

    def as_shared_library(self) -> SharedLibrary:
        """Package the interceptions as ``libgpushare.so`` for LD_PRELOAD."""
        exports = {
            "cudaMalloc": self.cudaMalloc,
            "cudaMallocManaged": self.cudaMallocManaged,
            "cudaMallocPitch": self.cudaMallocPitch,
            "cudaMalloc3D": self.cudaMalloc3D,
            "cudaFree": self.cudaFree,
            "cudaMemGetInfo": self.cudaMemGetInfo,
            "cudaGetDeviceProperties": self.cudaGetDeviceProperties,
            "__cudaUnregisterFatBinary": self.cudaUnregisterFatBinary,
        }
        assert set(exports) == set(INTERCEPTED_SYMBOLS)
        if self.driver_hooks is not None:
            exports.update(self.driver_hooks.exports())
        return SharedLibrary("libgpushare.so", exports)
