"""IPC substrate: the UNIX-socket + JSON plumbing of ConVGPU (§III-A).

Three interchangeable transports share one handler contract
(``handler(message, reply_handle) -> reply | DEFER``):

- :mod:`repro.ipc.unix_socket` — real ``AF_UNIX`` sockets (the paper's
  choice; used by the live experiments so Fig. 4 measures genuine kernel
  round-trips);
- :mod:`repro.ipc.tcp_socket` — loopback TCP (the rejected alternative,
  kept for the ablation benchmark);
- :mod:`repro.ipc.channel` — in-process dispatch for deterministic tests
  and the discrete-event simulation.

Both socket transports run on either of two server I/O backends: the
default shared selector loop (:mod:`repro.ipc.loop` — one I/O thread plus
a fixed worker pool multiplexes every listener and connection; pass
``loop=IoLoop(...)`` to the server) or thread-per-connection (no ``loop``;
the Fig. 4 ablation baseline).  Wire behaviour is identical across
backends (DESIGN.md §10).

Client-side crash resilience (reconnect + exponential backoff with jitter)
lives in :mod:`repro.ipc.retry`; transports raise the typed
:class:`~repro.errors.IpcTimeoutError` / :class:`~repro.errors.IpcDisconnected`
errors that the retry loop keys on.
"""

from repro.ipc.channel import ChannelReplyHandle, InProcessChannel, PendingReply
from repro.ipc.loop import DEFAULT_IO_WORKERS, IoLoop
from repro.ipc.protocol import (
    MAX_FRAME_BYTES,
    MSG_ALLOC_ABORT,
    MSG_ALLOC_COMMIT,
    MSG_ALLOC_RELEASE,
    MSG_ALLOC_REQUEST,
    MSG_CONTAINER_EXIT,
    MSG_HEARTBEAT,
    MSG_MEM_GET_INFO,
    MSG_PROCESS_EXIT,
    MSG_REGISTER_CONTAINER,
    decode,
    encode,
    make_error_reply,
    make_reply,
    make_request,
    validate_request,
)
from repro.ipc.retry import (
    DEFAULT_RETRY_POLICY,
    ResilientClient,
    RetryPolicy,
    call_with_retry,
)
from repro.ipc.tcp_socket import TcpSocketClient, TcpSocketServer
from repro.ipc.unix_socket import DEFER, ReplyHandle, UnixSocketClient, UnixSocketServer

__all__ = [
    "MSG_REGISTER_CONTAINER",
    "MSG_CONTAINER_EXIT",
    "MSG_ALLOC_REQUEST",
    "MSG_ALLOC_COMMIT",
    "MSG_ALLOC_ABORT",
    "MSG_ALLOC_RELEASE",
    "MSG_MEM_GET_INFO",
    "MSG_PROCESS_EXIT",
    "MSG_HEARTBEAT",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "ResilientClient",
    "DEFAULT_RETRY_POLICY",
    "call_with_retry",
    "make_request",
    "make_reply",
    "make_error_reply",
    "validate_request",
    "encode",
    "decode",
    "DEFER",
    "IoLoop",
    "DEFAULT_IO_WORKERS",
    "ReplyHandle",
    "UnixSocketServer",
    "UnixSocketClient",
    "TcpSocketServer",
    "TcpSocketClient",
    "InProcessChannel",
    "PendingReply",
    "ChannelReplyHandle",
]
