"""Bounded retry with exponential backoff — the client side of crash safety.

The scheduler daemon is a single point of failure for every wrapper: a
blocked ``recv`` with no daemon behind it would hang a container's CUDA
call forever.  This module gives clients a disciplined recovery loop:

- :class:`RetryPolicy` — attempt budget plus exponential backoff with full
  jitter (the AWS-style ``random(0, min(cap, base * 2**attempt))`` schedule
  that avoids thundering-herd reconnects after a daemon restart);
- :class:`ResilientClient` — wraps a client *factory* (not a client): on
  :class:`~repro.errors.IpcDisconnected` it drops the broken connection,
  redials with backoff, and re-issues the interrupted request.

Re-issuing is safe for every message in the protocol: queries are
idempotent, notifications are applied idempotently or rejected in-band by
the scheduler, and a re-sent ``alloc_request`` is *adopted* by the
scheduler's orphaned pending entry after a crash instead of double-queued
(see ``GpuMemoryScheduler.request_allocation``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import IpcDisconnected, IpcTimeoutError, TransportError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer, extract_context, inject_context

__all__ = ["RetryPolicy", "ResilientClient", "DEFAULT_RETRY_POLICY"]

_RETRIES = REGISTRY.counter(
    "convgpu_ipc_retries_total",
    "IPC attempts retried after a disconnect/timeout",
    labelnames=("error",),
)
_REDIALS = REGISTRY.counter(
    "convgpu_ipc_redials_total",
    "Fresh connections dialed by resilient clients (first dial included)",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Args:
        max_attempts: total tries (first attempt included); >= 1.
        base_delay: backoff unit in seconds for attempt 0.
        multiplier: exponential growth factor per attempt.
        max_delay: cap on any single sleep.
        jitter: 0.0 = deterministic schedule, 1.0 = full jitter
            (each sleep drawn uniformly from [delay*(1-jitter), delay]).
        give_up_after: optional wall-clock budget in seconds across *all*
            attempts — once spent, the last error surfaces immediately
            instead of sleeping through the rest of the schedule.  With
            hundreds of containers redialing a torn-down socket (a reaped
            container, a moved daemon) this bounds how long each client can
            stay wedged; ``None`` (default) keeps the pure attempt budget.
    """

    max_attempts: int = 8
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 1.0
    give_up_after: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.give_up_after is not None and self.give_up_after <= 0:
            raise ValueError(f"give_up_after must be positive: {self.give_up_after}")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter == 0.0 or ceiling == 0.0:
            return ceiling
        draw = rng.random() if rng is not None else random.random()
        return ceiling * (1.0 - self.jitter * draw)

    def delays(self, rng: random.Random | None = None) -> list[float]:
        """The full schedule: one sleep between each pair of attempts."""
        return [self.delay(i, rng) for i in range(self.max_attempts - 1)]


#: Conservative default used by the wrapper and the live runner.
DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retry(
    operation: Callable[[], Any],
    policy: RetryPolicy,
    *,
    retry_on: tuple[type[BaseException], ...] = (IpcDisconnected, IpcTimeoutError),
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Run ``operation`` under the policy; re-raise the last error when spent.

    Attempts stop when either budget runs out: the attempt count, or —
    when the policy sets ``give_up_after`` — the wall clock (measured by
    ``clock``, injectable so tests can drive it deterministically).
    """
    deadline = (
        clock() + policy.give_up_after if policy.give_up_after is not None else None
    )
    last_exc: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return operation()
        except retry_on as exc:
            last_exc = exc
            if attempt == policy.max_attempts - 1:
                break
            delay = policy.delay(attempt, rng)
            if deadline is not None and clock() + delay > deadline:
                break  # the budget would be spent sleeping: surface now
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(delay)
    assert last_exc is not None
    raise last_exc


__all__.append("call_with_retry")


@dataclass
class ResilientClient:
    """Reconnecting request/response client over any raw transport client.

    ``factory`` dials one connection and returns an object with ``call``,
    ``notify`` and ``close`` (both socket clients qualify).  Transparent
    reconnect-and-retry turns a daemon restart into added latency instead of
    a wedged container.

    ``sleep``/``rng`` are injectable so tests can run the full backoff
    schedule in zero wall-clock time.

    With a ``tracer``, each logical ``call``/``notify`` records exactly one
    span regardless of how many attempts it took — the trace context is
    injected into the payload once, before the first attempt, so a re-issued
    request crosses the wire with the *original* identifiers and the daemon
    never sees the redial as a different operation.
    """

    factory: Callable[[], Any]
    policy: RetryPolicy = DEFAULT_RETRY_POLICY
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    rng: random.Random | None = None
    tracer: Tracer | None = None
    #: (attempt, exception) pairs observed; observability + test oracle.
    retries: list[tuple[int, str]] = field(default_factory=list)
    _client: Any = field(default=None, init=False, repr=False)

    # -- connection management --------------------------------------------

    @property
    def codec(self) -> str | None:
        """Wire codec of the *current* connection (``None`` when dropped).

        Codec choice is a per-connection property, never cached across a
        redial: negotiation happens inside the factory's client constructor,
        so every reconnect re-runs the hello handshake from scratch and may
        land on a different codec than the previous connection (e.g. after
        the daemon was replaced by a JSON-only build).  Regression-tested in
        ``tests/ipc/test_handshake.py``.
        """
        if self._client is None:
            return None
        return getattr(self._client, "codec", None)

    def _connected(self) -> Any:
        if self._client is None:
            self._client = self.factory()
            _REDIALS.inc()
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            # reprolint: ignore[swallowed-exception] -- the client is being
            # dropped because its transport already failed; a second error
            # from close() carries no new information.
            except Exception:
                pass
            self._client = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- resilient operations ---------------------------------------------

    def _issue(self, method: str, msg_type: str, payload: dict[str, Any]) -> Any:
        span = None
        if self.tracer is not None:
            # One span per logical operation: opened before the first
            # attempt, injected once (inject_context skips payloads that
            # already carry a trace_id, e.g. from the wrapper's own span),
            # and finished after retries resolve — a redial extends this
            # span rather than forking a new one.
            span = self.tracer.start_span(
                f"ipc.{method}:{msg_type}", parent=extract_context(payload)
            )
            inject_context(payload, span)

        def operation() -> Any:
            try:
                client = self._connected()
                return getattr(client, method)(msg_type, **payload)
            except (IpcDisconnected, IpcTimeoutError):
                # The connection is suspect either way: next attempt redials.
                self._drop()
                raise

        def record(attempt: int, exc: BaseException) -> None:
            self.retries.append((attempt, type(exc).__name__))
            _RETRIES.labels(error=type(exc).__name__).inc()
            if span is not None:
                span.set_attr("retries", attempt + 1)

        try:
            result = call_with_retry(
                operation,
                self.policy,
                sleep=self.sleep,
                rng=self.rng,
                on_retry=record,
                clock=self.clock,
            )
        except (IpcDisconnected, IpcTimeoutError):
            if span is not None:
                span.finish(status="error")
            raise
        except TransportError:
            self._drop()
            if span is not None:
                span.finish(status="error")
            raise
        if span is not None:
            span.finish()
        return result

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Blocking request/response with reconnect-and-reissue."""
        return self._issue("call", msg_type, payload)

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Fire-and-forget notification, retried until the send succeeds."""
        self._issue("notify", msg_type, payload)
