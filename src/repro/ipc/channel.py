"""In-process transport: same handler contract, no sockets, no threads.

Used by unit tests (exercise scheduler protocol handlers deterministically)
and by the DES integration, where "blocking on a reply" must become a
simulation event rather than a thread block.  Deferred replies are exposed
to the caller instead of hidden behind ``recv``: :meth:`InProcessChannel.call`
returns a :class:`PendingReply` that either already holds the reply or
completes later when the handler's :class:`ChannelReplyHandle` is sent.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TransportError
from repro.ipc import protocol
from repro.ipc.unix_socket import DEFER

__all__ = ["PendingReply", "ChannelReplyHandle", "InProcessChannel"]


class PendingReply:
    """A reply slot; filled immediately or on later completion."""

    def __init__(self) -> None:
        self._reply: dict[str, Any] | None = None
        #: Callbacks fired (once) when the reply lands.
        self._callbacks: list[Callable[[dict[str, Any]], None]] = []

    @property
    def ready(self) -> bool:
        return self._reply is not None

    @property
    def reply(self) -> dict[str, Any]:
        if self._reply is None:
            raise TransportError("reply not available yet (container paused)")
        return self._reply

    def on_ready(self, callback: Callable[[dict[str, Any]], None]) -> None:
        """Register a completion callback (fires immediately if ready)."""
        if self._reply is not None:
            callback(self._reply)
        else:
            self._callbacks.append(callback)

    def _complete(self, reply: dict[str, Any]) -> None:
        if self._reply is not None:
            raise TransportError("reply already delivered")
        self._reply = reply
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(reply)


class ChannelReplyHandle:
    """Handler-side capability mirroring ``unix_socket.ReplyHandle``."""

    def __init__(self, pending: PendingReply, seq: int) -> None:
        self._pending = pending
        self.seq = seq

    def send(self, reply: dict[str, Any]) -> None:
        self._pending._complete(dict(reply))


class InProcessChannel:
    """Synchronous dispatch straight into a protocol handler.

    ``codec`` selects which wire serialization each request round-trips
    through before dispatch (``"json"`` default, or ``"binary"``), so
    deterministic in-process tests exercise the exact codec constraints of
    the socket path — no negotiation here, the caller *is* both peers.
    """

    def __init__(self, handler, *, codec: str = protocol.CODEC_JSON) -> None:
        if codec not in protocol.SUPPORTED_CODECS:
            raise TransportError(f"unknown codec {codec!r}")
        self.handler = handler
        self.codec = codec
        self._seq = 0

    def call(self, msg_type: str, **payload: Any) -> PendingReply:
        """Dispatch one request; returns a (possibly already-ready) reply slot."""
        self._seq += 1
        request = protocol.make_request(msg_type, seq=self._seq, **payload)
        # Round-trip through encode/decode so the in-process path exercises
        # the same serialization constraints as the socket path.
        request = protocol.decode_any(protocol.encode_as(request, self.codec))
        protocol.validate_request(request)
        pending = PendingReply()
        handle = ChannelReplyHandle(pending, request["seq"])
        result = self.handler(request, handle)
        if result is DEFER:
            return pending
        if result is None:
            if request["type"] in protocol.NOTIFICATION_TYPES:
                # Notifications get a synthetic local ack so callers can
                # treat every dispatch uniformly.
                handle.send(protocol.make_reply(request))
                return pending
            raise TransportError(f"handler returned no reply for {msg_type}")
        handle.send(result)
        return pending

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Dispatch a fire-and-forget notification."""
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        self.call(msg_type, **payload)

    def call_sync(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Like :meth:`call` but requires an immediate reply."""
        pending = self.call(msg_type, **payload)
        return pending.reply
