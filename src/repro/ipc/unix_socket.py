"""Real AF_UNIX transport for the ConVGPU protocol.

The paper chose UNIX sockets over shared memory, plain files, and TCP/IP
(§III-A) — Docker blocks host↔container IPC, a bind-mounted socket directory
crosses that boundary safely, and UNIX sockets beat loopback TCP on latency.
We use genuine ``AF_UNIX`` sockets here so that the Fig. 4 reproduction
measures *actual* kernel round-trip costs, not a constant we made up; the
ablation benchmark compares this against loopback TCP to reproduce the
paper's design argument.

Frames carry the protocol in either codec — newline-delimited JSON or the
versioned binary framing — negotiated per connection with the ``hello``
handshake (see :mod:`repro.ipc.protocol` and ``docs/PROTOCOL.md``); JSON is
the floor both sides can always fall back to.

Pause semantics: the server hands each request to a handler which may reply
immediately or return :data:`DEFER`; a deferred reply is completed later via
the :class:`ReplyHandle` the handler received — meanwhile the client's
``call()`` simply stays blocked in ``recv``, which is precisely how ConVGPU
suspends a container ("the response from the scheduler will be suspended
until the required size of memory is available", §III-D).

Two interchangeable I/O backends drive each server:

- **threads** (``loop=None``): one accept thread plus one reader thread per
  connection — the original model, kept for the Fig. 4 ablation;
- **shared loop** (``loop=IoLoop``): the server registers its listener with
  a :class:`repro.ipc.loop.IoLoop` and contributes **zero** threads of its
  own; one selector thread and a bounded worker pool serve every server on
  the loop, which is how the daemon scales to hundreds of containers.

Wire behaviour is identical on both backends (see ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import errno
import os
import socket
import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import (
    IpcDisconnected,
    IpcTimeoutError,
    ProtocolError,
    TransportError,
)
from repro.ipc import protocol
from repro.ipc.loop import IoLoop
from repro.obs import stages as _stages
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER

__all__ = ["DEFER", "ReplyHandle", "UnixSocketServer", "UnixSocketClient",
           "map_os_error"]

_perf_counter = time.perf_counter

# Module alias for the obs-overhead benchmark's stub idiom.
_REC = RECORDER
_EV_BATCH = RECORDER.declare(
    "ipc.batch", s="transport", a="frames", b="out_bytes", x="seconds"
)
_EV_HELLO = RECORDER.declare("ipc.hello", s="codec")

# Shared by both socket transports (tcp_socket.py imports these handles):
# the transport label tells the two apart on one scrape.
FRAMES_RECEIVED = REGISTRY.counter(
    "convgpu_frames_received_total",
    "Protocol frames dispatched by socket servers",
    labelnames=("transport",),
)
PROTOCOL_ERRORS = REGISTRY.counter(
    "convgpu_protocol_errors_total",
    "Frames rejected by decode/validation at socket servers",
    labelnames=("transport",),
)
OPEN_CONNECTIONS = REGISTRY.gauge(
    "convgpu_open_connections",
    "Server-side protocol connections currently open",
    labelnames=("transport",),
)
BATCH_DEPTH = REGISTRY.histogram(
    "convgpu_ipc_batch_depth",
    "Frames dispatched per batch (one readable event, merged batches)",
    labelnames=("transport",),
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
COALESCED_BYTES = REGISTRY.histogram(
    "convgpu_ipc_coalesced_reply_bytes",
    "Bytes per coalesced reply sendall (one per dispatched batch)",
    labelnames=("transport",),
    buckets=(64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536),
)


def map_os_error(exc: OSError, context: str) -> TransportError:
    """Translate a raw socket error into the typed IPC error taxonomy.

    ``socket.timeout`` (= ``TimeoutError``) becomes :class:`IpcTimeoutError`;
    peer-gone conditions (refused, reset, broken pipe, unreachable path)
    become :class:`IpcDisconnected`; anything else stays a plain
    :class:`TransportError`.  Shared by both socket transports so callers
    never see a raw ``socket.timeout`` again.
    """
    if isinstance(exc, socket.timeout):
        return IpcTimeoutError(f"{context}: timed out ({exc})")
    if isinstance(exc, (ConnectionError, BrokenPipeError, FileNotFoundError)) or (
        exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ECONNREFUSED,
                      errno.ENOENT, errno.EBADF, errno.ESHUTDOWN, errno.ENOTCONN)
    ):
        return IpcDisconnected(f"{context}: peer gone ({exc})")
    return TransportError(f"{context}: {exc}")


class _Defer:
    """Sentinel a handler returns to withhold the reply (container pause)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<DEFER>"


DEFER = _Defer()

#: handler(message, reply_handle) -> reply dict | DEFER
Handler = Callable[[dict[str, Any], "ReplyHandle"], Any]


class _ConnCtx:
    """Per-connection negotiated state, shared by dispatch and handles.

    Mutated only by the single worker/reader that processes the
    connection's frames in order, so no lock is needed; reply handles
    capture the value at decode time.  ``sample_n`` is the stage-sampling
    batch counter (:func:`repro.obs.stages.maybe_start`) — a plain slot
    here because per-connection state is cheaper to touch than a
    thread-local on the per-batch hot path.
    """

    __slots__ = ("codec", "sample_n")

    def __init__(self) -> None:
        self.codec = protocol.CODEC_JSON
        self.sample_n = 0


class ReplyHandle:
    """Capability to answer one request, possibly after the handler returned.

    Backend-agnostic by construction: the handle owns the connection socket
    and its per-connection write lock, so a deferred (paused) reply can be
    completed from *any* thread — a reader thread, a shared-loop worker, or
    the scheduler thread that resumes a paused container — and the bytes on
    the wire are identical on both I/O backends.  The reply is encoded with
    the codec of the frame that carried the request, captured at decode
    time — on a negotiated connection that is the negotiated codec.
    """

    def __init__(
        self,
        conn: socket.socket,
        lock: threading.Lock,
        seq: int,
        codec: str = protocol.CODEC_JSON,
    ) -> None:
        self._conn = conn
        self._lock = lock
        self.seq = seq
        self.codec = codec
        self._sent = False

    def send(self, reply: Mapping[str, Any]) -> None:
        """Write the reply frame; safe from any thread, at most once."""
        with self._lock:
            if self._sent:
                raise TransportError(f"reply for seq={self.seq} already sent")
            self._sent = True
            try:
                self._conn.sendall(protocol.encode_as(reply, self.codec))
            except OSError as exc:
                # Client vanished (container killed while paused): the
                # scheduler's exit path cleans its state; nothing to do here.
                raise TransportError(f"send failed: {exc}") from exc

    def render(self, reply: Mapping[str, Any]) -> bytes:
        """Encode the reply and consume the handle *without* writing.

        The batch dispatcher uses this to coalesce every immediate reply of
        one frame batch into a single ``sendall`` — flushed only after the
        batch's group commit, so no decision leaves before it is durable.
        At-most-once is preserved: a handle rendered here raises on a later
        :meth:`send`, exactly as if it had been sent.
        """
        with self._lock:
            if self._sent:
                raise TransportError(f"reply for seq={self.seq} already sent")
            self._sent = True
        return protocol.encode_as(reply, self.codec)


class _BaseSocketServer:
    """Shared server machinery for both socket transports.

    Subclasses provide :meth:`_make_listener` (and optionally
    :meth:`_configure_conn` / :meth:`_after_stop`); everything else —
    accept, framing, dispatch, connection lifecycle on either I/O backend —
    lives here so the two transports cannot drift apart.

    Connection-lifecycle invariants (regression-tested under churn):

    - every accepted connection appears in ``_conns`` exactly until it is
      finished, whichever side hung up first — ``stop()`` never re-closes a
      dead socket and a long-lived server never accumulates entries;
    - in threads mode, finished reader threads are pruned immediately (the
      seed's ``_threads`` list grew one entry per connection, forever);
    - all ``_conns``/thread bookkeeping is done under ``_conns_lock``
      (``stop()`` iterating while the accept path appends was a data race).
    """

    transport: str = "unknown"

    def __init__(
        self,
        handler: Handler,
        *,
        loop: IoLoop | None = None,
        codec: str = "auto",
        identity: Mapping[str, Any] | None = None,
    ) -> None:
        if codec not in ("auto", protocol.CODEC_BINARY, protocol.CODEC_JSON):
            raise TransportError(f"unknown codec {codec!r}")
        self.handler = handler
        self.codec = codec
        #: Extra fields merged into every hello reply (shard identity in the
        #: sharded control plane; empty keeps the handshake byte-identical
        #: to pre-shard builds).  The hello reply is always JSON, so any
        #: JSON-able mapping works without a schema change.
        self._identity: dict[str, Any] = dict(identity or {})
        #: Codecs this server will agree to in the hello handshake.  JSON is
        #: always offered (the protocol floor); ``codec="json"`` yields a
        #: JSON-only server, the "old peer" of the downgrade rule.
        self._supported = (
            (protocol.CODEC_JSON,)
            if codec == protocol.CODEC_JSON
            else protocol.SUPPORTED_CODECS
        )
        self._loop = loop
        # Label resolution takes the metric family's lock; resolve the
        # per-frame counter's child once instead of on every frame.
        self._frames_received = FRAMES_RECEIVED.labels(transport=self.transport)
        self._batch_depth = BATCH_DEPTH.labels(transport=self.transport)
        self._coalesced_bytes = COALESCED_BYTES.labels(transport=self.transport)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()

    # -- transport hooks -----------------------------------------------------

    def _make_listener(self) -> socket.socket:
        raise NotImplementedError

    def _configure_conn(self, conn: socket.socket) -> None:
        """Per-connection socket options (TCP sets NODELAY here)."""

    def _after_stop(self) -> None:
        """Post-shutdown cleanup (UNIX unlinks the socket file here)."""

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        if self._listener is not None:
            raise TransportError("server already started")
        self._stopping.clear()
        listener = self._make_listener()
        self._listener = listener
        if self._loop is not None:
            self._loop.add_listener(listener, self._loop_accept)
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                args=(listener,),
                name=f"convgpu-accept:{self.transport}",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close all connections, join worker threads."""
        self._stopping.set()
        listener, self._listener = self._listener, None
        if self._loop is not None:
            if listener is not None:
                self._loop.remove_listener(listener)
            with self._conns_lock:
                conns = list(self._conns)
            for conn in conns:
                self._loop.close_connection(conn)
            # The loop's workers complete the closes (after draining any
            # frames already queued for those connections); wait briefly so
            # stop() is observably complete for well-behaved peers.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                with self._conns_lock:
                    if not self._conns:
                        break
                time.sleep(0.002)
        else:
            if listener is not None:
                try:
                    # shutdown() wakes a thread blocked in accept(); close()
                    # alone can leave it sleeping until the join timeout.
                    listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    listener.close()
                except OSError:
                    pass
            with self._conns_lock:
                conns, self._conns = self._conns, []
                threads = list(self._conn_threads)
            for conn in conns:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()
                OPEN_CONNECTIONS.labels(transport=self.transport).dec()
            accept_thread, self._accept_thread = self._accept_thread, None
            if accept_thread is not None:
                accept_thread.join(timeout=2.0)
            for thread in threads:
                thread.join(timeout=2.0)
        self._after_stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- shared-loop backend ------------------------------------------------

    def _loop_accept(self, conn: socket.socket) -> None:
        """Accept callback run on the loop thread: register, don't read."""
        self._configure_conn(conn)
        write_lock = threading.Lock()
        ctx = _ConnCtx()
        with self._conns_lock:
            if self._stopping.is_set():
                conn.close()
                return
            self._conns.append(conn)
        OPEN_CONNECTIONS.labels(transport=self.transport).inc()
        assert self._loop is not None
        self._loop.add_connection(
            conn,
            on_batch=lambda frames: self._dispatch_batch(
                conn, write_lock, ctx, frames
            ),
            on_close=lambda: self._forget(conn),
            on_overflow=lambda: self._send_oversize_reply(conn, write_lock, ctx),
            on_frame_error=lambda message: self._send_frame_error(
                conn, write_lock, ctx, message
            ),
            split=protocol.split_frames,
            max_buffer=protocol.MAX_FRAME_BYTES,
        )

    # -- threads backend ----------------------------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed
            self._configure_conn(conn)
            reader = threading.Thread(
                target=self._serve_thread,
                args=(conn,),
                name=f"convgpu-conn:{self.transport}",
                daemon=True,
            )
            with self._conns_lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._conns.append(conn)
                self._conn_threads.add(reader)
            OPEN_CONNECTIONS.labels(transport=self.transport).inc()
            reader.start()

    def _serve_thread(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            # Whichever way the connection ended (peer EOF, oversized frame,
            # socket error), the entry leaves _conns and this thread leaves
            # _conn_threads *now* — not at stop() — so a daemon under
            # connection churn stays bounded.
            self._forget(conn)
            with self._conns_lock:
                self._conn_threads.discard(threading.current_thread())

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        ctx = _ConnCtx()
        buffer = b""
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return  # client closed
            buffer += chunk
            # The blocking recv above includes idle wait-for-client time, so
            # unlike the loop backend only the frame-split stage is timed.
            timed = _stages.io_sample()
            split_began = _perf_counter() if timed else 0.0
            try:
                frames, buffer = protocol.split_frames(buffer)
            except ProtocolError as exc:
                # Unrecoverable framing (bad magic/version/length): report
                # in-band and hang up, same as the loop backend.
                self._send_frame_error(conn, write_lock, ctx, str(exc))
                return
            if timed:
                _stages.observe_stage(
                    _stages.S_FRAME, _perf_counter() - split_began
                )
            if frames:
                self._dispatch_batch(conn, write_lock, ctx, frames)
            if len(buffer) > protocol.MAX_FRAME_BYTES:
                # A frame that large can never be valid; drop the connection
                # instead of buffering a hostile/corrupt stream without bound.
                self._send_oversize_reply(conn, write_lock, ctx)
                return

    # -- shared internals ----------------------------------------------------

    def _forget(self, conn: socket.socket) -> None:
        """Close one connection and drop its bookkeeping, exactly once."""
        with self._conns_lock:
            try:
                self._conns.remove(conn)
            except ValueError:
                return  # stop() (or the other backend's path) already did
        OPEN_CONNECTIONS.labels(transport=self.transport).dec()
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _send_frame_error(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        ctx: _ConnCtx,
        message: str,
    ) -> None:
        """In-band error for an unrecoverable framing violation.

        The stream is undecodable at this point, so there is no frame codec
        to mirror — the error goes out as newline-JSON, the protocol floor
        every peer (and every debugging probe) can parse.
        """
        PROTOCOL_ERRORS.labels(transport=self.transport).inc()
        reply = protocol.make_error_reply({"type": "unknown", "seq": 0}, message)
        try:
            with write_lock:
                conn.sendall(protocol.encode(reply))
        except OSError:
            pass

    def _send_oversize_reply(
        self, conn: socket.socket, write_lock: threading.Lock, ctx: _ConnCtx
    ) -> None:
        reply = protocol.make_error_reply(
            {"type": "unknown", "seq": 0},
            f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
        )
        try:
            with write_lock:
                conn.sendall(protocol.encode(reply))
        except OSError:
            pass

    def _dispatch_batch(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        ctx: _ConnCtx,
        frames: list[bytes],
    ) -> None:
        """Decode and dispatch every frame of one readable event as a unit.

        Immediate replies are encoded into ``out`` (consuming their handles)
        and flushed with one ``sendall`` *after* the handler's batch-commit
        hook — so a single group-commit ``fsync`` makes every decision in
        the batch durable before any reply reaches a client.  Deferred
        (paused) replies keep their handles and are sent whenever the
        scheduler resumes them; resumes triggered *by this batch* happen
        inside ``batch_commit``, after that same fsync.
        """
        out: list[bytes] = []
        began = _perf_counter()
        # One sampling decision per batch: every SAMPLE_EVERY-th batch arms
        # a StageClock for its first frame AND times the batch-level stage
        # shares (fsync/send), so the sampled request and its amortized
        # durability/wire costs land on the same observation — and the
        # unsampled stream pays a single counter bump per batch.
        clock = _stages.maybe_start(ctx)
        timed = clock is not None
        self._batch_depth.observe(len(frames))
        begin = getattr(self.handler, "batch_begin", None)
        commit = getattr(self.handler, "batch_commit", None)
        if begin is not None:
            begin()
        try:
            for frame in frames:
                self._dispatch_one(conn, write_lock, ctx, frame, out, clock)
                clock = None
        finally:
            if commit is not None:
                if timed:
                    commit_began = _perf_counter()
                    commit()
                    # One group-commit fsync covered the whole batch; each
                    # request's durability share is the amortized cost.
                    _stages.observe_stage(
                        _stages.S_FSYNC,
                        (_perf_counter() - commit_began) / max(1, len(frames)),
                    )
                else:
                    commit()
        out_bytes = 0
        if out:
            payload = b"".join(out)
            out_bytes = len(payload)
            self._coalesced_bytes.observe(out_bytes)
            try:
                if timed:
                    send_began = _perf_counter()
                    with write_lock:
                        conn.sendall(payload)
                    _stages.observe_stage(
                        _stages.S_SEND, _perf_counter() - send_began
                    )
                else:
                    with write_lock:
                        conn.sendall(payload)
            except OSError:
                pass
        elapsed = _perf_counter() - began
        if elapsed >= _stages.SLOW_SECONDS:
            # Slow-outlier catch at batch granularity: armed samples name
            # exact traces, while this check guarantees a stalled batch is
            # never missed even when none of its frames were sampled.  The
            # client-visible latency of every reply in the batch includes
            # the whole batch's dispatch time, so the batch clock *is* the
            # right slowness measure for the unsampled stream.
            _stages.note_slow(
                trace="",
                msg_type=f"batch[{len(frames)}]",
                container="",
                total=elapsed,
            )
        # Real batches (pipelined clients) always leave a flight event; a
        # depth-1 stream records only its sampled batches — the loop's
        # per-chunk io.read events already cover every frame, and the
        # blocking wire is exactly where a per-message record would eat
        # the always-on budget.
        if timed or len(frames) > 1:
            _REC.record(
                _EV_BATCH,
                s=self.transport,
                a=len(frames),
                b=out_bytes,
                x=elapsed,
            )

    def _dispatch_one(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        ctx: _ConnCtx,
        frame: bytes,
        out: list[bytes],
        clock: "_stages.StageClock | None" = None,
    ) -> None:
        self._frames_received.inc()
        # Stage attribution: the batch dispatcher arms a StageClock for the
        # first frame of every SAMPLE_EVERY-th batch (decode → dispatch →
        # lock/transition/fsync via stages.current() in the scheduler
        # runtime → encode); unarmed frames pay nothing here — slow-outlier
        # detection rides the batch clock in _dispatch_batch.
        # Replies are rendered in the codec the *frame* arrived in, not the
        # connection's negotiated codec: a raw newline-JSON probe on a
        # negotiated-binary connection (debug tooling, a client that never
        # upgraded) still gets an answer it can parse.
        frame_codec = (
            protocol.CODEC_BINARY
            if frame[:4] == protocol.WIRE_MAGIC
            else protocol.CODEC_JSON
        )
        try:
            if frame_codec == protocol.CODEC_BINARY:
                # Binary decode enforces the field tables by construction
                # (types, ranges, lengths), so the JSON-side validate pass
                # would be redundant on the hot path.
                message = protocol.decode_binary(frame)
                if message["type"] not in protocol.REQUEST_FIELDS:
                    raise ProtocolError(
                        f"unexpected message type {message['type']!r}"
                    )
            else:
                message = protocol.decode(frame)
                protocol.validate_request(message)
        except Exception as exc:  # protocol errors go back in-band
            PROTOCOL_ERRORS.labels(transport=self.transport).inc()
            reply = protocol.make_error_reply({"type": "unknown", "seq": 0}, str(exc))
            out.append(protocol.encode_as(reply, frame_codec))
            return
        if clock is not None:
            clock.mark(_stages.S_DECODE)
        if message["type"] == protocol.MSG_HELLO:
            # Codec negotiation is a transport concern: answer here (always
            # in JSON, both directions) and switch the connection before the
            # batch's remaining frames — a pipelining client may follow its
            # hello with binary frames optimistically.
            chosen = protocol.negotiate_codec(message["codecs"], self._supported)
            out.append(
                protocol.encode(
                    protocol.make_reply(message, codec=chosen, **self._identity)
                )
            )
            ctx.codec = chosen
            _REC.record(_EV_HELLO, s=chosen)
            return
        handle = ReplyHandle(conn, write_lock, message.get("seq", 0), frame_codec)
        if clock is not None:
            _stages.set_current(clock)
            try:
                result = self.handler(message, handle)
            except Exception as exc:
                result = protocol.make_error_reply(message, f"internal error: {exc}")
            finally:
                _stages.set_current(None)
            clock.mark_dispatch()
        else:
            try:
                result = self.handler(message, handle)
            except Exception as exc:  # handler bug: report, don't kill the conn
                result = protocol.make_error_reply(message, f"internal error: {exc}")
        rendered = False
        if (
            message["type"] not in protocol.NOTIFICATION_TYPES
            and result is not DEFER
            and result is not None
        ):
            # Notifications get no reply (sending one would desynchronize the
            # client's seq correlation) and DEFER means the scheduler will
            # complete the handle later (pause).
            try:
                out.append(handle.render(result))
                rendered = True
            except (TransportError, ProtocolError):
                # Already sent by the handler itself, or unserializable —
                # either way the rest of the batch must still dispatch.
                pass
        if clock is not None:
            if rendered:
                clock.mark(_stages.S_ENCODE)
            _stages.finish(
                clock,
                trace=message.get("trace_id", ""),
                msg_type=message["type"],
                container=message.get("container_id", ""),
            )


class UnixSocketServer(_BaseSocketServer):
    """UNIX-socket server speaking the ConVGPU protocol.

    One instance per socket path; the GPU memory scheduler daemon creates
    one per container plus one control socket (mirroring §III-D: "It
    creates UNIX socket for each container").  Pass ``loop=`` to serve this
    socket from a shared :class:`~repro.ipc.loop.IoLoop` instead of
    dedicated threads.
    """

    transport = "unix"

    def __init__(
        self,
        path: str,
        handler: Handler,
        *,
        loop: IoLoop | None = None,
        codec: str = "auto",
        identity: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(handler, loop=loop, codec=codec, identity=identity)
        self.path = path

    def _make_listener(self) -> socket.socket:
        if os.path.exists(self.path):
            os.unlink(self.path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.path)
        listener.listen(128)
        return listener

    def _after_stop(self) -> None:
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass


class _BaseSocketClient:
    """Shared blocking request/response client machinery (both transports).

    Subclass ``__init__`` connects its socket, then calls
    :meth:`_init_stream` — which runs the hello handshake unless the caller
    pinned ``codec="json"`` (the legacy wire, also the trace-friendly debug
    mode).  ``codec="auto"`` and ``codec="binary"`` both offer every
    supported codec and accept whatever the server picks; a peer that
    rejects or mis-answers the hello leaves the connection on JSON, never
    broken.  Because negotiation happens at connect time, every redial
    (e.g. :class:`repro.ipc.retry.ResilientClient` re-running its factory)
    renegotiates from scratch instead of assuming the old connection's
    codec.
    """

    def __init__(self) -> None:
        # Subclasses set _sock/_label before calling _init_stream().
        self._sock: socket.socket
        self._label = ""
        self._buffer = b""
        self._frames: list[bytes] = []
        self._seq = 0
        self._lock = threading.Lock()
        self.codec = protocol.CODEC_JSON
        #: Extra fields the server attached to its hello reply (shard
        #: identity in the sharded control plane); empty on JSON-pinned
        #: connections (no handshake) and against pre-shard servers.
        self.server_identity: dict[str, Any] = {}

    def _init_stream(self, codec: str) -> None:
        if codec not in ("auto", protocol.CODEC_BINARY, protocol.CODEC_JSON):
            self.close()
            raise TransportError(f"unknown codec {codec!r}")
        if codec == protocol.CODEC_JSON:
            return  # legacy wire: no handshake, stay on JSON
        try:
            self._negotiate()
        except BaseException:
            self.close()
            raise

    def _negotiate(self) -> None:
        """Run the hello handshake (always JSON) and adopt the result.

        The hello rides on seq 0, outside the application seq counter, so
        negotiated and JSON-pinned connections number their calls
        identically (1, 2, …) — codec choice never shifts the visible
        wire contract.
        """
        with self._lock:
            request = protocol.make_request(
                protocol.MSG_HELLO,
                seq=0,
                codecs=list(protocol.SUPPORTED_CODECS),
            )
            try:
                self._sock.sendall(protocol.encode(request))
                reply = self._read_reply()
            except OSError as exc:
                raise map_os_error(
                    exc, f"handshake failed on {self._label}"
                ) from exc
            chosen = reply.get("codec")
            if (
                reply.get("status") == "ok"
                and reply.get("seq") == 0
                and chosen in protocol.SUPPORTED_CODECS
            ):
                self.codec = chosen
                self.server_identity = {
                    key: value
                    for key, value in reply.items()
                    if key not in ("type", "seq", "status", "codec")
                }
            # Anything else — an error reply from a JSON-only peer (possibly
            # with seq 0), an unknown codec name — downgrades to JSON; the
            # legacy peer answered exactly one frame, so the stream is back
            # in sync either way.

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Send one request and block until its reply arrives.

        Blocking here *is* the pause mechanism: when the scheduler defers
        the reply, the calling thread (the user program's CUDA call) sits in
        ``recv`` until memory is assigned.
        """
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode_as(request, self.codec))
                reply = self._read_reply()
            except OSError as exc:
                raise map_os_error(exc, f"call failed on {self._label}") from exc
            if reply.get("seq") != self._seq:
                raise TransportError(
                    f"reply seq {reply.get('seq')} != request seq {self._seq}"
                )
            return reply

    def call_pipelined(
        self, requests: list[tuple[str, dict[str, Any]]]
    ) -> list[dict[str, Any]]:
        """Send N requests in one ``sendall``, then collect the N replies.

        The client half of request pipelining: the server batch-decodes
        every complete frame per readable event, dispatches them as one
        unit under a single journal group commit, and answers with one
        ``sendall`` of its own — so a window of W requests costs one
        syscall round-trip and one fsync instead of W of each.

        Replies are matched by ``seq``, not by arrival order: a paused
        allocation's reply is withheld until the scheduler resumes it and
        may land after the replies of later requests in the window.
        Returns replies in request order.

        Equivalent to :meth:`pipeline_send` + :meth:`pipeline_collect`;
        use those directly to overlap windows across several connections.
        """
        return self.pipeline_collect(self.pipeline_send(requests))

    def pipeline_send(
        self, requests: list[tuple[str, dict[str, Any]]]
    ) -> list[int]:
        """Fire one pipelined window; returns the seqs of expected replies.

        Unlike :meth:`call`, requests are validated by the codec/server
        rather than eagerly here — the window is written with a single
        ``sendall`` and a schema violation comes back as that request's
        in-band error reply.
        """
        with self._lock:
            parts: list[bytes] = []
            seqs: list[int] = []
            codec = self.codec
            for msg_type, payload in requests:
                self._seq += 1
                request = {"type": msg_type, "seq": self._seq, **payload}
                parts.append(protocol.encode_as(request, codec))
                if msg_type not in protocol.NOTIFICATION_TYPES:
                    seqs.append(self._seq)
            if not parts:
                return seqs
            try:
                self._sock.sendall(b"".join(parts))
            except OSError as exc:
                raise map_os_error(
                    exc, f"pipelined send failed on {self._label}"
                ) from exc
            return seqs

    def pipeline_collect(self, seqs: list[int]) -> list[dict[str, Any]]:
        """Collect the replies for one :meth:`pipeline_send` window."""
        if not seqs:
            return []
        with self._lock:
            by_seq: dict[int, dict[str, Any]] = {}
            outstanding = set(seqs)
            try:
                while outstanding:
                    reply = self._read_reply()
                    seq = reply.get("seq")
                    if seq not in outstanding:
                        raise TransportError(
                            f"unexpected reply seq {seq!r} from {self._label}"
                        )
                    outstanding.discard(seq)
                    by_seq[seq] = reply
            except OSError as exc:
                raise map_os_error(
                    exc, f"pipelined call failed on {self._label}"
                ) from exc
            return [by_seq[seq] for seq in seqs]

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Send a fire-and-forget notification (no reply expected).

        Only valid for :data:`repro.ipc.protocol.NOTIFICATION_TYPES` — the
        server sends no reply for those, so the stream stays in sync with
        the seq counter of blocking calls.
        """
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode_as(request, self.codec))
            except OSError as exc:
                raise map_os_error(exc, f"notify failed on {self._label}") from exc

    def _read_reply(self) -> dict[str, Any]:
        # Frames already split from an earlier recv (a pipelined window's
        # replies usually land in one chunk) are served without touching
        # the buffer again.
        if self._frames:
            return protocol.decode_any(self._frames.pop(0))
        while True:
            frames, self._buffer = protocol.split_frames(self._buffer)
            self._frames.extend(frames)
            if self._frames:
                return protocol.decode_any(self._frames.pop(0))
            if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                raise TransportError(
                    f"reply frame from {self._label} exceeds "
                    f"{protocol.MAX_FRAME_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise IpcDisconnected(
                    f"server on {self._label} closed the connection"
                )
            self._buffer += chunk

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class UnixSocketClient(_BaseSocketClient):
    """Blocking request/response client (the wrapper module's side)."""

    def __init__(
        self, path: str, timeout: float | None = None, codec: str = "auto"
    ) -> None:
        super().__init__()
        self.path = path
        self._label = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect(path)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {path}") from exc
        self._init_stream(codec)
