"""Real AF_UNIX transport for the ConVGPU protocol.

The paper chose UNIX sockets over shared memory, plain files, and TCP/IP
(§III-A) — Docker blocks host↔container IPC, a bind-mounted socket directory
crosses that boundary safely, and UNIX sockets beat loopback TCP on latency.
We use genuine ``AF_UNIX`` sockets here so that the Fig. 4 reproduction
measures *actual* kernel round-trip costs, not a constant we made up; the
ablation benchmark compares this against loopback TCP to reproduce the
paper's design argument.

Frames are newline-delimited JSON (see :mod:`repro.ipc.protocol`).

Pause semantics: the server hands each request to a handler which may reply
immediately or return :data:`DEFER`; a deferred reply is completed later via
the :class:`ReplyHandle` the handler received — meanwhile the client's
``call()`` simply stays blocked in ``recv``, which is precisely how ConVGPU
suspends a container ("the response from the scheduler will be suspended
until the required size of memory is available", §III-D).
"""

from __future__ import annotations

import errno
import os
import socket
import threading
from typing import Any, Callable, Mapping

from repro.errors import IpcDisconnected, IpcTimeoutError, TransportError
from repro.ipc import protocol
from repro.obs.metrics import REGISTRY

__all__ = ["DEFER", "ReplyHandle", "UnixSocketServer", "UnixSocketClient",
           "map_os_error"]

# Shared by both socket transports (tcp_socket.py imports these handles):
# the transport label tells the two apart on one scrape.
FRAMES_RECEIVED = REGISTRY.counter(
    "convgpu_frames_received_total",
    "Protocol frames dispatched by socket servers",
    labelnames=("transport",),
)
PROTOCOL_ERRORS = REGISTRY.counter(
    "convgpu_protocol_errors_total",
    "Frames rejected by decode/validation at socket servers",
    labelnames=("transport",),
)


def map_os_error(exc: OSError, context: str) -> TransportError:
    """Translate a raw socket error into the typed IPC error taxonomy.

    ``socket.timeout`` (= ``TimeoutError``) becomes :class:`IpcTimeoutError`;
    peer-gone conditions (refused, reset, broken pipe, unreachable path)
    become :class:`IpcDisconnected`; anything else stays a plain
    :class:`TransportError`.  Shared by both socket transports so callers
    never see a raw ``socket.timeout`` again.
    """
    if isinstance(exc, socket.timeout):
        return IpcTimeoutError(f"{context}: timed out ({exc})")
    if isinstance(exc, (ConnectionError, BrokenPipeError, FileNotFoundError)) or (
        exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ECONNREFUSED,
                      errno.ENOENT, errno.EBADF, errno.ESHUTDOWN, errno.ENOTCONN)
    ):
        return IpcDisconnected(f"{context}: peer gone ({exc})")
    return TransportError(f"{context}: {exc}")


class _Defer:
    """Sentinel a handler returns to withhold the reply (container pause)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<DEFER>"


DEFER = _Defer()

#: handler(message, reply_handle) -> reply dict | DEFER
Handler = Callable[[dict[str, Any], "ReplyHandle"], Any]


class ReplyHandle:
    """Capability to answer one request, possibly after the handler returned."""

    def __init__(self, conn: socket.socket, lock: threading.Lock, seq: int) -> None:
        self._conn = conn
        self._lock = lock
        self.seq = seq
        self._sent = False

    def send(self, reply: Mapping[str, Any]) -> None:
        """Write the reply frame; safe from any thread, at most once."""
        with self._lock:
            if self._sent:
                raise TransportError(f"reply for seq={self.seq} already sent")
            self._sent = True
            try:
                self._conn.sendall(protocol.encode(reply))
            except OSError as exc:
                # Client vanished (container killed while paused): the
                # scheduler's exit path cleans its state; nothing to do here.
                raise TransportError(f"send failed: {exc}") from exc


class UnixSocketServer:
    """Threaded UNIX-socket server speaking the ConVGPU protocol.

    One instance per socket path; the GPU memory scheduler daemon creates
    one per container plus one control socket (mirroring §III-D: "It
    creates UNIX socket for each container").
    """

    def __init__(self, path: str, handler: Handler) -> None:
        self.path = path
        self.handler = handler
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "UnixSocketServer":
        if self._listener is not None:
            raise TransportError(f"server already started on {self.path}")
        if os.path.exists(self.path):
            os.unlink(self.path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.path)
        listener.listen(16)
        self._listener = listener
        accept_thread = threading.Thread(
            target=self._accept_loop, name=f"convgpu-accept:{self.path}", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        return self

    def stop(self) -> None:
        """Stop accepting, close all connections, remove the socket file."""
        self._stopping.set()
        if self._listener is not None:
            try:
                # shutdown() wakes a thread blocked in accept(); close()
                # alone can leave it sleeping until the join timeout.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "UnixSocketServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals ------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed
            with self._conns_lock:
                self._conns.append(conn)
            reader = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"convgpu-conn:{self.path}",
                daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        buffer = b""
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return  # client closed
            buffer += chunk
            while b"\n" in buffer:
                frame, buffer = buffer.split(b"\n", 1)
                self._dispatch(conn, write_lock, frame + b"\n")
            if len(buffer) > protocol.MAX_FRAME_BYTES:
                # A frame that large can never be valid; drop the connection
                # instead of buffering a hostile/corrupt stream without bound.
                reply = protocol.make_error_reply(
                    {"type": "unknown", "seq": 0},
                    f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                )
                try:
                    with write_lock:
                        conn.sendall(protocol.encode(reply))
                except OSError:
                    pass
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()
                return

    def _dispatch(self, conn: socket.socket, write_lock: threading.Lock, frame: bytes) -> None:
        FRAMES_RECEIVED.labels(transport="unix").inc()
        try:
            message = protocol.decode(frame)
            protocol.validate_request(message)
        except Exception as exc:  # protocol errors go back in-band
            PROTOCOL_ERRORS.labels(transport="unix").inc()
            reply = protocol.make_error_reply({"type": "unknown", "seq": 0}, str(exc))
            try:
                with write_lock:
                    conn.sendall(protocol.encode(reply))
            except OSError:
                pass
            return
        handle = ReplyHandle(conn, write_lock, message.get("seq", 0))
        try:
            result = self.handler(message, handle)
        except Exception as exc:  # handler bug: report, don't kill the conn
            result = protocol.make_error_reply(message, f"internal error: {exc}")
        if message["type"] in protocol.NOTIFICATION_TYPES:
            # The client is not reading a reply for these; sending one would
            # desynchronize its seq correlation.  Enforced here so handler
            # sloppiness cannot corrupt the stream.
            return
        if result is DEFER:
            return  # scheduler will complete the handle later (pause)
        if result is not None:
            try:
                handle.send(result)
            except TransportError:
                pass


class UnixSocketClient:
    """Blocking request/response client (the wrapper module's side)."""

    def __init__(self, path: str, timeout: float | None = None) -> None:
        self.path = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect(path)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {path}") from exc
        self._buffer = b""
        self._seq = 0
        self._lock = threading.Lock()

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Send one request and block until its reply arrives.

        Blocking here *is* the pause mechanism: when the scheduler defers
        the reply, the calling thread (the user program's CUDA call) sits in
        ``recv`` until memory is assigned.
        """
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
                reply = self._read_reply()
            except OSError as exc:
                raise map_os_error(exc, f"call failed on {self.path}") from exc
            if reply.get("seq") != self._seq:
                raise TransportError(
                    f"reply seq {reply.get('seq')} != request seq {self._seq}"
                )
            return reply

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Send a fire-and-forget notification (no reply expected).

        Only valid for :data:`repro.ipc.protocol.NOTIFICATION_TYPES` — the
        server sends no reply for those, so the stream stays in sync with
        the seq counter of blocking calls.
        """
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
            except OSError as exc:
                raise map_os_error(exc, f"notify failed on {self.path}") from exc

    def _read_reply(self) -> dict[str, Any]:
        while b"\n" not in self._buffer:
            if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                raise TransportError(
                    f"reply frame from {self.path} exceeds "
                    f"{protocol.MAX_FRAME_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise IpcDisconnected(
                    f"server on {self.path} closed the connection"
                )
            self._buffer += chunk
        frame, self._buffer = self._buffer.split(b"\n", 1)
        return protocol.decode(frame + b"\n")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "UnixSocketClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
