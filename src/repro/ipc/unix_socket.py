"""Real AF_UNIX transport for the ConVGPU protocol.

The paper chose UNIX sockets over shared memory, plain files, and TCP/IP
(§III-A) — Docker blocks host↔container IPC, a bind-mounted socket directory
crosses that boundary safely, and UNIX sockets beat loopback TCP on latency.
We use genuine ``AF_UNIX`` sockets here so that the Fig. 4 reproduction
measures *actual* kernel round-trip costs, not a constant we made up; the
ablation benchmark compares this against loopback TCP to reproduce the
paper's design argument.

Frames are newline-delimited JSON (see :mod:`repro.ipc.protocol`).

Pause semantics: the server hands each request to a handler which may reply
immediately or return :data:`DEFER`; a deferred reply is completed later via
the :class:`ReplyHandle` the handler received — meanwhile the client's
``call()`` simply stays blocked in ``recv``, which is precisely how ConVGPU
suspends a container ("the response from the scheduler will be suspended
until the required size of memory is available", §III-D).

Two interchangeable I/O backends drive each server:

- **threads** (``loop=None``): one accept thread plus one reader thread per
  connection — the original model, kept for the Fig. 4 ablation;
- **shared loop** (``loop=IoLoop``): the server registers its listener with
  a :class:`repro.ipc.loop.IoLoop` and contributes **zero** threads of its
  own; one selector thread and a bounded worker pool serve every server on
  the loop, which is how the daemon scales to hundreds of containers.

Wire behaviour is identical on both backends (see ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import errno
import os
import socket
import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import IpcDisconnected, IpcTimeoutError, TransportError
from repro.ipc import protocol
from repro.ipc.loop import IoLoop
from repro.obs.metrics import REGISTRY

__all__ = ["DEFER", "ReplyHandle", "UnixSocketServer", "UnixSocketClient",
           "map_os_error"]

# Shared by both socket transports (tcp_socket.py imports these handles):
# the transport label tells the two apart on one scrape.
FRAMES_RECEIVED = REGISTRY.counter(
    "convgpu_frames_received_total",
    "Protocol frames dispatched by socket servers",
    labelnames=("transport",),
)
PROTOCOL_ERRORS = REGISTRY.counter(
    "convgpu_protocol_errors_total",
    "Frames rejected by decode/validation at socket servers",
    labelnames=("transport",),
)
OPEN_CONNECTIONS = REGISTRY.gauge(
    "convgpu_open_connections",
    "Server-side protocol connections currently open",
    labelnames=("transport",),
)


def map_os_error(exc: OSError, context: str) -> TransportError:
    """Translate a raw socket error into the typed IPC error taxonomy.

    ``socket.timeout`` (= ``TimeoutError``) becomes :class:`IpcTimeoutError`;
    peer-gone conditions (refused, reset, broken pipe, unreachable path)
    become :class:`IpcDisconnected`; anything else stays a plain
    :class:`TransportError`.  Shared by both socket transports so callers
    never see a raw ``socket.timeout`` again.
    """
    if isinstance(exc, socket.timeout):
        return IpcTimeoutError(f"{context}: timed out ({exc})")
    if isinstance(exc, (ConnectionError, BrokenPipeError, FileNotFoundError)) or (
        exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ECONNREFUSED,
                      errno.ENOENT, errno.EBADF, errno.ESHUTDOWN, errno.ENOTCONN)
    ):
        return IpcDisconnected(f"{context}: peer gone ({exc})")
    return TransportError(f"{context}: {exc}")


class _Defer:
    """Sentinel a handler returns to withhold the reply (container pause)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<DEFER>"


DEFER = _Defer()

#: handler(message, reply_handle) -> reply dict | DEFER
Handler = Callable[[dict[str, Any], "ReplyHandle"], Any]


class ReplyHandle:
    """Capability to answer one request, possibly after the handler returned.

    Backend-agnostic by construction: the handle owns the connection socket
    and its per-connection write lock, so a deferred (paused) reply can be
    completed from *any* thread — a reader thread, a shared-loop worker, or
    the scheduler thread that resumes a paused container — and the bytes on
    the wire are identical on both I/O backends.
    """

    def __init__(self, conn: socket.socket, lock: threading.Lock, seq: int) -> None:
        self._conn = conn
        self._lock = lock
        self.seq = seq
        self._sent = False

    def send(self, reply: Mapping[str, Any]) -> None:
        """Write the reply frame; safe from any thread, at most once."""
        with self._lock:
            if self._sent:
                raise TransportError(f"reply for seq={self.seq} already sent")
            self._sent = True
            try:
                self._conn.sendall(protocol.encode(reply))
            except OSError as exc:
                # Client vanished (container killed while paused): the
                # scheduler's exit path cleans its state; nothing to do here.
                raise TransportError(f"send failed: {exc}") from exc


class _BaseSocketServer:
    """Shared server machinery for both socket transports.

    Subclasses provide :meth:`_make_listener` (and optionally
    :meth:`_configure_conn` / :meth:`_after_stop`); everything else —
    accept, framing, dispatch, connection lifecycle on either I/O backend —
    lives here so the two transports cannot drift apart.

    Connection-lifecycle invariants (regression-tested under churn):

    - every accepted connection appears in ``_conns`` exactly until it is
      finished, whichever side hung up first — ``stop()`` never re-closes a
      dead socket and a long-lived server never accumulates entries;
    - in threads mode, finished reader threads are pruned immediately (the
      seed's ``_threads`` list grew one entry per connection, forever);
    - all ``_conns``/thread bookkeeping is done under ``_conns_lock``
      (``stop()`` iterating while the accept path appends was a data race).
    """

    transport: str = "unknown"

    def __init__(self, handler: Handler, *, loop: IoLoop | None = None) -> None:
        self.handler = handler
        self._loop = loop
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()

    # -- transport hooks -----------------------------------------------------

    def _make_listener(self) -> socket.socket:
        raise NotImplementedError

    def _configure_conn(self, conn: socket.socket) -> None:
        """Per-connection socket options (TCP sets NODELAY here)."""

    def _after_stop(self) -> None:
        """Post-shutdown cleanup (UNIX unlinks the socket file here)."""

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        if self._listener is not None:
            raise TransportError("server already started")
        self._stopping.clear()
        listener = self._make_listener()
        self._listener = listener
        if self._loop is not None:
            self._loop.add_listener(listener, self._loop_accept)
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                args=(listener,),
                name=f"convgpu-accept:{self.transport}",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close all connections, join worker threads."""
        self._stopping.set()
        listener, self._listener = self._listener, None
        if self._loop is not None:
            if listener is not None:
                self._loop.remove_listener(listener)
            with self._conns_lock:
                conns = list(self._conns)
            for conn in conns:
                self._loop.close_connection(conn)
            # The loop's workers complete the closes (after draining any
            # frames already queued for those connections); wait briefly so
            # stop() is observably complete for well-behaved peers.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                with self._conns_lock:
                    if not self._conns:
                        break
                time.sleep(0.002)
        else:
            if listener is not None:
                try:
                    # shutdown() wakes a thread blocked in accept(); close()
                    # alone can leave it sleeping until the join timeout.
                    listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    listener.close()
                except OSError:
                    pass
            with self._conns_lock:
                conns, self._conns = self._conns, []
                threads = list(self._conn_threads)
            for conn in conns:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()
                OPEN_CONNECTIONS.labels(transport=self.transport).dec()
            accept_thread, self._accept_thread = self._accept_thread, None
            if accept_thread is not None:
                accept_thread.join(timeout=2.0)
            for thread in threads:
                thread.join(timeout=2.0)
        self._after_stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- shared-loop backend ------------------------------------------------

    def _loop_accept(self, conn: socket.socket) -> None:
        """Accept callback run on the loop thread: register, don't read."""
        self._configure_conn(conn)
        write_lock = threading.Lock()
        with self._conns_lock:
            if self._stopping.is_set():
                conn.close()
                return
            self._conns.append(conn)
        OPEN_CONNECTIONS.labels(transport=self.transport).inc()
        assert self._loop is not None
        self._loop.add_connection(
            conn,
            on_frame=lambda frame: self._dispatch(conn, write_lock, frame),
            on_close=lambda: self._forget(conn),
            on_overflow=lambda: self._send_oversize_reply(conn, write_lock),
            max_buffer=protocol.MAX_FRAME_BYTES,
        )

    # -- threads backend ----------------------------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed
            self._configure_conn(conn)
            reader = threading.Thread(
                target=self._serve_thread,
                args=(conn,),
                name=f"convgpu-conn:{self.transport}",
                daemon=True,
            )
            with self._conns_lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._conns.append(conn)
                self._conn_threads.add(reader)
            OPEN_CONNECTIONS.labels(transport=self.transport).inc()
            reader.start()

    def _serve_thread(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            # Whichever way the connection ended (peer EOF, oversized frame,
            # socket error), the entry leaves _conns and this thread leaves
            # _conn_threads *now* — not at stop() — so a daemon under
            # connection churn stays bounded.
            self._forget(conn)
            with self._conns_lock:
                self._conn_threads.discard(threading.current_thread())

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        buffer = b""
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return  # client closed
            buffer += chunk
            while b"\n" in buffer:
                frame, buffer = buffer.split(b"\n", 1)
                self._dispatch(conn, write_lock, frame + b"\n")
            if len(buffer) > protocol.MAX_FRAME_BYTES:
                # A frame that large can never be valid; drop the connection
                # instead of buffering a hostile/corrupt stream without bound.
                self._send_oversize_reply(conn, write_lock)
                return

    # -- shared internals ----------------------------------------------------

    def _forget(self, conn: socket.socket) -> None:
        """Close one connection and drop its bookkeeping, exactly once."""
        with self._conns_lock:
            try:
                self._conns.remove(conn)
            except ValueError:
                return  # stop() (or the other backend's path) already did
        OPEN_CONNECTIONS.labels(transport=self.transport).dec()
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _send_oversize_reply(
        self, conn: socket.socket, write_lock: threading.Lock
    ) -> None:
        reply = protocol.make_error_reply(
            {"type": "unknown", "seq": 0},
            f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
        )
        try:
            with write_lock:
                conn.sendall(protocol.encode(reply))
        except OSError:
            pass

    def _dispatch(
        self, conn: socket.socket, write_lock: threading.Lock, frame: bytes
    ) -> None:
        FRAMES_RECEIVED.labels(transport=self.transport).inc()
        try:
            message = protocol.decode(frame)
            protocol.validate_request(message)
        except Exception as exc:  # protocol errors go back in-band
            PROTOCOL_ERRORS.labels(transport=self.transport).inc()
            reply = protocol.make_error_reply({"type": "unknown", "seq": 0}, str(exc))
            try:
                with write_lock:
                    conn.sendall(protocol.encode(reply))
            except OSError:
                pass
            return
        handle = ReplyHandle(conn, write_lock, message.get("seq", 0))
        try:
            result = self.handler(message, handle)
        except Exception as exc:  # handler bug: report, don't kill the conn
            result = protocol.make_error_reply(message, f"internal error: {exc}")
        if message["type"] in protocol.NOTIFICATION_TYPES:
            # The client is not reading a reply for these; sending one would
            # desynchronize its seq correlation.  Enforced here so handler
            # sloppiness cannot corrupt the stream.
            return
        if result is DEFER:
            return  # scheduler will complete the handle later (pause)
        if result is not None:
            try:
                handle.send(result)
            except TransportError:
                pass


class UnixSocketServer(_BaseSocketServer):
    """UNIX-socket server speaking the ConVGPU protocol.

    One instance per socket path; the GPU memory scheduler daemon creates
    one per container plus one control socket (mirroring §III-D: "It
    creates UNIX socket for each container").  Pass ``loop=`` to serve this
    socket from a shared :class:`~repro.ipc.loop.IoLoop` instead of
    dedicated threads.
    """

    transport = "unix"

    def __init__(self, path: str, handler: Handler, *, loop: IoLoop | None = None) -> None:
        super().__init__(handler, loop=loop)
        self.path = path

    def _make_listener(self) -> socket.socket:
        if os.path.exists(self.path):
            os.unlink(self.path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.path)
        listener.listen(128)
        return listener

    def _after_stop(self) -> None:
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass


class UnixSocketClient:
    """Blocking request/response client (the wrapper module's side)."""

    def __init__(self, path: str, timeout: float | None = None) -> None:
        self.path = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect(path)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {path}") from exc
        self._buffer = b""
        self._seq = 0
        self._lock = threading.Lock()

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        """Send one request and block until its reply arrives.

        Blocking here *is* the pause mechanism: when the scheduler defers
        the reply, the calling thread (the user program's CUDA call) sits in
        ``recv`` until memory is assigned.
        """
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
                reply = self._read_reply()
            except OSError as exc:
                raise map_os_error(exc, f"call failed on {self.path}") from exc
            if reply.get("seq") != self._seq:
                raise TransportError(
                    f"reply seq {reply.get('seq')} != request seq {self._seq}"
                )
            return reply

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Send a fire-and-forget notification (no reply expected).

        Only valid for :data:`repro.ipc.protocol.NOTIFICATION_TYPES` — the
        server sends no reply for those, so the stream stays in sync with
        the seq counter of blocking calls.
        """
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
            except OSError as exc:
                raise map_os_error(exc, f"notify failed on {self.path}") from exc

    def _read_reply(self) -> dict[str, Any]:
        while b"\n" not in self._buffer:
            if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                raise TransportError(
                    f"reply frame from {self.path} exceeds "
                    f"{protocol.MAX_FRAME_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise IpcDisconnected(
                    f"server on {self.path} closed the connection"
                )
            self._buffer += chunk
        frame, self._buffer = self._buffer.split(b"\n", 1)
        return protocol.decode(frame + b"\n")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "UnixSocketClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
