"""Loopback TCP transport — the alternative the paper rejected.

§III-A: "We also consider conventional TCP/IP socket, but we did not choose
it, because of its complexity and low performance compared to that of UNIX
socket."  This transport exists solely so the IPC ablation benchmark
(`benchmarks/test_bench_ablation_ipc.py`) can quantify that design choice on
the reproduction machine.  Interface-compatible with
:mod:`repro.ipc.unix_socket`.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.errors import IpcDisconnected, TransportError
from repro.ipc import protocol
from repro.ipc.unix_socket import (
    DEFER,
    FRAMES_RECEIVED,
    PROTOCOL_ERRORS,
    Handler,
    ReplyHandle,
    map_os_error,
)

__all__ = ["TcpSocketServer", "TcpSocketClient"]


class TcpSocketServer:
    """Threaded loopback-TCP server speaking the ConVGPU protocol."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port  # 0 = ephemeral; actual port published after start()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()

    def start(self) -> "TcpSocketServer":
        if self._listener is not None:
            raise TransportError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)  # wake accept()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "TcpSocketServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conns_lock:
                self._conns.append(conn)
            reader = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            reader.start()
            self._threads.append(reader)

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        buffer = b""
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                frame, buffer = buffer.split(b"\n", 1)
                self._handle_frame(conn, write_lock, frame + b"\n")
            if len(buffer) > protocol.MAX_FRAME_BYTES:
                # Never buffer a hostile/corrupt stream without bound.
                reply = protocol.make_error_reply(
                    {"type": "unknown", "seq": 0},
                    f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                )
                try:
                    with write_lock:
                        conn.sendall(protocol.encode(reply))
                except OSError:
                    pass
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()
                return

    def _handle_frame(self, conn: socket.socket, write_lock: threading.Lock, frame: bytes) -> None:
        FRAMES_RECEIVED.labels(transport="tcp").inc()
        try:
            message = protocol.decode(frame)
            protocol.validate_request(message)
        except Exception as exc:
            PROTOCOL_ERRORS.labels(transport="tcp").inc()
            try:
                with write_lock:
                    conn.sendall(
                        protocol.encode(
                            protocol.make_error_reply({"type": "unknown", "seq": 0}, str(exc))
                        )
                    )
            except OSError:
                pass
            return
        handle = ReplyHandle(conn, write_lock, message.get("seq", 0))
        try:
            result = self.handler(message, handle)
        except Exception as exc:
            result = protocol.make_error_reply(message, f"internal error: {exc}")
        if message["type"] in protocol.NOTIFICATION_TYPES:
            return  # one-way traffic: never reply (keeps seq in sync)
        if result is DEFER:
            return
        if result is not None:
            try:
                handle.send(result)
            except TransportError:
                pass


class TcpSocketClient:
    """Blocking request/response client over loopback TCP."""

    def __init__(self, host: str, port: int, timeout: float | None = None) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect((host, port))
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {host}:{port}") from exc
        self._buffer = b""
        self._seq = 0
        self._lock = threading.Lock()

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
                while b"\n" not in self._buffer:
                    if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                        raise TransportError(
                            f"reply frame exceeds {protocol.MAX_FRAME_BYTES} bytes"
                        )
                    chunk = self._sock.recv(65536)
                    if not chunk:
                        raise IpcDisconnected("server closed the connection")
                    self._buffer += chunk
            except OSError as exc:
                raise map_os_error(exc, "call failed") from exc
            frame, self._buffer = self._buffer.split(b"\n", 1)
            reply = protocol.decode(frame + b"\n")
            if reply.get("seq") != self._seq:
                raise TransportError("reply out of order")
            return reply

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Send a fire-and-forget notification (no reply expected)."""
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
            except OSError as exc:
                raise map_os_error(exc, "notify failed") from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpSocketClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
