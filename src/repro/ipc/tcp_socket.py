"""Loopback TCP transport — the alternative the paper rejected.

§III-A: "We also consider conventional TCP/IP socket, but we did not choose
it, because of its complexity and low performance compared to that of UNIX
socket."  This transport exists solely so the IPC ablation benchmark
(`benchmarks/test_bench_ablation_ipc.py`) can quantify that design choice on
the reproduction machine.  Interface-compatible with
:mod:`repro.ipc.unix_socket`, including the ``loop=`` shared-I/O backend.
"""

from __future__ import annotations

import socket

from repro.ipc.loop import IoLoop
from repro.ipc.unix_socket import (
    DEFER,
    FRAMES_RECEIVED,
    OPEN_CONNECTIONS,
    PROTOCOL_ERRORS,
    Handler,
    ReplyHandle,
    _BaseSocketClient,
    _BaseSocketServer,
    map_os_error,
)

__all__ = ["TcpSocketServer", "TcpSocketClient"]

# Re-exported for callers that imported the shared handles from here.
_ = (DEFER, FRAMES_RECEIVED, OPEN_CONNECTIONS, PROTOCOL_ERRORS, ReplyHandle)


class TcpSocketServer(_BaseSocketServer):
    """Loopback-TCP server speaking the ConVGPU protocol.

    Pass ``loop=`` to serve from a shared :class:`~repro.ipc.loop.IoLoop`
    instead of dedicated accept/reader threads.
    """

    transport = "tcp"

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        loop: IoLoop | None = None,
        codec: str = "auto",
        identity: dict | None = None,
    ) -> None:
        super().__init__(handler, loop=loop, codec=codec, identity=identity)
        self.host = host
        self.port = port  # 0 = ephemeral; actual port published after start()

    def _make_listener(self) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        return listener

    def _configure_conn(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class TcpSocketClient(_BaseSocketClient):
    """Blocking request/response client over loopback TCP."""

    def __init__(
        self, host: str, port: int, timeout: float | None = None,
        codec: str = "auto",
    ) -> None:
        super().__init__()
        self._label = f"{host}:{port}"
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect((host, port))
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {host}:{port}") from exc
        self._init_stream(codec)
