"""Loopback TCP transport — the alternative the paper rejected.

§III-A: "We also consider conventional TCP/IP socket, but we did not choose
it, because of its complexity and low performance compared to that of UNIX
socket."  This transport exists solely so the IPC ablation benchmark
(`benchmarks/test_bench_ablation_ipc.py`) can quantify that design choice on
the reproduction machine.  Interface-compatible with
:mod:`repro.ipc.unix_socket`, including the ``loop=`` shared-I/O backend.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.errors import IpcDisconnected, TransportError
from repro.ipc import protocol
from repro.ipc.loop import IoLoop
from repro.ipc.unix_socket import (
    DEFER,
    FRAMES_RECEIVED,
    OPEN_CONNECTIONS,
    PROTOCOL_ERRORS,
    Handler,
    ReplyHandle,
    _BaseSocketServer,
    map_os_error,
)

__all__ = ["TcpSocketServer", "TcpSocketClient"]

# Re-exported for callers that imported the shared handles from here.
_ = (DEFER, FRAMES_RECEIVED, OPEN_CONNECTIONS, PROTOCOL_ERRORS, ReplyHandle)


class TcpSocketServer(_BaseSocketServer):
    """Loopback-TCP server speaking the ConVGPU protocol.

    Pass ``loop=`` to serve from a shared :class:`~repro.ipc.loop.IoLoop`
    instead of dedicated accept/reader threads.
    """

    transport = "tcp"

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        loop: IoLoop | None = None,
    ) -> None:
        super().__init__(handler, loop=loop)
        self.host = host
        self.port = port  # 0 = ephemeral; actual port published after start()

    def _make_listener(self) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        return listener

    def _configure_conn(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class TcpSocketClient:
    """Blocking request/response client over loopback TCP."""

    def __init__(self, host: str, port: int, timeout: float | None = None) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect((host, port))
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            self._sock.close()
            raise map_os_error(exc, f"cannot connect to {host}:{port}") from exc
        self._buffer = b""
        self._seq = 0
        self._lock = threading.Lock()

    def call(self, msg_type: str, **payload: Any) -> dict[str, Any]:
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
                while b"\n" not in self._buffer:
                    if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                        raise TransportError(
                            f"reply frame exceeds {protocol.MAX_FRAME_BYTES} bytes"
                        )
                    chunk = self._sock.recv(65536)
                    if not chunk:
                        raise IpcDisconnected("server closed the connection")
                    self._buffer += chunk
            except OSError as exc:
                raise map_os_error(exc, "call failed") from exc
            frame, self._buffer = self._buffer.split(b"\n", 1)
            reply = protocol.decode(frame + b"\n")
            if reply.get("seq") != self._seq:
                raise TransportError("reply out of order")
            return reply

    def notify(self, msg_type: str, **payload: Any) -> None:
        """Send a fire-and-forget notification (no reply expected)."""
        if msg_type not in protocol.NOTIFICATION_TYPES:
            raise TransportError(f"{msg_type!r} is not a notification type")
        with self._lock:
            self._seq += 1
            request = protocol.make_request(msg_type, seq=self._seq, **payload)
            try:
                self._sock.sendall(protocol.encode(request))
            except OSError as exc:
                raise map_os_error(exc, "notify failed") from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpSocketClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
