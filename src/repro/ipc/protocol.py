"""The ConVGPU wire protocol: JSON messages over UNIX domain sockets.

§III: "These components (including NVIDIA Docker) are connected and
communicating using UNIX Domain Socket (UNIX socket) with JSON (JavaScript
Object Notation) format."  This module defines the message vocabulary and
validation; transports live in :mod:`repro.ipc.unix_socket` (real sockets)
and :mod:`repro.ipc.channel` (in-process).

Message flows, matching §III-B/C/D:

======================  =======================================  =============================
type                    sender → receiver                         purpose
======================  =======================================  =============================
``register_container``  nvidia-docker → scheduler                 declare limit before create;
                                                                  reply carries the per-container
                                                                  socket directory path
``container_exit``      nvidia-docker-plugin → scheduler          dummy-volume unmount detected
``alloc_request``       wrapper → scheduler                       size check before real malloc;
                                                                  **reply may be withheld: pause**
``alloc_commit``        wrapper → scheduler                       address+pid+size after malloc
``alloc_release``       wrapper → scheduler                       address on cudaFree
``mem_get_info``        wrapper → scheduler                       container-view free/total
``process_exit``        wrapper → scheduler                       __cudaUnregisterFatBinary
======================  =======================================  =============================

Every request carries ``seq`` (per-connection monotonic) echoed in the
reply, so a transport can correlate deferred replies with requests.

Messages may additionally carry the optional trace-context fields
``trace_id``/``span_id`` (strings; see ``docs/PROTOCOL.md`` and
:mod:`repro.obs.trace`) so one wrapper call is followable across the
wrapper → daemon boundary as a single trace.  Receivers that predate
those fields ignore them, per the versioning rule below.

Two codecs carry the same message vocabulary (see ``docs/PROTOCOL.md``):

- **json** — one compact JSON object per ``\\n``-terminated line; the
  paper's format, the fallback for old peers, and the trace-friendly
  debug mode;
- **binary** — a versioned, length-prefixed frame (magic, version, flags,
  msg-type tag, payload length) whose tag and field tables are *derived*
  from ``REQUEST_FIELDS`` at import time, so the schema module stays the
  single source of truth and reprolint's ``protocol-drift`` coverage
  extends to the binary layer by construction.

Codec choice is negotiated per connection with the ``hello`` handshake
(always exchanged as JSON); both sides must treat JSON as the floor.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Mapping

from repro.errors import ProtocolError

__all__ = [
    "MSG_REGISTER_CONTAINER",
    "MSG_CONTAINER_EXIT",
    "MSG_ALLOC_REQUEST",
    "MSG_ALLOC_COMMIT",
    "MSG_ALLOC_ABORT",
    "MSG_ALLOC_RELEASE",
    "MSG_MEM_GET_INFO",
    "MSG_PROCESS_EXIT",
    "MSG_HEARTBEAT",
    "MSG_HELLO",
    "MAX_FRAME_BYTES",
    "REQUEST_FIELDS",
    "TRACE_FIELDS",
    "NOTIFICATION_TYPES",
    "CODEC_JSON",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "HEADER_SIZE",
    "MESSAGE_TAGS",
    "TAG_MESSAGES",
    "BINARY_FIELDS",
    "make_request",
    "make_reply",
    "make_error_reply",
    "validate_request",
    "encode",
    "decode",
    "encode_binary",
    "decode_binary",
    "encode_as",
    "decode_any",
    "split_frames",
    "negotiate_codec",
]

MSG_REGISTER_CONTAINER = "register_container"
MSG_CONTAINER_EXIT = "container_exit"
MSG_ALLOC_REQUEST = "alloc_request"
MSG_ALLOC_COMMIT = "alloc_commit"
MSG_ALLOC_ABORT = "alloc_abort"
MSG_ALLOC_RELEASE = "alloc_release"
MSG_MEM_GET_INFO = "mem_get_info"
MSG_PROCESS_EXIT = "process_exit"
MSG_HEARTBEAT = "heartbeat"
#: Connection handshake: the client offers its codec preference list and
#: the server's reply names the codec both sides will use from then on.
#: Handled entirely at the transport layer — it never reaches the
#: scheduler service.  Always exchanged as JSON, in both directions.
MSG_HELLO = "hello"

#: Hard cap on one encoded frame.  Real ConVGPU messages are well under a
#: kilobyte; anything larger is a protocol violation or an attack, and a
#: server must reject it instead of buffering without bound.
MAX_FRAME_BYTES = 64 * 1024

#: Message types that are fire-and-forget notifications: the sender does
#: not wait and the server sends no reply.  Keeping bookkeeping traffic
#: one-way is what keeps cudaFree at native speed under ConVGPU (Fig. 4).
NOTIFICATION_TYPES: frozenset[str] = frozenset(
    {MSG_ALLOC_COMMIT, MSG_ALLOC_ABORT, MSG_ALLOC_RELEASE, MSG_PROCESS_EXIT,
     MSG_HEARTBEAT}
)

#: Required payload fields (and their types) per request type.
REQUEST_FIELDS: dict[str, dict[str, type]] = {
    MSG_REGISTER_CONTAINER: {"container_id": str, "limit": int},
    MSG_HEARTBEAT: {"container_id": str},
    MSG_CONTAINER_EXIT: {"container_id": str},
    MSG_ALLOC_REQUEST: {"container_id": str, "pid": int, "size": int, "api": str},
    MSG_ALLOC_COMMIT: {"container_id": str, "pid": int, "address": int, "size": int},
    MSG_ALLOC_ABORT: {"container_id": str, "pid": int, "size": int},
    MSG_ALLOC_RELEASE: {"container_id": str, "pid": int, "address": int},
    MSG_MEM_GET_INFO: {"container_id": str, "pid": int},
    MSG_PROCESS_EXIT: {"container_id": str, "pid": int},
    MSG_HELLO: {"codecs": list},
}

#: Optional trace-context fields allowed on any message.  When present
#: they must be strings — a malformed trace id is a protocol violation,
#: not something to silently forward.
TRACE_FIELDS: tuple[str, ...] = ("trace_id", "span_id")

# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

#: The paper's newline-delimited JSON; the compatibility floor every peer
#: must speak, and the trace-friendly debug mode (``--codec=json``).
CODEC_JSON = "json"
#: The versioned, length-prefixed struct-packed codec (the fast path).
CODEC_BINARY = "binary"
#: What this implementation can speak, in preference order.
SUPPORTED_CODECS: tuple[str, ...] = (CODEC_BINARY, CODEC_JSON)

#: First bytes of every binary frame.  JSON frames always start with
#: ``{`` so the two codecs are distinguishable per frame on one stream,
#: which is what lets a JSON-only legacy peer skip the handshake entirely.
WIRE_MAGIC = b"CVGP"
#: Bumped whenever the header layout, the tag assignment rule, or any
#: per-type field table changes shape.  A receiver rejects frames from a
#: different version with a typed error; the sender falls back to JSON.
WIRE_VERSION = 1
#: Header: magic (4s) | version (B) | flags (B) | msg-type tag (H) |
#: payload length (I).  Network byte order throughout.
_HEADER = struct.Struct("!4sBBHI")
HEADER_SIZE = _HEADER.size

#: Header flag marking a reply frame (payload: seq + status + extensions).
_FLAG_REPLY = 0x01

#: Tag tables *generated* from the schema above — never hand-written, so
#: adding a message type to REQUEST_FIELDS extends the binary codec and
#: the ``protocol-drift`` lint coverage in one edit.  Tags are assigned
#: by sorted type name starting at 1; tag 0 is reserved for replies whose
#: request could not be decoded (``unknown_reply``).  The assignment is
#: part of the wire contract: reordering requires a WIRE_VERSION bump.
MESSAGE_TAGS: dict[str, int] = {
    name: index + 1 for index, name in enumerate(sorted(REQUEST_FIELDS))
}
TAG_MESSAGES: dict[int, str] = {tag: name for name, tag in MESSAGE_TAGS.items()}

#: Per-type field layout for the binary codec, derived from the schema in
#: declaration order: ints are packed as u64, strings as u32-length-prefixed
#: UTF-8, lists as u16-counted strings.  Anything beyond the declared
#: fields (trace context, unknown fields from newer peers) rides in the
#: tagged extension section, preserving the unknown-fields-are-ignored
#: versioning rule across both codecs.
BINARY_FIELDS: dict[str, tuple[tuple[str, type], ...]] = {
    name: tuple(fields.items()) for name, fields in REQUEST_FIELDS.items()
}

_U64 = struct.Struct("!Q")
_U32 = struct.Struct("!I")
_U16 = struct.Struct("!H")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: An empty extension section (count = 0) — the common case for requests.
_NO_EXTENSIONS = _U16.pack(0)

# Extension-value type tags (one byte each, before the value bytes).
_EXT_STR = 0     # u32 length + UTF-8
_EXT_INT = 1     # i64
_EXT_FLOAT = 2   # f64 (non-finite rejected, matching JSON's allow_nan=False)
_EXT_TRUE = 3    # no value bytes
_EXT_FALSE = 4   # no value bytes
_EXT_NULL = 5    # no value bytes
_EXT_JSON = 6    # u32 length + UTF-8 JSON (lists, dicts, big ints)


def make_request(msg_type: str, seq: int = 0, **payload: Any) -> dict[str, Any]:
    """Build and validate a request message."""
    message = {"type": msg_type, "seq": seq, **payload}
    validate_request(message)
    return message


def make_reply(request: Mapping[str, Any], **payload: Any) -> dict[str, Any]:
    """Build a success reply echoing the request's seq."""
    return {"type": f"{request['type']}_reply", "seq": request.get("seq", 0),
            "status": "ok", **payload}


def make_error_reply(request: Mapping[str, Any], error: str) -> dict[str, Any]:
    """Build an error reply."""
    return {"type": f"{request.get('type', 'unknown')}_reply",
            "seq": request.get("seq", 0), "status": "error", "error": error}


def validate_request(message: Mapping[str, Any]) -> None:
    """Check a decoded request against the schema.

    Raises:
        ProtocolError: on missing type, unknown type, missing/ill-typed
            fields, or negative sizes/addresses.
    """
    msg_type = message.get("type")
    if not isinstance(msg_type, str):
        raise ProtocolError(f"message has no string 'type': {message!r}")
    fields = REQUEST_FIELDS.get(msg_type)
    if fields is None:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    seq = message.get("seq", 0)
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError(f"bad seq in {msg_type}: {seq!r}")
    for name, expected in fields.items():
        if name not in message:
            raise ProtocolError(f"{msg_type} missing field {name!r}")
        value = message[name]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ProtocolError(
                f"{msg_type}.{name} must be {expected.__name__}, got {value!r}"
            )
        if expected is int and name in ("limit", "size", "address", "pid") and value < 0:
            raise ProtocolError(f"{msg_type}.{name} must be >= 0, got {value}")
        if expected is list and not all(isinstance(item, str) for item in value):
            raise ProtocolError(f"{msg_type}.{name} must be a list of str")
    for name in TRACE_FIELDS:
        if name in message and not isinstance(message[name], str):
            raise ProtocolError(
                f"{msg_type}.{name} must be str, got {message[name]!r}"
            )


def encode(message: Mapping[str, Any]) -> bytes:
    """Serialize one message as a newline-terminated JSON frame."""
    try:
        text = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc
    if "\n" in text:
        raise ProtocolError("encoded message contains a newline")
    frame = text.encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return frame


def decode(frame: bytes) -> dict[str, Any]:
    """Parse one newline-terminated JSON frame."""
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    try:
        message = json.loads(frame.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not a JSON object: {message!r}")
    return message


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------


def _encode_extensions(items: list[tuple[str, Any]]) -> list[bytes]:
    """Encode the tagged extension section (sorted for determinism)."""
    parts = [_U16.pack(len(items))]
    for key, value in items:
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > 0xFFFF:
            raise ProtocolError(f"extension key too long: {key[:32]!r}…")
        parts.append(_U16.pack(len(key_bytes)))
        parts.append(key_bytes)
        if value is True:
            parts.append(b"\x03")  # _EXT_TRUE
        elif value is False:
            parts.append(b"\x04")  # _EXT_FALSE
        elif value is None:
            parts.append(b"\x05")  # _EXT_NULL
        elif isinstance(value, str):
            data = value.encode("utf-8")
            parts.append(b"\x00" + _U32.pack(len(data)))  # _EXT_STR
            parts.append(data)
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                parts.append(b"\x01" + _I64.pack(value))  # _EXT_INT
            else:
                data = json.dumps(value).encode("utf-8")
                parts.append(b"\x06" + _U32.pack(len(data)))  # _EXT_JSON
                parts.append(data)
        elif isinstance(value, float):
            if not math.isfinite(value):
                raise ProtocolError(f"unserializable message: non-finite {key}")
            parts.append(b"\x02" + _F64.pack(value))  # _EXT_FLOAT
        else:
            try:
                data = json.dumps(
                    value, separators=(",", ":"), allow_nan=False
                ).encode("utf-8")
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"unserializable message: {exc}") from exc
            parts.append(b"\x06" + _U32.pack(len(data)))  # _EXT_JSON
            parts.append(data)
    return parts


def _require_seq(message: Mapping[str, Any]) -> int:
    seq = message.get("seq", 0)
    if not isinstance(seq, int) or isinstance(seq, bool) or not 0 <= seq < 2**64:
        raise ProtocolError(f"bad seq: {seq!r}")
    return seq


def encode_binary(message: Mapping[str, Any]) -> bytes:
    """Serialize one message as a length-prefixed binary frame."""
    msg_type = message.get("type")
    if not isinstance(msg_type, str):
        raise ProtocolError(f"message has no string 'type': {message!r}")
    if msg_type.endswith("_reply"):
        return _encode_binary_reply(message, msg_type)
    tag = MESSAGE_TAGS.get(msg_type)
    if tag is None:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    parts = [_U64.pack(_require_seq(message))]
    layout = BINARY_FIELDS[msg_type]
    declared = REQUEST_FIELDS[msg_type]
    for name, expected in layout:
        if name not in message:
            raise ProtocolError(f"{msg_type} missing field {name!r}")
        value = message[name]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ProtocolError(
                f"{msg_type}.{name} must be {expected.__name__}, got {value!r}"
            )
        if expected is int:
            if not 0 <= value < 2**64:
                raise ProtocolError(f"{msg_type}.{name} out of u64 range: {value}")
            parts.append(_U64.pack(value))
        elif expected is str:
            data = value.encode("utf-8")
            parts.append(_U32.pack(len(data)))
            parts.append(data)
        else:  # list of str
            if not all(isinstance(item, str) for item in value):
                raise ProtocolError(f"{msg_type}.{name} must be a list of str")
            parts.append(_U16.pack(len(value)))
            for item in value:
                data = item.encode("utf-8")
                parts.append(_U32.pack(len(data)))
                parts.append(data)
    if len(message) == 2 + len(layout) and "seq" in message:
        # The loop above proved every declared field (plus "type") is
        # present, so an exact key count means there is nothing else.
        parts.append(_NO_EXTENSIONS)
    else:
        extras = sorted(
            (key, value)
            for key, value in message.items()
            if key not in declared and key not in ("type", "seq")
        )
        parts.extend(_encode_extensions(extras))
    return _pack_frame(tag, 0, parts)


def _encode_binary_reply(message: Mapping[str, Any], msg_type: str) -> bytes:
    base = msg_type[: -len("_reply")]
    tag = MESSAGE_TAGS.get(base, 0)
    if tag == 0 and base != "unknown":
        raise ProtocolError(f"unknown message type {msg_type!r}")
    status = message.get("status")
    if status == "ok":
        status_byte = b"\x00"
    elif status == "error":
        status_byte = b"\x01"
    else:
        raise ProtocolError(f"reply has no valid status: {status!r}")
    parts = [_U64.pack(_require_seq(message)), status_byte]
    extras = sorted(
        (key, value)
        for key, value in message.items()
        if key not in ("type", "seq", "status")
    )
    parts.extend(_encode_extensions(extras))
    return _pack_frame(tag, _FLAG_REPLY, parts)


def _pack_frame(tag: int, flags: int, parts: list[bytes]) -> bytes:
    payload = b"".join(parts)
    frame = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, flags, tag, len(payload)) + payload
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return frame


# Decoding works on an inline (buffer, cursor) pair rather than a reader
# object: the per-field bounds check plus ``unpack_from`` compiles to a
# handful of bytecodes, which matters because decode sits on the hot path
# of every batched frame the servers and clients process.


def _decode_text(data: bytes, pos: int, end: int) -> tuple[str, int]:
    """Decode one u32-length-prefixed UTF-8 string; returns (value, cursor)."""
    if pos + 4 > end:
        raise ProtocolError("truncated binary payload")
    length = _U32.unpack_from(data, pos)[0]
    pos += 4
    if pos + length > end:
        raise ProtocolError("truncated binary payload")
    try:
        value = data[pos:pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"bad UTF-8 in binary frame: {exc}") from exc
    return value, pos + length


def _decode_extensions(
    data: bytes, pos: int, end: int, message: dict[str, Any]
) -> int:
    """Decode the tagged extension section; returns the new cursor."""
    if pos + 2 > end:
        raise ProtocolError("truncated binary payload")
    count = _U16.unpack_from(data, pos)[0]
    pos += 2
    for _ in range(count):
        if pos + 2 > end:
            raise ProtocolError("truncated binary payload")
        key_length = _U16.unpack_from(data, pos)[0]
        pos += 2
        if pos + key_length + 1 > end:
            raise ProtocolError("truncated binary payload")
        try:
            key = data[pos:pos + key_length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad UTF-8 in binary frame: {exc}") from exc
        pos += key_length
        kind = data[pos]
        pos += 1
        if kind == _EXT_STR:
            message[key], pos = _decode_text(data, pos, end)
        elif kind == _EXT_INT:
            if pos + 8 > end:
                raise ProtocolError("truncated binary payload")
            message[key] = _I64.unpack_from(data, pos)[0]
            pos += 8
        elif kind == _EXT_FLOAT:
            if pos + 8 > end:
                raise ProtocolError("truncated binary payload")
            message[key] = _F64.unpack_from(data, pos)[0]
            pos += 8
        elif kind == _EXT_TRUE:
            message[key] = True
        elif kind == _EXT_FALSE:
            message[key] = False
        elif kind == _EXT_NULL:
            message[key] = None
        elif kind == _EXT_JSON:
            if pos + 4 > end:
                raise ProtocolError("truncated binary payload")
            length = _U32.unpack_from(data, pos)[0]
            pos += 4
            if pos + length > end:
                raise ProtocolError("truncated binary payload")
            try:
                message[key] = json.loads(data[pos:pos + length].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"bad JSON extension value: {exc}") from exc
            pos += length
        else:
            raise ProtocolError(f"unknown extension value tag {kind}")
    return pos


def decode_binary(frame: bytes) -> dict[str, Any]:
    """Parse one complete binary frame (header included)."""
    end = len(frame)
    if end < HEADER_SIZE:
        raise ProtocolError(
            f"truncated binary header: {end} < {HEADER_SIZE} bytes"
        )
    magic, version, flags, tag, length = _HEADER.unpack_from(frame)
    if magic != WIRE_MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire version {version} (this peer speaks {WIRE_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"binary frame declares {length} bytes, exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    if end != HEADER_SIZE + length:
        raise ProtocolError(
            f"binary frame length mismatch: header declares {length}, "
            f"got {end - HEADER_SIZE} payload bytes"
        )
    pos = HEADER_SIZE
    if flags & _FLAG_REPLY:
        if pos + 9 > end:
            raise ProtocolError("truncated binary payload")
        base = TAG_MESSAGES.get(tag, "unknown") if tag else "unknown"
        message: dict[str, Any] = {
            "type": base + "_reply",
            "seq": _U64.unpack_from(frame, pos)[0],
        }
        status = frame[pos + 8]
        pos += 9
        if status == 0:
            message["status"] = "ok"
        elif status == 1:
            message["status"] = "error"
        else:
            raise ProtocolError(f"unknown reply status byte {status}")
        pos = _decode_extensions(frame, pos, end, message)
    else:
        msg_type = TAG_MESSAGES.get(tag)
        if msg_type is None:
            raise ProtocolError(f"unknown message tag {tag}")
        if pos + 8 > end:
            raise ProtocolError("truncated binary payload")
        message = {"type": msg_type, "seq": _U64.unpack_from(frame, pos)[0]}
        pos += 8
        for name, expected in BINARY_FIELDS[msg_type]:
            if expected is int:
                if pos + 8 > end:
                    raise ProtocolError("truncated binary payload")
                message[name] = _U64.unpack_from(frame, pos)[0]
                pos += 8
            elif expected is str:
                message[name], pos = _decode_text(frame, pos, end)
            else:  # list of str
                if pos + 2 > end:
                    raise ProtocolError("truncated binary payload")
                count = _U16.unpack_from(frame, pos)[0]
                pos += 2
                items = []
                for _ in range(count):
                    item, pos = _decode_text(frame, pos, end)
                    items.append(item)
                message[name] = items
        pos = _decode_extensions(frame, pos, end, message)
    if pos != end:
        raise ProtocolError(f"{end - pos} trailing bytes in binary frame")
    return message


# ---------------------------------------------------------------------------
# codec-agnostic helpers (what the transports call)
# ---------------------------------------------------------------------------


def encode_as(message: Mapping[str, Any], codec: str) -> bytes:
    """Serialize under the named codec."""
    if codec == CODEC_BINARY:
        return encode_binary(message)
    if codec == CODEC_JSON:
        return encode(message)
    raise ProtocolError(f"unknown codec {codec!r}")


def decode_any(frame: bytes) -> dict[str, Any]:
    """Parse one frame of either codec, sniffed by the magic prefix."""
    if frame[:4] == WIRE_MAGIC:
        return decode_binary(frame)
    return decode(frame)


def split_frames(buffer: bytes) -> tuple[list[bytes], bytes]:
    """Split every complete frame (either codec) off the front of ``buffer``.

    Returns ``(frames, rest)`` where each frame is complete and
    self-describing for :func:`decode_any`.  Raises :class:`ProtocolError`
    only for *unrecoverable* binary framing errors — a version skew or a
    declared length over the cap leaves the stream position meaningless,
    so the connection must be torn down; JSON-side garbage stays a
    per-frame decode error, handled in-band.
    """
    frames: list[bytes] = []
    while buffer:
        head = buffer[:4]
        if head == WIRE_MAGIC:
            if len(buffer) < HEADER_SIZE:
                break  # incomplete header: wait for more bytes
            version = buffer[4]
            if version != WIRE_VERSION:
                raise ProtocolError(
                    f"unsupported wire version {version} "
                    f"(this peer speaks {WIRE_VERSION})"
                )
            length = _U32.unpack_from(buffer, 8)[0]
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"binary frame declares {length} bytes, exceeds "
                    f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                )
            end = HEADER_SIZE + length
            if len(buffer) < end:
                break  # incomplete payload
            frames.append(buffer[:end])
            buffer = buffer[end:]
            continue
        if len(head) < 4 and WIRE_MAGIC.startswith(head):
            break  # could become a magic prefix: wait for more bytes
        newline = buffer.find(b"\n")
        if newline < 0:
            break  # incomplete JSON line
        frames.append(buffer[: newline + 1])
        buffer = buffer[newline + 1:]
    return frames, buffer


def negotiate_codec(
    offered: list[str] | tuple[str, ...],
    supported: tuple[str, ...] = SUPPORTED_CODECS,
) -> str:
    """Pick the first client-preferred codec this side supports.

    JSON is the protocol floor: when nothing matches (an empty offer, or
    codecs from a future version) both sides converge on JSON rather than
    failing the connection — the downgrade rule in ``docs/PROTOCOL.md``.
    """
    for codec in offered:
        if codec in supported and codec in SUPPORTED_CODECS:
            return codec
    return CODEC_JSON
