"""The ConVGPU wire protocol: JSON messages over UNIX domain sockets.

§III: "These components (including NVIDIA Docker) are connected and
communicating using UNIX Domain Socket (UNIX socket) with JSON (JavaScript
Object Notation) format."  This module defines the message vocabulary and
validation; transports live in :mod:`repro.ipc.unix_socket` (real sockets)
and :mod:`repro.ipc.channel` (in-process).

Message flows, matching §III-B/C/D:

======================  =======================================  =============================
type                    sender → receiver                         purpose
======================  =======================================  =============================
``register_container``  nvidia-docker → scheduler                 declare limit before create;
                                                                  reply carries the per-container
                                                                  socket directory path
``container_exit``      nvidia-docker-plugin → scheduler          dummy-volume unmount detected
``alloc_request``       wrapper → scheduler                       size check before real malloc;
                                                                  **reply may be withheld: pause**
``alloc_commit``        wrapper → scheduler                       address+pid+size after malloc
``alloc_release``       wrapper → scheduler                       address on cudaFree
``mem_get_info``        wrapper → scheduler                       container-view free/total
``process_exit``        wrapper → scheduler                       __cudaUnregisterFatBinary
======================  =======================================  =============================

Every request carries ``seq`` (per-connection monotonic) echoed in the
reply, so a transport can correlate deferred replies with requests.

Messages may additionally carry the optional trace-context fields
``trace_id``/``span_id`` (strings; see ``docs/PROTOCOL.md`` and
:mod:`repro.obs.trace`) so one wrapper call is followable across the
wrapper → daemon boundary as a single trace.  Receivers that predate
those fields ignore them, per the versioning rule below.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ProtocolError

__all__ = [
    "MSG_REGISTER_CONTAINER",
    "MSG_CONTAINER_EXIT",
    "MSG_ALLOC_REQUEST",
    "MSG_ALLOC_COMMIT",
    "MSG_ALLOC_ABORT",
    "MSG_ALLOC_RELEASE",
    "MSG_MEM_GET_INFO",
    "MSG_PROCESS_EXIT",
    "MSG_HEARTBEAT",
    "MAX_FRAME_BYTES",
    "REQUEST_FIELDS",
    "TRACE_FIELDS",
    "NOTIFICATION_TYPES",
    "make_request",
    "make_reply",
    "make_error_reply",
    "validate_request",
    "encode",
    "decode",
]

MSG_REGISTER_CONTAINER = "register_container"
MSG_CONTAINER_EXIT = "container_exit"
MSG_ALLOC_REQUEST = "alloc_request"
MSG_ALLOC_COMMIT = "alloc_commit"
MSG_ALLOC_ABORT = "alloc_abort"
MSG_ALLOC_RELEASE = "alloc_release"
MSG_MEM_GET_INFO = "mem_get_info"
MSG_PROCESS_EXIT = "process_exit"
MSG_HEARTBEAT = "heartbeat"

#: Hard cap on one encoded frame.  Real ConVGPU messages are well under a
#: kilobyte; anything larger is a protocol violation or an attack, and a
#: server must reject it instead of buffering without bound.
MAX_FRAME_BYTES = 64 * 1024

#: Message types that are fire-and-forget notifications: the sender does
#: not wait and the server sends no reply.  Keeping bookkeeping traffic
#: one-way is what keeps cudaFree at native speed under ConVGPU (Fig. 4).
NOTIFICATION_TYPES: frozenset[str] = frozenset(
    {MSG_ALLOC_COMMIT, MSG_ALLOC_ABORT, MSG_ALLOC_RELEASE, MSG_PROCESS_EXIT,
     MSG_HEARTBEAT}
)

#: Required payload fields (and their types) per request type.
REQUEST_FIELDS: dict[str, dict[str, type]] = {
    MSG_REGISTER_CONTAINER: {"container_id": str, "limit": int},
    MSG_HEARTBEAT: {"container_id": str},
    MSG_CONTAINER_EXIT: {"container_id": str},
    MSG_ALLOC_REQUEST: {"container_id": str, "pid": int, "size": int, "api": str},
    MSG_ALLOC_COMMIT: {"container_id": str, "pid": int, "address": int, "size": int},
    MSG_ALLOC_ABORT: {"container_id": str, "pid": int, "size": int},
    MSG_ALLOC_RELEASE: {"container_id": str, "pid": int, "address": int},
    MSG_MEM_GET_INFO: {"container_id": str, "pid": int},
    MSG_PROCESS_EXIT: {"container_id": str, "pid": int},
}

#: Optional trace-context fields allowed on any message.  When present
#: they must be strings — a malformed trace id is a protocol violation,
#: not something to silently forward.
TRACE_FIELDS: tuple[str, ...] = ("trace_id", "span_id")


def make_request(msg_type: str, seq: int = 0, **payload: Any) -> dict[str, Any]:
    """Build and validate a request message."""
    message = {"type": msg_type, "seq": seq, **payload}
    validate_request(message)
    return message


def make_reply(request: Mapping[str, Any], **payload: Any) -> dict[str, Any]:
    """Build a success reply echoing the request's seq."""
    return {"type": f"{request['type']}_reply", "seq": request.get("seq", 0),
            "status": "ok", **payload}


def make_error_reply(request: Mapping[str, Any], error: str) -> dict[str, Any]:
    """Build an error reply."""
    return {"type": f"{request.get('type', 'unknown')}_reply",
            "seq": request.get("seq", 0), "status": "error", "error": error}


def validate_request(message: Mapping[str, Any]) -> None:
    """Check a decoded request against the schema.

    Raises:
        ProtocolError: on missing type, unknown type, missing/ill-typed
            fields, or negative sizes/addresses.
    """
    msg_type = message.get("type")
    if not isinstance(msg_type, str):
        raise ProtocolError(f"message has no string 'type': {message!r}")
    fields = REQUEST_FIELDS.get(msg_type)
    if fields is None:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    seq = message.get("seq", 0)
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError(f"bad seq in {msg_type}: {seq!r}")
    for name, expected in fields.items():
        if name not in message:
            raise ProtocolError(f"{msg_type} missing field {name!r}")
        value = message[name]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ProtocolError(
                f"{msg_type}.{name} must be {expected.__name__}, got {value!r}"
            )
        if expected is int and name in ("limit", "size", "address", "pid") and value < 0:
            raise ProtocolError(f"{msg_type}.{name} must be >= 0, got {value}")
    for name in TRACE_FIELDS:
        if name in message and not isinstance(message[name], str):
            raise ProtocolError(
                f"{msg_type}.{name} must be str, got {message[name]!r}"
            )


def encode(message: Mapping[str, Any]) -> bytes:
    """Serialize one message as a newline-terminated JSON frame."""
    try:
        text = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc
    if "\n" in text:
        raise ProtocolError("encoded message contains a newline")
    frame = text.encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return frame


def decode(frame: bytes) -> dict[str, Any]:
    """Parse one newline-terminated JSON frame."""
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    try:
        message = json.loads(frame.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not a JSON object: {message!r}")
    return message
