"""Shared selector-based I/O core for the socket transports.

The paper's daemon creates "UNIX socket for each container" (§III-D); with
a thread-per-connection server that means two threads per container (accept
+ reader) and unbounded growth under churn.  :class:`IoLoop` replaces that
model with the classic reactor shape:

- **one I/O thread** multiplexes every registered listener and connection
  through :mod:`selectors` — accepting, reading, and splitting the byte
  stream into frames (newline-delimited by default; servers install
  :func:`repro.ipc.protocol.split_frames` to speak both codecs);
- **a small bounded worker pool** runs protocol decode and the scheduler
  handler, so a deferred (paused) reply or a slow handler never blocks
  reads for the other few hundred containers;
- **per-connection frame ordering** is preserved: a connection's frames are
  processed by at most one worker at a time, in arrival order, exactly as
  the old reader thread did — ``notify`` followed by ``call`` stays in
  sequence and the ``seq`` correlation invariant holds;
- **batch dispatch**: every complete frame found in one readable event is
  handed to the connection's ``on_batch`` callback as one unit (contiguous
  batches already queued for the same connection are merged), so a
  pipelining client's burst is decoded and dispatched together and the
  server can cover the whole burst with a single group-commit ``fsync``.

Both :class:`repro.ipc.unix_socket.UnixSocketServer` and
:class:`repro.ipc.tcp_socket.TcpSocketServer` accept ``loop=`` and register
their listener with it instead of spawning threads; the scheduler daemon
creates one loop and shares it across the control socket and every
per-container socket, so the daemon's thread count is ``1 + workers``
regardless of how many containers are attached.

Sockets stay in **blocking** mode: the loop performs exactly one ``recv``
per readiness event (a level-triggered selector re-reports a socket that
still has buffered bytes), and replies keep using plain ``sendall`` from
worker or scheduler threads under the existing per-connection write lock —
which is what keeps the wire behaviour byte-identical to the threaded
backend (see ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from queue import Queue
from typing import Any, Callable

from repro.errors import ProtocolError, TransportError
from repro.obs import stages as _stages
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER

__all__ = ["IoLoop", "DEFAULT_IO_WORKERS"]

_perf_counter = time.perf_counter

# Module alias so the obs-overhead benchmark can stub the recorder per
# module (the _HOT_METRICS idiom); flight events declared once at import.
_REC = RECORDER
_EV_ACCEPT = RECORDER.declare("io.accept", a="fd")
_EV_READ = RECORDER.declare("io.read", a="fd", b="bytes", c="frames")
_EV_CLOSE = RECORDER.declare("io.close", a="fd")
_EV_OVERFLOW = RECORDER.declare("io.overflow", a="fd", b="buffered")
_EV_FRAME_ERROR = RECORDER.declare("io.frame_error", s="error", a="fd")

#: Worker threads running decode + handler for a shared loop.  The scheduler
#: core serializes decisions behind one RLock anyway, so a handful of workers
#: is enough to keep the socket layer ahead of the scheduler.
DEFAULT_IO_WORKERS = 4

_QUEUE_DEPTH = REGISTRY.gauge(
    "convgpu_ioloop_queue_depth",
    "Connections queued for a worker in the shared I/O loop",
)
_LOOP_CONNECTIONS = REGISTRY.gauge(
    "convgpu_ioloop_connections",
    "Connections currently registered with the shared I/O loop",
)


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self._name}>"


#: Queued after a connection's last frame once the peer hung up.
_CLOSE = _Sentinel("CLOSE")
#: Queued when a connection exceeded the frame cap (hostile/corrupt peer).
_OVERFLOW = _Sentinel("OVERFLOW")
#: Worker shutdown marker.
_STOP = _Sentinel("STOP")


class _BadFrame:
    """Queued when the splitter rejected the stream (framing violation).

    Carries the :class:`~repro.errors.ProtocolError` message so a worker can
    send the in-band error reply before hanging up — the selector thread
    itself never writes and never dies on a hostile peer.
    """

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


def _split_lines(buffer: bytes) -> tuple[list[bytes], bytes]:
    """Default splitter: newline-delimited frames (the JSON-only wire)."""
    if b"\n" not in buffer:
        return [], buffer
    *lines, rest = buffer.split(b"\n")
    return [line + b"\n" for line in lines], rest


class _ConnState:
    """Loop-side bookkeeping for one registered connection."""

    __slots__ = (
        "sock", "on_frame", "on_batch", "on_close", "on_overflow",
        "on_frame_error", "splitter", "max_buffer",
        "buffer", "pending", "scheduled", "lock", "finished",
    )

    def __init__(
        self,
        sock: socket.socket,
        on_frame: Callable[[bytes], None] | None,
        on_batch: Callable[[list[bytes]], None] | None,
        on_close: Callable[[], None],
        on_overflow: Callable[[], None] | None,
        on_frame_error: Callable[[str], None] | None,
        splitter: Callable[[bytes], tuple[list[bytes], bytes]],
        max_buffer: int,
    ) -> None:
        self.sock = sock
        self.on_frame = on_frame
        self.on_batch = on_batch
        self.on_close = on_close
        self.on_overflow = on_overflow
        self.on_frame_error = on_frame_error
        self.splitter = splitter
        self.max_buffer = max_buffer
        self.buffer = b""
        #: Frame batches (and finally a _CLOSE/_OVERFLOW/_BadFrame sentinel)
        #: awaiting a worker.
        self.pending: deque[Any] = deque()
        #: True while the connection sits in the worker queue or a worker is
        #: draining it — the exclusion that keeps frames in per-conn order.
        self.scheduled = False
        self.lock = threading.Lock()
        self.finished = False


class IoLoop:
    """One selector thread + a bounded worker pool, shared by many servers.

    Args:
        workers: size of the dispatch pool (>= 1).
        queue_size: bound on connections awaiting a worker; the I/O thread
            blocks (backpressure) when all workers are busy and the queue is
            full, which is the intended behaviour — clients see latency, the
            daemon never sees unbounded memory.
    """

    def __init__(self, *, workers: int = DEFAULT_IO_WORKERS, queue_size: int = 1024) -> None:
        if workers < 1:
            raise TransportError(f"IoLoop needs at least one worker: {workers}")
        self.workers = workers
        self._selector: selectors.BaseSelector | None = None
        self._queue: Queue[Any] = Queue(maxsize=queue_size)
        self._conns: dict[socket.socket, _ConnState] = {}
        self._listeners: dict[socket.socket, Callable[[socket.socket], None]] = {}
        self._ops: deque[Callable[[], None]] = deque()
        self._ops_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._worker_threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._collector: Callable[[], None] | None = None
        #: Wall-clock timestamp of the selector thread's last iteration;
        #: the daemon's watchdog reads it to detect a stalled loop (the
        #: select timeout bounds the gap to ~1s when healthy).
        self.last_tick = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "IoLoop":
        if self._thread is not None:
            raise TransportError("IoLoop already started")
        self._stopping.clear()
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, ("wake", None))
        self._thread = threading.Thread(
            target=self._run, name="convgpu-ioloop", daemon=True
        )
        self._thread.start()
        for i in range(self.workers):
            worker = threading.Thread(
                target=self._worker, name=f"convgpu-ioworker-{i}", daemon=True
            )
            worker.start()
            self._worker_threads.append(worker)
        # Queue depth is sampled at scrape time; the weakref owner keeps the
        # process-global registry from pinning a stopped loop alive.
        queue = self._queue

        def collect() -> None:
            _QUEUE_DEPTH.set(queue.qsize())

        self._collector = collect
        REGISTRY.add_collector(collect, owner=self)
        return self

    def stop(self) -> None:
        """Stop the loop, close every registered socket, join all threads."""
        if self._thread is None:
            return
        self._stopping.set()
        self._wake()
        self._thread.join(timeout=5.0)
        self._thread = None
        # The loop thread exited without touching its registrations: close
        # the leftovers here so blocked peers wake with a clean EOF.
        for _sock, state in list(self._conns.items()):
            self._enqueue(state, _CLOSE)
        self._conns.clear()
        for listener in list(self._listeners):
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        # FIFO queue: workers drain every pending frame/close before the
        # stop markers reach them.
        for _ in self._worker_threads:
            self._queue.put(_STOP)
        for worker in self._worker_threads:
            worker.join(timeout=5.0)
        self._worker_threads.clear()
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
            self._selector = None
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._wake_r = self._wake_w = None
        _LOOP_CONNECTIONS.set(0)

    def __enter__(self) -> "IoLoop":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- registration (thread-safe) -----------------------------------------

    def add_listener(
        self, listener: socket.socket, on_accept: Callable[[socket.socket], None]
    ) -> None:
        """Register a listening socket; ``on_accept(conn)`` runs on the loop
        thread for every new connection (it should call
        :meth:`add_connection` and return quickly)."""

        def op() -> None:
            assert self._selector is not None
            self._listeners[listener] = on_accept
            self._selector.register(
                listener, selectors.EVENT_READ, ("listener", on_accept)
            )

        self._post(op)

    def remove_listener(self, listener: socket.socket) -> None:
        """Unregister and close a listening socket (idempotent)."""

        def op() -> None:
            if self._listeners.pop(listener, None) is None:
                return
            if self._selector is not None:
                try:
                    self._selector.unregister(listener)
                except (KeyError, ValueError):
                    pass
            try:
                listener.close()
            except OSError:
                pass

        self._post(op)

    def add_connection(
        self,
        conn: socket.socket,
        *,
        on_frame: Callable[[bytes], None] | None = None,
        on_batch: Callable[[list[bytes]], None] | None = None,
        on_close: Callable[[], None],
        on_overflow: Callable[[], None] | None = None,
        on_frame_error: Callable[[str], None] | None = None,
        split: Callable[[bytes], tuple[list[bytes], bytes]] | None = None,
        max_buffer: int = 64 * 1024,
    ) -> None:
        """Register an accepted connection for read multiplexing.

        Exactly one of ``on_frame`` / ``on_batch`` must be given.
        ``on_frame(frame)`` runs on a worker thread, frames of one
        connection strictly in order; ``on_batch(frames)`` receives every
        complete frame of a readable event (plus any batches already queued
        for the connection) as one list, same ordering guarantee.
        ``on_close()`` runs exactly once when the connection is finished
        (peer EOF, error, :meth:`close_connection` or :meth:`stop`);
        ``on_overflow()`` runs (before close) when the peer exceeded
        ``max_buffer`` without completing a frame.  ``split(buffer)`` is the
        framing function ``(complete_frames, remainder)`` — defaults to
        newline splitting; it may raise :class:`~repro.errors.ProtocolError`
        for unrecoverable framing (bad binary header), which is routed to
        ``on_frame_error(message)`` on a worker and then closes the
        connection.
        """
        if (on_frame is None) == (on_batch is None):
            raise TransportError("exactly one of on_frame/on_batch required")
        state = _ConnState(
            conn, on_frame, on_batch, on_close, on_overflow, on_frame_error,
            split if split is not None else _split_lines, max_buffer,
        )

        def op() -> None:
            if self._selector is None:  # loop already stopped: close out
                self._finish(state)
                return
            self._conns[conn] = state
            _LOOP_CONNECTIONS.inc()
            self._selector.register(conn, selectors.EVENT_READ, ("conn", state))

        self._post(op)

    def close_connection(self, conn: socket.socket) -> None:
        """Drop one connection: pending frames still drain, then it closes."""

        def op() -> None:
            state = self._drop(conn)
            if state is not None:
                self._enqueue(state, _CLOSE)

        self._post(op)

    # -- loop thread ---------------------------------------------------------

    def _post(self, op: Callable[[], None]) -> None:
        if threading.current_thread() is self._thread:
            op()
            return
        if not self.running:
            op()
            return
        with self._ops_lock:
            self._ops.append(op)
        self._wake()

    def _wake(self) -> None:
        wake = self._wake_w
        if wake is not None:
            try:
                # reprolint: ignore[loop-blocking] -- one byte into the
                # socketpair buffer; cannot block, and _run drains it.
                wake.send(b"\0")
            except OSError:
                pass

    def _run_ops(self) -> None:
        while True:
            with self._ops_lock:
                if not self._ops:
                    return
                op = self._ops.popleft()
            try:
                op()
            # reprolint: ignore[swallowed-exception] -- a failed
            # registration op must not take down the loop that serves every
            # other connection; the op's owner observes the broken state.
            except Exception:
                continue

    def _run(self) -> None:
        selector = self._selector
        assert selector is not None
        while not self._stopping.is_set():
            self.last_tick = time.time()
            self._run_ops()
            try:
                events = selector.select(timeout=1.0)
            except OSError:
                continue
            for key, _mask in events:
                kind, payload = key.data
                if kind == "wake":
                    try:
                        # reprolint: ignore[loop-blocking] -- the wake pipe
                        # is non-blocking (setblocking(False) in start()).
                        while self._wake_r is not None and self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif kind == "listener":
                    self._handle_accept(key.fileobj, payload)
                else:
                    self._handle_readable(payload)

    def _handle_accept(
        self, listener: Any, on_accept: Callable[[socket.socket], None]
    ) -> None:
        try:
            # reprolint: ignore[loop-blocking] -- called only on a readiness
            # event, so a connection is already queued; returns immediately.
            conn, _addr = listener.accept()
        except OSError:
            return  # listener closed under us; remove_listener cleans up
        _REC.record(_EV_ACCEPT, a=conn.fileno())
        try:
            on_accept(conn)
        except Exception:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_readable(self, state: _ConnState) -> None:
        # recv/frame stage attribution is sampled (every Nth readable
        # event); the flight-recorder io.read event is always on.
        timed = _stages.io_sample()
        began = _perf_counter() if timed else 0.0
        try:
            # reprolint: ignore[loop-blocking] -- exactly one recv per
            # readiness event: the level-triggered selector guarantees
            # buffered bytes, so this returns without waiting.
            chunk = state.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            chunk = b""
        if not chunk:
            if self._drop(state.sock) is not None:
                self._enqueue(state, _CLOSE)
            return
        received = _perf_counter() if timed else 0.0
        state.buffer += chunk
        try:
            frames, state.buffer = state.splitter(state.buffer)
        except ProtocolError as exc:
            # Unrecoverable framing (bad magic/version/length): the stream
            # position is meaningless from here on.  A worker reports the
            # error in-band and hangs up; the selector thread survives.
            if self._drop(state.sock) is not None:
                _REC.record(_EV_FRAME_ERROR, s=str(exc)[:120], a=state.sock.fileno())
                self._enqueue(state, _BadFrame(str(exc)))
            return
        if timed:
            _stages.observe_stage(_stages.S_RECV, received - began)
            _stages.observe_stage(_stages.S_FRAME, _perf_counter() - received)
        _REC.record(_EV_READ, a=state.sock.fileno(), b=len(chunk), c=len(frames))
        if frames:
            self._enqueue(state, frames)
        if len(state.buffer) > state.max_buffer:
            # A frame that large can never be valid; stop reading and let a
            # worker send the in-band error and hang up (same behaviour as
            # the threaded backend).
            if self._drop(state.sock) is not None:
                _REC.record(_EV_OVERFLOW, a=state.sock.fileno(), b=len(state.buffer))
                self._enqueue(state, _OVERFLOW)

    def _drop(self, conn: socket.socket) -> _ConnState | None:
        """Loop thread only: unregister a connection, once."""
        state = self._conns.pop(conn, None)
        if state is None:
            return None
        _LOOP_CONNECTIONS.dec()
        if self._selector is not None:
            try:
                self._selector.unregister(conn)
            except (KeyError, ValueError):
                pass
        return state

    # -- worker pool ---------------------------------------------------------

    def _enqueue(self, state: _ConnState, item: Any) -> None:
        """Queue one frame/sentinel, scheduling the connection if idle."""
        with state.lock:
            state.pending.append(item)
            if state.scheduled:
                return
            state.scheduled = True
        # reprolint: ignore[loop-blocking] -- deliberate backpressure: when
        # all workers are busy and the queue is full the I/O thread waits,
        # trading client latency for bounded daemon memory (class docstring).
        self._queue.put(state)

    def _worker(self) -> None:
        while True:
            state = self._queue.get()
            if state is _STOP:
                return
            while True:
                with state.lock:
                    if not state.pending:
                        state.scheduled = False
                        break
                    item = state.pending.popleft()
                    if isinstance(item, list):
                        # Merge batches that piled up while this worker was
                        # busy: one dispatch (and one journal fsync) covers
                        # everything the peer has sent so far.
                        while state.pending and isinstance(state.pending[0], list):
                            item = item + state.pending.popleft()
                self._process(state, item)

    def _process(self, state: _ConnState, item: Any) -> None:
        if item is _CLOSE:
            self._finish(state)
            return
        if item is _OVERFLOW:
            if state.on_overflow is not None:
                try:
                    state.on_overflow()
                # reprolint: ignore[swallowed-exception] -- the overflow
                # notifier is best-effort; the close below is the real
                # handling and must still run.
                except Exception:
                    pass
            self._finish(state)
            return
        if isinstance(item, _BadFrame):
            if state.on_frame_error is not None:
                try:
                    state.on_frame_error(item.message)
                # reprolint: ignore[swallowed-exception] -- the in-band
                # error reply is best-effort (the peer may already be gone);
                # the close below is the real handling.
                except Exception:
                    pass
            self._finish(state)
            return
        if state.on_batch is not None:
            try:
                state.on_batch(item)
            # reprolint: ignore[swallowed-exception] -- handler bugs are
            # reported in-band by the server's dispatch; anything escaping
            # to here must not kill the shared worker.
            except Exception:
                pass
            return
        for frame in item:
            try:
                state.on_frame(frame)  # type: ignore[misc]
            # reprolint: ignore[swallowed-exception] -- same as above, and
            # per-frame so one bad frame never drops the rest of its batch.
            except Exception:
                pass

    def _finish(self, state: _ConnState) -> None:
        with state.lock:
            if state.finished:
                return
            state.finished = True
        try:
            _REC.record(_EV_CLOSE, a=state.sock.fileno())
        except OSError:
            pass
        try:
            state.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            state.sock.close()
        except OSError:
            pass
        try:
            state.on_close()
        # reprolint: ignore[swallowed-exception] -- on_close runs exactly
        # once per connection during teardown; a buggy callback must not
        # leak the socket or kill the worker.
        except Exception:
            pass
