"""Byte-size units and parsing helpers.

The paper specifies GPU memory limits in human-readable sizes: the
``--nvidia-memory=<size>`` option, the ``com.nvidia.memory.limit:<size>``
image label, and the 1 GiB default.  All internal bookkeeping in this
repository is in **bytes** (plain ``int``); this module is the single place
where human-readable sizes are parsed and formatted.

Binary (IEC) units are used throughout because the paper speaks in MiB/GiB
(e.g. the 128 MiB rounding of ``cudaMallocManaged``, the 64 MiB + 2 MiB CUDA
context overhead, and the Table III container types of 128..4096 MiB).
"""

from __future__ import annotations

import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "parse_size",
    "format_size",
    "mib",
    "gib",
]

#: One kibibyte in bytes.
KiB: int = 1024
#: One mebibyte in bytes.
MiB: int = 1024 * KiB
#: One gibibyte in bytes.
GiB: int = 1024 * MiB

_SUFFIXES: dict[str, int] = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")


def mib(n: float) -> int:
    """Return ``n`` mebibytes expressed in bytes (rounded to an int)."""
    return int(n * MiB)


def gib(n: float) -> int:
    """Return ``n`` gibibytes expressed in bytes (rounded to an int)."""
    return int(n * GiB)


def parse_size(text: str | int) -> int:
    """Parse a human-readable size into bytes.

    Accepts an ``int`` (returned unchanged, must be non-negative) or a string
    such as ``"512m"``, ``"1GiB"``, ``"128 MB"`` or ``"1073741824"``.  Suffix
    matching is case-insensitive and binary (``1k == 1024``), mirroring how
    Docker parses ``--memory`` style options.

    Raises:
        ValueError: if the string is not a valid size or is negative.
    """
    if isinstance(text, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"not a size: {text!r}")
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"invalid size string: {text!r}")
    number, suffix = match.groups()
    factor = _SUFFIXES.get(suffix.lower())
    if factor is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(number) * factor)


def format_size(nbytes: int) -> str:
    """Format a byte count using the largest exact-or-rounded IEC unit.

    Values that are exact multiples of a unit render without a fraction
    (``"512MiB"``); otherwise one decimal is kept (``"1.5GiB"``).
    """
    if nbytes < 0:
        return "-" + format_size(-nbytes)
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if nbytes >= unit:
            value = nbytes / unit
            if nbytes % unit == 0:
                return f"{nbytes // unit}{name}"
            return f"{value:.1f}{name}"
    return f"{nbytes}B"
