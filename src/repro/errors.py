"""Exception hierarchy for the ConVGPU reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch middleware failures without masking programming errors.
The CUDA substrate deliberately does *not* raise for in-band CUDA errors —
the real Runtime API reports ``cudaError_t`` return codes, and our
reimplementation mirrors that (see :mod:`repro.cuda.errors`).  Exceptions
here cover host-side failures: container lifecycle misuse, protocol
violations, scheduler invariant breaks, and simulation errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ContainerError",
    "ContainerStateError",
    "ImageNotFoundError",
    "VolumeError",
    "SchedulerError",
    "UnknownContainerError",
    "LimitExceededError",
    "JournalError",
    "ProtocolError",
    "TransportError",
    "IpcTimeoutError",
    "IpcDisconnected",
    "SimulationError",
    "ProcessError",
    "GpuError",
    "OutOfMemoryError",
    "InvalidDeviceError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Container substrate
# --------------------------------------------------------------------------


class ContainerError(ReproError):
    """Base class for container-engine failures."""


class ContainerStateError(ContainerError):
    """A lifecycle operation was invalid for the container's current state."""


class ImageNotFoundError(ContainerError):
    """The requested image does not exist in the local registry."""


class VolumeError(ContainerError):
    """Volume creation, mount, or plugin dispatch failed."""


# --------------------------------------------------------------------------
# Scheduler core
# --------------------------------------------------------------------------


class SchedulerError(ReproError):
    """Base class for GPU-memory-scheduler failures."""


class UnknownContainerError(SchedulerError):
    """A message referenced a container id the scheduler has never seen."""


class LimitExceededError(SchedulerError):
    """A registration asked for more memory than the device can ever hold."""


class JournalError(SchedulerError):
    """The write-ahead journal is unreadable, corrupt, or incompatible."""


# --------------------------------------------------------------------------
# IPC
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """A JSON message violated the ConVGPU wire protocol."""


class TransportError(ReproError):
    """The underlying socket/channel failed (closed, truncated frame...)."""


class IpcTimeoutError(TransportError):
    """A blocking IPC call exceeded its deadline (the peer may be wedged).

    Retryable: the request may or may not have been processed, so callers
    must only retry idempotent messages or messages the scheduler dedupes
    (see the orphan-adoption path in ``request_allocation``).
    """


class IpcDisconnected(TransportError):
    """The IPC peer went away (connection refused, reset, or EOF mid-call).

    The canonical signal of a scheduler-daemon crash; clients reconnect
    with backoff and re-issue the interrupted request.
    """


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-simulation kernel errors."""


class ProcessError(SimulationError):
    """A simulated process was driven incorrectly (e.g. resumed twice)."""


# --------------------------------------------------------------------------
# GPU substrate
# --------------------------------------------------------------------------


class GpuError(ReproError):
    """Base class for simulated-GPU failures."""


class OutOfMemoryError(GpuError):
    """The device allocator could not satisfy a request.

    Note: user-facing CUDA calls surface this as ``cudaErrorMemoryAllocation``
    rather than letting this exception escape; the exception form exists for
    direct users of :class:`repro.gpu.memory.GpuMemoryAllocator`.
    """


class InvalidDeviceError(GpuError):
    """A device ordinal was out of range."""


# --------------------------------------------------------------------------
# Cluster extension
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for multi-GPU / multi-node extension failures."""
