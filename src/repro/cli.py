"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's evaluation from a shell, the way a user of the
original system would drive it:

- ``fig4`` / ``fig5`` / ``fig6``  — single-container experiments;
- ``run``      — one multi-container schedule, with the per-container table;
- ``sweep``    — the full Fig. 7/8 grid (Tables IV and V);
- ``deadlock`` — the §I failure scenarios with and without ConVGPU;
- ``crash``    — the daemon-crash fault injection (journal recovery);
- ``export``   — write all results as JSON/CSV into a directory;
- ``daemon``   — run the live scheduler daemon in the foreground
  (``--journal-path`` for crash safety, ``--recover`` to restart from a
  crashed daemon's journal, ``--metrics-port`` for the Prometheus
  endpoint, ``--log-level``/``--log-json`` for structured logging);
- ``recover``  — inspect a journal offline: record counts, the restored
  state table, and an invariant check;
- ``compact``  — rewrite a journal offline down to its newest snapshot
  plus the event tail (fsynced sidecar + atomic rename; the live daemon
  does the same in the background with ``--compact-at-bytes``);
- ``metrics``  — scrape a daemon's ``/metrics`` endpoint and pretty-print;
- ``top``      — live per-container table from a daemon's ``/top.json``
  (plus sampled stage-latency and batch-shape tables from
  ``/metrics.json``);
- ``dump``     — capture a flight-recorder dump from a live daemon
  (HTTP ``/flight.jsonl``) or signal one by pid (SIGUSR2);
- ``doctor``   — post-mortem correlation of a flight dump, a journal and
  an optional metrics snapshot (timeline, wedged containers, stage
  breakdown, slowest traces).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

from repro.experiments import export as export_mod
from repro.experiments.failure import deadlock_experiment, overcommit_experiment
from repro.experiments.multi import DEFAULT_SEED, run_schedule, sweep
from repro.experiments.report import (
    ascii_series_plot,
    format_fig4,
    format_policy_table,
    format_table,
)
from repro.experiments.single import (
    api_response_experiment,
    creation_time_experiment,
    mnist_runtime_experiment,
)
from repro.obs.log import LEVELS, configure_logging
from repro.workloads.arrivals import PAPER_CONTAINER_COUNTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ConVGPU reproduction (CLUSTER 2017) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="API response time (Fig. 4)")
    fig4.add_argument("--repeats", type=int, default=10)
    fig4.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig5 = sub.add_parser("fig5", help="container creation time (Fig. 5)")
    fig5.add_argument("--repeats", type=int, default=10)
    fig5.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig6 = sub.add_parser("fig6", help="MNIST trainer runtime (Fig. 6)")
    fig6.add_argument("--steps", type=int, default=20_000)

    run = sub.add_parser("run", help="one multi-container schedule")
    run.add_argument("--policy", default="BF")
    run.add_argument("--count", type=int, default=16)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="write the run as a Chrome trace-event file (about://tracing)",
    )

    sweep_cmd = sub.add_parser("sweep", help="the full Fig. 7/8 grid")
    sweep_cmd.add_argument("--repeats", type=int, default=6)
    sweep_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep_cmd.add_argument(
        "--counts",
        default=",".join(str(c) for c in PAPER_CONTAINER_COUNTS),
        help="comma-separated container counts",
    )

    sub.add_parser("deadlock", help="the §I failure scenarios")

    crash = sub.add_parser("crash", help="daemon-crash fault injection")
    crash.add_argument("--policy", default="FIFO")

    export_cmd = sub.add_parser("export", help="write JSON/CSV results")
    export_cmd.add_argument("--out", default="results")
    export_cmd.add_argument("--repeats", type=int, default=6)
    export_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)

    daemon_cmd = sub.add_parser(
        "daemon", help="run the live scheduler daemon (foreground)"
    )
    daemon_cmd.add_argument(
        "--journal-path", default=None,
        help="write-ahead journal file (enables crash recovery)",
    )
    daemon_cmd.add_argument(
        "--recover", action="store_true",
        help="restore state from --journal-path instead of starting fresh",
    )
    daemon_cmd.add_argument(
        "--compact-at-bytes", type=int, default=None, metavar="BYTES",
        help="background-compact the journal (meta + newest snapshot + "
             "tail, swapped in by atomic rename) whenever it outgrows "
             "BYTES; bounds file size and restart cost (default: off)",
    )
    daemon_cmd.add_argument("--base-dir", default=None,
                            help="socket directory (temp dir when omitted)")
    daemon_cmd.add_argument("--transport", choices=("unix", "tcp"), default="unix")
    daemon_cmd.add_argument(
        "--io", choices=("loop", "threads"), default="loop",
        help="I/O backend: one shared selector loop + worker pool (default) "
             "or the thread-per-connection ablation baseline",
    )
    daemon_cmd.add_argument(
        "--io-workers", type=int, default=4, metavar="N",
        help="dispatch worker pool size for --io loop (default: 4)",
    )
    daemon_cmd.add_argument(
        "--codec", choices=("auto", "binary", "json"), default="auto",
        help="wire codec: auto (default) negotiates binary per connection "
             "and falls back to JSON for old peers; json pins the "
             "trace-friendly debug mode (docs/PROTOCOL.md)",
    )
    daemon_cmd.add_argument("--host", default="127.0.0.1")
    daemon_cmd.add_argument("--port", type=int, default=0,
                            help="control port for --transport tcp (0 = ephemeral)")
    daemon_cmd.add_argument("--total-memory", type=int, default=4096,
                            help="GPU pool size in MiB")
    daemon_cmd.add_argument("--policy", default="FIFO")
    daemon_cmd.add_argument(
        "--policy-plugin", action="append", default=[], metavar="MODULE",
        dest="policy_plugins",
        help="import MODULE before resolving --policy; the module registers "
             "out-of-tree policies via repro.register_policy (repeatable)",
    )
    daemon_cmd.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="reap containers silent for this many seconds (off by default)",
    )
    daemon_cmd.add_argument("--reap-interval", type=float, default=1.0)
    daemon_cmd.add_argument(
        "--ready-file", default=None,
        help="write a JSON line with the serving endpoints once listening",
    )
    daemon_cmd.add_argument(
        "--metrics-port", type=int, default=0, metavar="PORT",
        help="observability HTTP port on 127.0.0.1 (0 = ephemeral; serves "
             "/metrics, /metrics.json, /top.json, /flight.jsonl, /healthz)",
    )
    daemon_cmd.add_argument(
        "--flight-dump", default=None, metavar="PATH",
        help="flight-recorder dump file (default: <base-dir>/flight.jsonl); "
             "written on SIGUSR2, on a crashed daemon thread, and on an "
             "I/O-loop watchdog stall",
    )
    daemon_cmd.add_argument(
        "--watchdog-interval", type=float, default=5.0, metavar="SECONDS",
        help="I/O-loop stall threshold for the flight-dump watchdog "
             "(default: 5)",
    )
    daemon_cmd.add_argument(
        "--no-metrics", action="store_true",
        help="disable the observability HTTP endpoint entirely",
    )
    daemon_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="sharded mode: supervise N shard daemon processes (one "
             "scheduler each) behind a consistent-hash router, and serve "
             "the router's control socket as this deployment's address",
    )
    daemon_cmd.add_argument(
        "--shard-of", default=None, metavar="I/N",
        help="run as shard I of an N-shard control plane (normally passed "
             "by the shard supervisor, not by hand); stamps the shard "
             "identity into handshake and registration replies",
    )
    daemon_cmd.add_argument(
        "--log-level", choices=tuple(LEVELS), default="info",
        help="structured-log threshold (default: info)",
    )
    daemon_cmd.add_argument(
        "--log-json", dest="log_json", action="store_true", default=True,
        help="emit logs as JSON lines (default)",
    )
    daemon_cmd.add_argument(
        "--no-log-json", dest="log_json", action="store_false",
        help="emit human-readable one-line logs instead of JSON",
    )

    recover_cmd = sub.add_parser(
        "recover", help="inspect a scheduler journal offline"
    )
    recover_cmd.add_argument(
        "journal",
        help="journal file, a directory of per-shard journals, or a glob "
             "(quote it) — multiple journals print a per-shard summary",
    )
    recover_cmd.add_argument(
        "--no-verify", action="store_true",
        help="skip the accounting-invariant check on the restored state",
    )
    recover_cmd.add_argument(
        "--policy-plugin", action="append", default=[], metavar="MODULE",
        dest="policy_plugins",
        help="import MODULE before restoring (a journal written under a "
             "plug-in policy needs it registered to rebuild the scheduler)",
    )

    compact_cmd = sub.add_parser(
        "compact", help="compact a journal offline (newest snapshot + tail)"
    )
    compact_cmd.add_argument("journal", help="path to the journal file")
    compact_cmd.add_argument(
        "--policy-plugin", action="append", default=[], metavar="MODULE",
        dest="policy_plugins",
        help="import MODULE first (a journal with no snapshot yet is "
             "replayed to synthesize one, which needs its policy registered)",
    )

    metrics_cmd = sub.add_parser(
        "metrics", help="scrape a daemon's /metrics endpoint and pretty-print"
    )
    metrics_cmd.add_argument(
        "url",
        help="daemon observability URL (host:port or http://host:port[/metrics])",
    )
    metrics_cmd.add_argument(
        "--raw", action="store_true",
        help="print the Prometheus text verbatim instead of pretty-printing",
    )
    metrics_cmd.add_argument(
        "--buckets", action="store_true",
        help="include per-bucket histogram rows (hidden by default)",
    )
    metrics_cmd.add_argument("--timeout", type=float, default=5.0)

    top_cmd = sub.add_parser(
        "top", help="live per-container table from a daemon's /top.json"
    )
    top_cmd.add_argument(
        "url",
        help="daemon observability URL (host:port or http://host:port[/top.json])",
    )
    top_cmd.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top_cmd.add_argument(
        "--iterations", type=int, default=0,
        help="number of refreshes before exiting (0 = until interrupted)",
    )
    top_cmd.add_argument("--timeout", type=float, default=5.0)

    dump_cmd = sub.add_parser(
        "dump", help="capture a flight-recorder dump from a live daemon"
    )
    dump_cmd.add_argument(
        "target",
        help="daemon observability URL (host:port) to fetch /flight.jsonl "
             "from, or a daemon pid to signal with SIGUSR2",
    )
    dump_cmd.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the fetched dump here (default: stdout; ignored for a "
             "pid target, which writes to the daemon's --flight-dump path)",
    )
    dump_cmd.add_argument("--timeout", type=float, default=5.0)

    doctor_cmd = sub.add_parser(
        "doctor", help="post-mortem report from a flight dump (+ journal)"
    )
    doctor_cmd.add_argument("dump", help="flight-recorder dump file (JSONL)")
    doctor_cmd.add_argument(
        "--journal", default=None, metavar="PATH",
        help="scheduler journal to merge into the timeline and replay for "
             "wedged-container detection",
    )
    doctor_cmd.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="a saved /metrics.json snapshot to cross-check stage totals",
    )
    doctor_cmd.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="slowest traces to report (default: 10)",
    )
    doctor_cmd.add_argument(
        "--tail", type=int, default=40, metavar="N",
        help="timeline entries to print (default: 40)",
    )
    doctor_cmd.add_argument(
        "--json", action="store_true",
        help="emit the full structured report as JSON instead of text",
    )

    lint_cmd = sub.add_parser(
        "lint", help="reprolint: AST invariant checks (DESIGN.md §12)"
    )
    lint_cmd.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    lint_cmd.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="fmt",
    )
    lint_cmd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: <root>/.reprolint.json when present)",
    )
    lint_cmd.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too",
    )
    lint_cmd.add_argument(
        "--write-baseline", action="store_true",
        help="merge the current findings into the baseline (pruning "
             "stale in-scope entries) and exit 0",
    )
    lint_cmd.add_argument(
        "--prune-baseline", action="store_true",
        help="drop stale baseline entries without grandfathering "
             "anything new, then report as usual",
    )
    lint_cmd.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only report findings in files changed since REF (default "
             "HEAD, including uncommitted work); whole-program rules "
             "(lock-order, thread-spawn, drift) still report everywhere",
    )

    san_cmd = sub.add_parser(
        "san",
        help="reprosan: run pytest under the lockset race sanitizer "
             "(DESIGN.md §16)",
    )
    san_cmd.add_argument(
        "pytest_args", nargs="*", default=["tests/core"],
        help="arguments forwarded to pytest (default: tests/core)",
    )
    san_cmd.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="fmt",
    )
    san_cmd.add_argument(
        "--backend", choices=("auto", "settrace", "monitoring"),
        default="auto",
        help="write tracer: sys.monitoring on 3.12+, sys.settrace below "
             "(default: auto)",
    )
    san_cmd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file shared with repro lint "
             "(default: <root>/.reprolint.json)",
    )
    san_cmd.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too",
    )
    san_cmd.add_argument(
        "--write-baseline", action="store_true",
        help="merge current san findings into the baseline (pruning "
             "stale san entries; lint entries untouched) and exit 0",
    )
    return parser


def _cmd_fig4(args) -> int:
    result = api_response_experiment(repeats=args.repeats, mode=args.mode)
    print(format_fig4(result.with_convgpu, result.without_convgpu))
    return 0


def _cmd_fig5(args) -> int:
    result = creation_time_experiment(repeats=args.repeats, mode=args.mode)
    print(
        format_table(
            ("series", "creation time (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.4f}"),
                ("with ConVGPU", f"{result.with_convgpu:.4f}"),
                ("overhead", f"{result.overhead:.4f} ({result.overhead_percent:.1f}%)"),
            ],
            title="Fig. 5 — creation time of the container",
        )
    )
    return 0


def _cmd_fig6(args) -> int:
    from repro.workloads.mnist import MnistConfig

    result = mnist_runtime_experiment(MnistConfig().scaled(args.steps))
    print(
        format_table(
            ("series", "runtime (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.2f}"),
                ("with ConVGPU", f"{result.with_convgpu:.2f}"),
                ("overhead", f"{result.overhead_percent:.2f}%"),
            ],
            title="Fig. 6 — overall runtime of TensorFlow MNIST program",
        )
    )
    return 0


def _cmd_run(args) -> int:
    capture = args.chrome_trace is not None
    result = run_schedule(
        args.policy, args.count, args.seed,
        capture_trace=capture, capture_events=capture,
    )
    if capture:
        from repro.obs.chrome import write_chrome_trace

        written = write_chrome_trace(
            args.chrome_trace,
            spans=result.spans,
            scheduler_events=result.events,
            metadata={
                "policy": args.policy,
                "containers": result.count,
                "seed": result.seed,
            },
        )
        print(f"wrote {written} trace events to {args.chrome_trace}")
    print(
        format_table(
            ("container", "type", "submitted", "finished", "suspended (s)", "exit"),
            [
                (
                    o.name,
                    o.type_name,
                    f"{o.submitted_at:.0f}s",
                    f"{o.finished_at:.1f}s",
                    f"{o.suspended:.1f}",
                    str(o.exit_code),
                )
                for o in result.outcomes
            ],
            title=(
                f"{args.policy}: {result.count} containers, seed {result.seed} — "
                f"finished {result.finished_time:.1f}s, "
                f"avg suspended {result.avg_suspended:.1f}s, "
                f"failures {result.failures}"
            ),
        )
    )
    return 0 if result.failures == 0 else 1


def _cmd_sweep(args) -> int:
    counts = tuple(int(token) for token in args.counts.split(","))
    result = sweep(counts=counts, repeats=args.repeats, seed=args.seed)
    print(
        format_policy_table(
            result.finished, result.counts,
            title="Table IV — finished time (s)",
        )
    )
    print()
    print(
        format_policy_table(
            result.suspended, result.counts,
            title="Table V — average suspended time (s)",
        )
    )
    print()
    print(
        ascii_series_plot(
            {p: result.finished_row(p) for p in result.policies},
            list(result.counts),
            title="Fig. 7 — finished time",
        )
    )
    return 0


def _cmd_deadlock(args) -> int:
    for label, experiment in (
        ("over-commit", overcommit_experiment),
        ("deadlock", deadlock_experiment),
    ):
        for managed in (False, True):
            outcome = experiment(managed)
            mode = "with ConVGPU" if managed else "without ConVGPU"
            print(
                f"{label:11s} {mode:16s} exits={outcome.exit_codes} "
                f"deadlocked={outcome.deadlocked} wall={outcome.wall_time:.1f}s"
            )
    return 0


def _cmd_crash(args) -> int:
    from repro.experiments.failure import daemon_crash_experiment

    outcome = daemon_crash_experiment(policy=args.policy)
    print(
        format_table(
            ("check", "result"),
            [
                ("state identical after recovery", str(outcome.state_identical)),
                ("wrapper reattached", str(outcome.reattached)),
                ("orphaned request adopted", str(outcome.adopted)),
                ("paused allocation resumed", str(outcome.resumed)),
                ("reconnect attempts", str(outcome.reconnect_attempts)),
                ("events journaled at kill", str(outcome.journaled_events)),
            ],
            title=f"daemon-crash fault injection ({args.policy})",
        )
    )
    survived = (
        outcome.state_identical
        and outcome.reattached
        and outcome.adopted
        and outcome.resumed
    )
    return 0 if survived else 1


def _load_policy_plugins(modules) -> None:
    """Import each plug-in module; importing is registration (the module
    calls ``repro.register_policy`` at top level)."""
    import importlib

    from repro.core.scheduler.policies import POLICIES

    for name in modules:
        before = set(POLICIES)
        importlib.import_module(name)
        added = sorted(set(POLICIES) - before)
        if added:
            print(f"policy plugin {name}: registered {', '.join(added)}")


def _parse_shard_of(text: str) -> tuple[int, int]:
    """Parse ``--shard-of I/N``; raises ValueError on anything malformed."""
    i_text, sep, n_text = text.partition("/")
    if not sep:
        raise ValueError(f"--shard-of wants I/N, got {text!r}")
    shard_id, shard_count = int(i_text), int(n_text)
    if not 0 <= shard_id < shard_count:
        raise ValueError(f"shard {shard_id} out of range for {shard_count} shards")
    return shard_id, shard_count


def _cmd_daemon(args) -> int:
    from repro.core.scheduler import (
        GpuMemoryScheduler,
        HeartbeatMonitor,
        SchedulerDaemon,
        SchedulerJournal,
        make_policy,
    )
    from repro.units import MiB

    if args.recover and args.journal_path is None:
        print("--recover requires --journal-path", file=sys.stderr)
        return 2
    if args.shards is not None and args.shard_of is not None:
        print("--shards and --shard-of are mutually exclusive", file=sys.stderr)
        return 2
    configure_logging(level=args.log_level, json_mode=args.log_json)
    _load_policy_plugins(args.policy_plugins)
    if args.shards is not None:
        return _cmd_daemon_sharded(args)
    shard_id = shard_count = None
    if args.shard_of is not None:
        try:
            shard_id, shard_count = _parse_shard_of(args.shard_of)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    monitor = (
        HeartbeatMonitor(timeout=args.heartbeat_timeout)
        if args.heartbeat_timeout is not None
        else None
    )
    common = {
        "base_dir": args.base_dir,
        "transport": args.transport,
        "io": args.io,
        "io_workers": args.io_workers,
        "codec": args.codec,
        "host": args.host,
        "control_port": args.port,
        "monitor": monitor,
        "reap_interval": args.reap_interval,
        "metrics_port": None if args.no_metrics else args.metrics_port,
        "flight_dump": args.flight_dump,
        "watchdog_interval": args.watchdog_interval,
        "shard_id": shard_id,
        "shard_count": shard_count,
    }
    # Wall clock, not monotonic: journaled timestamps must stay comparable
    # across a restart (suspension accounting spans the crash).
    if args.recover:
        daemon = SchedulerDaemon.recover(
            args.journal_path,
            clock=time.time,
            compact_at_bytes=args.compact_at_bytes,
            **common,
        )
    else:
        scheduler = GpuMemoryScheduler(
            args.total_memory * MiB, make_policy(args.policy), clock=time.time
        )
        journal = None
        if args.journal_path is not None:
            journal = SchedulerJournal(
                args.journal_path, compact_at_bytes=args.compact_at_bytes
            )
            journal.attach(scheduler)
        daemon = SchedulerDaemon(scheduler, journal=journal, **common)
    daemon.start()

    # Post-mortem hooks: SIGUSR2 dumps the flight recorder on demand, and
    # an uncaught exception on any daemon thread dumps before the thread
    # dies — both land at the same path `repro doctor` reads.
    flight_path = args.flight_dump or os.path.join(daemon.base_dir, "flight.jsonl")
    signal.signal(signal.SIGUSR2, lambda *_: daemon.dump_flight("sigusr2"))
    previous_excepthook = threading.excepthook

    def _crash_hook(hook_args) -> None:
        try:
            daemon.dump_flight("crash")
        except OSError:
            pass
        previous_excepthook(hook_args)

    threading.excepthook = _crash_hook

    endpoints = {
        "pid": os.getpid(),
        "transport": args.transport,
        "io": args.io,
        "codec": args.codec,
        "base_dir": daemon.base_dir,
        "control": daemon.control_path,
        "flight_dump": flight_path,
    }
    if shard_id is not None:
        endpoints["shard"] = shard_id
        endpoints["shards"] = shard_count
    if args.transport == "tcp":
        endpoints["host"] = daemon.host
        endpoints["port"] = daemon.control_port
    if daemon.metrics_server is not None:
        endpoints["metrics"] = daemon.metrics_server.url + "/metrics"
    if args.ready_file is not None:
        # Write-then-rename so a polling reader never sees a partial file.
        staging = args.ready_file + ".tmp"
        with open(staging, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(endpoints) + "\n")
        os.replace(staging, args.ready_file)
    print(f"daemon serving: {json.dumps(endpoints)}", flush=True)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    daemon.stop()
    return 0


def _cmd_daemon_sharded(args) -> int:
    """``repro daemon --shards N``: supervisor + router in the foreground."""
    import tempfile

    from repro.cluster.router import ShardEndpoint, ShardRouter
    from repro.cluster.supervisor import ShardSupervisor

    if args.journal_path is not None or args.recover:
        # Sharded mode always journals, one file per shard under the base
        # directory; a single shared journal path is a category error.
        print(
            "--shards manages one journal per shard under --base-dir; "
            "--journal-path/--recover do not apply",
            file=sys.stderr,
        )
        return 2
    base_dir = args.base_dir or tempfile.mkdtemp(prefix="convgpu-shards-")
    supervisor = ShardSupervisor(
        args.shards,
        base_dir=os.path.join(base_dir, "shards"),
        transport=args.transport,
        codec=args.codec,
        io_workers=args.io_workers,
        total_memory_mib=args.total_memory,
        policy=args.policy,
        extra_args=tuple(
            arg
            for module in args.policy_plugins
            for arg in ("--policy-plugin", module)
        ),
    )
    supervisor.start()
    try:
        router = ShardRouter(
            [
                ShardEndpoint.from_ready(shard_id, supervisor.endpoints(shard_id))
                for shard_id in range(args.shards)
            ],
            base_dir=os.path.join(base_dir, "router"),
            host=args.host,
            codec=args.codec,
            io_workers=args.io_workers,
            metrics_port=None if args.no_metrics else args.metrics_port,
        )
        router.start()
    except Exception:
        supervisor.stop()
        raise
    # Restarted shards re-route through the router (fresh control/data
    # endpoints); the supervisor reads this attribute per restart.
    supervisor.on_restart = router.refresh_shard

    endpoints = {
        "pid": os.getpid(),
        "transport": args.transport,
        "codec": args.codec,
        "base_dir": base_dir,
        "control": router.control_path,
        "shards": args.shards,
        "shard_endpoints": {
            str(shard_id): supervisor.endpoints(shard_id)
            for shard_id in range(args.shards)
        },
    }
    if args.transport == "tcp":
        endpoints["host"] = router.host
        endpoints["port"] = router.control_port
    if router.metrics_server is not None:
        endpoints["metrics"] = router.metrics_server.url + "/metrics"
    if args.ready_file is not None:
        staging = args.ready_file + ".tmp"
        with open(staging, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(endpoints) + "\n")
        os.replace(staging, args.ready_file)
    print(f"router serving: {json.dumps(endpoints)}", flush=True)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    router.stop()
    supervisor.stop()
    return 0


def _resolve_journals(target: str) -> list[str]:
    """One journal path, or every per-shard journal of a directory/glob."""
    import glob as globmod

    if os.path.isdir(target):
        return sorted(globmod.glob(os.path.join(target, "*.journal")))
    if any(ch in target for ch in "*?["):
        return sorted(globmod.glob(target))
    return [target]


def _cmd_recover_many(args, journals: list[str]) -> int:
    """Per-shard summary table for a sharded deployment's journal set."""
    from repro.core.scheduler import journal_summary, restore

    rows = []
    failed = False
    for path in journals:
        summary = journal_summary(path)
        meta = summary["meta"] or {}
        if summary["corrupt"] is not None:
            rows.append((os.path.basename(path), str(meta.get("policy")),
                         str(summary["events"]), "-", "-",
                         f"CORRUPT: {summary['corrupt']}"))
            failed = True
            continue
        scheduler = restore(path)
        containers = len(scheduler.containers())
        status = "OK"
        if not args.no_verify:
            try:
                scheduler.check_invariants()
            except Exception as exc:
                status = f"INVARIANT FAIL: {exc}"
                failed = True
        rows.append((
            os.path.basename(path),
            str(meta.get("policy")),
            str(summary["events"]),
            str(summary["snapshots"]),
            str(containers),
            status,
        ))
    print(
        format_table(
            ("journal", "policy", "events", "snapshots", "containers", "status"),
            rows,
            title=f"shard journals ({len(journals)})",
        )
    )
    return 1 if failed else 0


def _cmd_recover(args) -> int:
    from repro.core.scheduler import (
        format_snapshot,
        journal_summary,
        restore,
        snapshot,
    )

    _load_policy_plugins(args.policy_plugins)
    journals = _resolve_journals(args.journal)
    if not journals:
        print(f"no journals match {args.journal!r}", file=sys.stderr)
        return 1
    if len(journals) > 1:
        return _cmd_recover_many(args, journals)
    args.journal = journals[0]
    summary = journal_summary(args.journal)
    meta = summary["meta"] or {}
    print(
        format_table(
            ("field", "value"),
            [
                ("journal", summary["path"]),
                ("policy", str(meta.get("policy"))),
                ("total memory (MiB)", str((meta.get("total_memory") or 0) // (1 << 20))),
                ("events", str(summary["events"])),
                ("snapshots", str(summary["snapshots"])),
                ("torn lines dropped", str(summary["torn_lines"])),
            ],
            title="journal summary",
        )
    )
    for name, count in summary["event_counts"].items():
        print(f"  {name:24s} {count}")
    if summary["corrupt"] is not None:
        # A terminated-but-unparseable line is real corruption, not a torn
        # write; the counts above stop at that line.
        print(f"\ncorruption detected: {summary['corrupt']}", file=sys.stderr)
        print("restore aborted; repair or truncate the journal first",
              file=sys.stderr)
        return 1
    scheduler = restore(args.journal)
    print()
    print(format_snapshot(snapshot(scheduler)))
    if not args.no_verify:
        scheduler.check_invariants()
        print("\ninvariants: OK")
    return 0


def _cmd_compact(args) -> int:
    from repro.core.scheduler import compact_journal
    from repro.errors import JournalError

    _load_policy_plugins(args.policy_plugins)
    try:
        stats = compact_journal(args.journal)
    except JournalError as exc:
        print(f"compaction failed (journal untouched): {exc}", file=sys.stderr)
        return 1
    print(
        format_table(
            ("field", "value"),
            [
                ("journal", stats["path"]),
                ("bytes before", str(stats["bytes_before"])),
                ("bytes after", str(stats["bytes_after"])),
                ("events kept", str(stats["events_kept"])),
                ("events dropped", str(stats["events_dropped"])),
                ("snapshots dropped", str(stats["snapshots_dropped"])),
                ("torn lines dropped", str(stats["torn_dropped"])),
            ],
            title="journal compaction",
        )
    )
    return 0


def _obs_url(url: str, path: str) -> str:
    """Normalize ``host:port``/base URLs to a full observability endpoint."""
    if "://" not in url:
        url = "http://" + url
    scheme, _, rest = url.partition("://")
    host, slash, existing = rest.partition("/")
    if slash and existing:
        return url  # caller gave an explicit path; trust it
    return f"{scheme}://{host}{path}"


def _http_get(url: str, timeout: float) -> str:
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _cmd_metrics(args) -> int:
    from repro.obs.exporters import parse_prometheus

    url = _obs_url(args.url, "/metrics")
    try:
        text = _http_get(url, args.timeout)
    except OSError as exc:
        print(f"scrape of {url} failed: {exc}", file=sys.stderr)
        return 1
    if args.raw:
        print(text, end="")
        return 0
    families = parse_prometheus(text)
    for name in sorted(families):
        family = families[name]
        header = f"{name} ({family['type']})"
        if family["help"]:
            header += f" — {family['help']}"
        print(header)
        for key in sorted(family["samples"]):
            if key.startswith("_bucket") and not args.buckets:
                continue
            value = family["samples"][key]
            shown = int(value) if float(value).is_integer() else value
            print(f"  {key or '(no labels)'} = {shown}")
    return 0


def _render_top(rows: list) -> str:
    from repro.units import format_size

    return format_table(
        ("container", "limit", "reserved", "used", "inflight",
         "pending", "pauses", "suspended (s)"),
        [
            (
                str(row.get("container", "?")),
                format_size(row.get("limit", 0)),
                format_size(row.get("reserved", 0)),
                format_size(row.get("used", 0)),
                format_size(row.get("inflight", 0)),
                str(row.get("pending", 0)),
                str(row.get("pauses", 0)),
                f"{row.get('suspended_s', 0.0):.1f}",
            )
            for row in rows
        ],
        title=f"{len(rows)} managed container(s)",
    )


def _render_stage_tables(metrics: dict) -> str:
    """Stage-latency + batch-shape tables from a ``/metrics.json`` payload."""
    sections: list[str] = []
    stage_family = metrics.get("convgpu_stage_seconds", {})
    rows = []
    for entry in stage_family.get("samples", []):
        count = entry.get("count", 0)
        if not count:
            continue
        mean = entry.get("sum", 0.0) / count
        worst = ""
        exemplars = entry.get("exemplars") or []
        if exemplars:
            top = max(exemplars, key=lambda e: e["value"])
            worst = f"{top['exemplar']} ({top['value'] * 1e3:.2f}ms)"
        rows.append(
            (entry.get("stage", "?"), str(count), f"{mean * 1e6:.1f}", worst)
        )
    if rows:
        sections.append(
            format_table(
                ("stage", "samples", "mean (µs)", "worst exemplar"),
                rows,
                title="stage latency (sampled)",
            )
        )
    batch_rows = []
    for name, label in (
        ("convgpu_ipc_batch_depth", "batch depth"),
        ("convgpu_ipc_coalesced_reply_bytes", "coalesced reply bytes"),
    ):
        for entry in metrics.get(name, {}).get("samples", []):
            count = entry.get("count", 0)
            if not count:
                continue
            batch_rows.append(
                (
                    label,
                    entry.get("transport", "?"),
                    str(count),
                    f"{entry.get('sum', 0.0) / count:.1f}",
                )
            )
    if batch_rows:
        sections.append(
            format_table(
                ("histogram", "transport", "observations", "mean"),
                batch_rows,
                title="batch shape",
            )
        )
    return "\n".join(sections)


def _cmd_top(args) -> int:
    url = _obs_url(args.url, "/top.json")
    metrics_url = _obs_url(args.url, "/metrics.json")
    refreshes = 0
    try:
        while True:
            try:
                rows = json.loads(_http_get(url, args.timeout))
            except OSError as exc:
                print(f"poll of {url} failed: {exc}", file=sys.stderr)
                return 1
            print(_render_top(rows), flush=True)
            try:
                metrics = json.loads(_http_get(metrics_url, args.timeout))
            except (OSError, ValueError):
                metrics = {}  # older daemon without /metrics.json: table only
            tables = _render_stage_tables(metrics)
            if tables:
                print(tables, flush=True)
            refreshes += 1
            if args.iterations and refreshes >= args.iterations:
                return 0
            time.sleep(args.interval)
            print()
    except KeyboardInterrupt:
        return 0


def _cmd_dump(args) -> int:
    if args.target.isdigit():
        # A pid: ask the daemon to dump locally (its SIGUSR2 handler writes
        # to the path announced in its ready file / startup line).
        try:
            os.kill(int(args.target), signal.SIGUSR2)
        except (OSError, ProcessLookupError) as exc:
            print(f"signal to pid {args.target} failed: {exc}", file=sys.stderr)
            return 1
        print(f"sent SIGUSR2 to {args.target}; the daemon writes its "
              f"--flight-dump path")
        return 0
    url = _obs_url(args.target, "/flight.jsonl")
    try:
        text = _http_get(url, args.timeout)
    except OSError as exc:
        print(f"fetch of {url} failed: {exc}", file=sys.stderr)
        return 1
    if args.out is None:
        print(text, end="")
        return 0
    staging = args.out + ".tmp"
    with open(staging, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(staging, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_doctor(args) -> int:
    from repro.obs.doctor import analyze, render

    try:
        report = analyze(
            args.dump,
            journal_path=args.journal,
            metrics_path=args.metrics,
            top=args.top,
        )
    except (OSError, ValueError) as exc:
        print(f"doctor failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=repr))
    else:
        print(render(report, tail=args.tail), end="")
    return 1 if report["wedged"] else 0


def _cmd_export(args) -> int:
    os.makedirs(args.out, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {path}")

    sweep_result = sweep(repeats=args.repeats, seed=args.seed)
    write("sweep.json", export_mod.sweep_to_json(sweep_result))
    write("table4_finished.csv", export_mod.sweep_to_csv(sweep_result, "finished"))
    write("table5_suspended.csv", export_mod.sweep_to_csv(sweep_result, "suspended"))
    write("sweep_p95_suspended.csv", export_mod.sweep_to_csv(sweep_result, "p95_suspended"))
    write("sweep_slowdown.csv", export_mod.sweep_to_csv(sweep_result, "slowdown"))
    write("sweep_fairness.csv", export_mod.sweep_to_csv(sweep_result, "fairness"))
    fig4 = api_response_experiment(repeats=10, mode="sim")
    fig5 = creation_time_experiment(repeats=10, mode="sim")
    fig6 = mnist_runtime_experiment()
    write("single.json", export_mod.single_results_to_json(fig4, fig5, fig6))
    one_run = run_schedule("BF", 16, args.seed)
    write("schedule_bf_16.json", export_mod.schedule_to_json(one_run))
    return 0


def _analyzed_rels(paths, root: str) -> list[str]:
    """Repo-relative names of every file a lint run covered — the scope
    for baseline pruning must include the *clean* files too, or stale
    entries for fixed findings would never be dropped."""
    from repro.analysis.engine import collect_files

    try:
        files = collect_files(paths)
    except FileNotFoundError:
        return []
    return [os.path.relpath(p, root).replace(os.sep, "/") for p in files]


def _render_findings(fmt: str, findings, *, grandfathered: int, tool: str) -> str:
    from repro.analysis import render_json, render_text
    from repro.analysis.sarif import render_sarif

    if fmt == "sarif":
        return render_sarif(findings, tool_name=tool)
    if fmt == "json":
        return render_json(findings, grandfathered=grandfathered)
    return render_text(findings, grandfathered=grandfathered)


def _cmd_lint(args) -> int:
    from repro.analysis import (
        analyze_paths,
        apply_baseline,
        assign_fingerprints,
        find_root,
        load_baseline_entries,
        prune_baseline,
        stale_entries,
        write_baseline,
    )
    from repro.analysis.engine import changed_files, scope_to_changed

    try:
        findings = assign_fingerprints(analyze_paths(args.paths))
    except FileNotFoundError as exc:
        print(f"no such file or directory: {exc}", file=sys.stderr)
        return 2
    root = find_root(args.paths)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(root, ".reprolint.json")
    analyzed = {finding.path for finding in findings}
    for source_rel in _analyzed_rels(args.paths, root):
        analyzed.add(source_rel)

    def in_scope(entry: dict) -> bool:
        # This run owns the entries it can re-derive: static rules over
        # the analyzed files.  san-* entries belong to `repro san`.
        return (
            not entry.get("rule", "").startswith("san-")
            and entry.get("path") in analyzed
        )

    if args.write_baseline:
        total, pruned = write_baseline(baseline_path, findings, in_scope)
        print(
            f"wrote {total} finding(s) to {baseline_path}"
            + (f" ({pruned} stale pruned)" if pruned else "")
        )
        return 0
    entries = load_baseline_entries(baseline_path)
    stale = stale_entries(entries, findings, in_scope)
    if args.prune_baseline and stale:
        removed = prune_baseline(baseline_path, stale)
        print(f"pruned {removed} stale entr"
              f"{'y' if removed == 1 else 'ies'} from {baseline_path}")
        entries = load_baseline_entries(baseline_path)
        stale = []
    grandfathered = 0
    if not args.no_baseline:
        baseline = {entry["fingerprint"] for entry in entries}
        findings, grandfathered = apply_baseline(findings, baseline)
        if stale:
            print(
                f"warning: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} in {baseline_path} "
                "no longer match any finding; rerun with --write-baseline "
                "or --prune-baseline",
                file=sys.stderr,
            )
    if args.changed is not None:
        findings = scope_to_changed(findings, changed_files(root, args.changed))
    print(_render_findings(args.fmt, findings, grandfathered=grandfathered,
                           tool="reprolint"))
    return 1 if findings else 0


def _cmd_san(args) -> int:
    from repro.analysis import (
        apply_baseline,
        assign_fingerprints,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.san import SanSession, apply_source_suppressions

    try:
        import pytest
    except ImportError:  # pragma: no cover - pytest ships with dev envs
        print("repro san needs pytest on the import path", file=sys.stderr)
        return 2

    try:
        session = SanSession(backend=args.backend)
    except RuntimeError as exc:
        print(f"repro san: {exc}", file=sys.stderr)
        return 2
    with session:
        if args.fmt == "text":
            pytest_rc = pytest.main(list(args.pytest_args))
        else:
            # Machine-readable formats own stdout; pytest's progress
            # moves to stderr so `repro san --format sarif > out.sarif`
            # yields a parseable document.
            import contextlib

            with contextlib.redirect_stdout(sys.stderr):
                pytest_rc = pytest.main(list(args.pytest_args))
    report = session.report()
    findings = report.findings(session.root)
    findings, suppressed = apply_source_suppressions(findings, session.root)
    findings = assign_fingerprints(findings)
    baseline_path = args.baseline or os.path.join(
        session.root, ".reprolint.json"
    )

    def in_scope(entry: dict) -> bool:
        return entry.get("rule", "").startswith("san-")

    if args.write_baseline:
        total, pruned = write_baseline(baseline_path, findings, in_scope)
        print(
            f"wrote {total} finding(s) to {baseline_path}"
            + (f" ({pruned} stale pruned)" if pruned else "")
        )
        return 0
    grandfathered = 0
    if not args.no_baseline:
        findings, grandfathered = apply_baseline(
            findings, load_baseline(baseline_path)
        )
    print(_render_findings(args.fmt, findings, grandfathered=grandfathered,
                           tool="reprosan"))
    if args.fmt == "text":
        print(report.summary(), file=sys.stderr)
        if suppressed:
            print(f"({suppressed} suppressed inline)", file=sys.stderr)
    if pytest_rc != 0:
        return int(pytest_rc)
    return 1 if findings else 0


_COMMANDS = {
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "deadlock": _cmd_deadlock,
    "crash": _cmd_crash,
    "export": _cmd_export,
    "daemon": _cmd_daemon,
    "recover": _cmd_recover,
    "compact": _cmd_compact,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "dump": _cmd_dump,
    "doctor": _cmd_doctor,
    "lint": _cmd_lint,
    "san": _cmd_san,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
