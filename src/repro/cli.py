"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's evaluation from a shell, the way a user of the
original system would drive it:

- ``fig4`` / ``fig5`` / ``fig6``  — single-container experiments;
- ``run``      — one multi-container schedule, with the per-container table;
- ``sweep``    — the full Fig. 7/8 grid (Tables IV and V);
- ``deadlock`` — the §I failure scenarios with and without ConVGPU;
- ``export``   — write all results as JSON/CSV into a directory.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import export as export_mod
from repro.experiments.failure import deadlock_experiment, overcommit_experiment
from repro.experiments.multi import DEFAULT_SEED, run_schedule, sweep
from repro.experiments.report import (
    ascii_series_plot,
    format_fig4,
    format_policy_table,
    format_table,
)
from repro.experiments.single import (
    api_response_experiment,
    creation_time_experiment,
    mnist_runtime_experiment,
)
from repro.workloads.arrivals import PAPER_CONTAINER_COUNTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ConVGPU reproduction (CLUSTER 2017) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="API response time (Fig. 4)")
    fig4.add_argument("--repeats", type=int, default=10)
    fig4.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig5 = sub.add_parser("fig5", help="container creation time (Fig. 5)")
    fig5.add_argument("--repeats", type=int, default=10)
    fig5.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig6 = sub.add_parser("fig6", help="MNIST trainer runtime (Fig. 6)")
    fig6.add_argument("--steps", type=int, default=20_000)

    run = sub.add_parser("run", help="one multi-container schedule")
    run.add_argument("--policy", default="BF")
    run.add_argument("--count", type=int, default=16)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)

    sweep_cmd = sub.add_parser("sweep", help="the full Fig. 7/8 grid")
    sweep_cmd.add_argument("--repeats", type=int, default=6)
    sweep_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep_cmd.add_argument(
        "--counts",
        default=",".join(str(c) for c in PAPER_CONTAINER_COUNTS),
        help="comma-separated container counts",
    )

    sub.add_parser("deadlock", help="the §I failure scenarios")

    export_cmd = sub.add_parser("export", help="write JSON/CSV results")
    export_cmd.add_argument("--out", default="results")
    export_cmd.add_argument("--repeats", type=int, default=6)
    export_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)
    return parser


def _cmd_fig4(args) -> int:
    result = api_response_experiment(repeats=args.repeats, mode=args.mode)
    print(format_fig4(result.with_convgpu, result.without_convgpu))
    return 0


def _cmd_fig5(args) -> int:
    result = creation_time_experiment(repeats=args.repeats, mode=args.mode)
    print(
        format_table(
            ("series", "creation time (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.4f}"),
                ("with ConVGPU", f"{result.with_convgpu:.4f}"),
                ("overhead", f"{result.overhead:.4f} ({result.overhead_percent:.1f}%)"),
            ],
            title="Fig. 5 — creation time of the container",
        )
    )
    return 0


def _cmd_fig6(args) -> int:
    from repro.workloads.mnist import MnistConfig

    result = mnist_runtime_experiment(MnistConfig().scaled(args.steps))
    print(
        format_table(
            ("series", "runtime (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.2f}"),
                ("with ConVGPU", f"{result.with_convgpu:.2f}"),
                ("overhead", f"{result.overhead_percent:.2f}%"),
            ],
            title="Fig. 6 — overall runtime of TensorFlow MNIST program",
        )
    )
    return 0


def _cmd_run(args) -> int:
    result = run_schedule(args.policy, args.count, args.seed)
    print(
        format_table(
            ("container", "type", "submitted", "finished", "suspended (s)", "exit"),
            [
                (
                    o.name,
                    o.type_name,
                    f"{o.submitted_at:.0f}s",
                    f"{o.finished_at:.1f}s",
                    f"{o.suspended:.1f}",
                    str(o.exit_code),
                )
                for o in result.outcomes
            ],
            title=(
                f"{args.policy}: {result.count} containers, seed {result.seed} — "
                f"finished {result.finished_time:.1f}s, "
                f"avg suspended {result.avg_suspended:.1f}s, "
                f"failures {result.failures}"
            ),
        )
    )
    return 0 if result.failures == 0 else 1


def _cmd_sweep(args) -> int:
    counts = tuple(int(token) for token in args.counts.split(","))
    result = sweep(counts=counts, repeats=args.repeats, seed=args.seed)
    print(
        format_policy_table(
            result.finished, result.counts,
            title="Table IV — finished time (s)",
        )
    )
    print()
    print(
        format_policy_table(
            result.suspended, result.counts,
            title="Table V — average suspended time (s)",
        )
    )
    print()
    print(
        ascii_series_plot(
            {p: result.finished_row(p) for p in result.policies},
            list(result.counts),
            title="Fig. 7 — finished time",
        )
    )
    return 0


def _cmd_deadlock(args) -> int:
    for label, experiment in (
        ("over-commit", overcommit_experiment),
        ("deadlock", deadlock_experiment),
    ):
        for managed in (False, True):
            outcome = experiment(managed)
            mode = "with ConVGPU" if managed else "without ConVGPU"
            print(
                f"{label:11s} {mode:16s} exits={outcome.exit_codes} "
                f"deadlocked={outcome.deadlocked} wall={outcome.wall_time:.1f}s"
            )
    return 0


def _cmd_export(args) -> int:
    os.makedirs(args.out, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {path}")

    sweep_result = sweep(repeats=args.repeats, seed=args.seed)
    write("sweep.json", export_mod.sweep_to_json(sweep_result))
    write("table4_finished.csv", export_mod.sweep_to_csv(sweep_result, "finished"))
    write("table5_suspended.csv", export_mod.sweep_to_csv(sweep_result, "suspended"))
    fig4 = api_response_experiment(repeats=10, mode="sim")
    fig5 = creation_time_experiment(repeats=10, mode="sim")
    fig6 = mnist_runtime_experiment()
    write("single.json", export_mod.single_results_to_json(fig4, fig5, fig6))
    one_run = run_schedule("BF", 16, args.seed)
    write("schedule_bf_16.json", export_mod.schedule_to_json(one_run))
    return 0


_COMMANDS = {
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "deadlock": _cmd_deadlock,
    "export": _cmd_export,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
