"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's evaluation from a shell, the way a user of the
original system would drive it:

- ``fig4`` / ``fig5`` / ``fig6``  — single-container experiments;
- ``run``      — one multi-container schedule, with the per-container table;
- ``sweep``    — the full Fig. 7/8 grid (Tables IV and V);
- ``deadlock`` — the §I failure scenarios with and without ConVGPU;
- ``crash``    — the daemon-crash fault injection (journal recovery);
- ``export``   — write all results as JSON/CSV into a directory;
- ``daemon``   — run the live scheduler daemon in the foreground
  (``--journal-path`` for crash safety, ``--recover`` to restart from a
  crashed daemon's journal);
- ``recover``  — inspect a journal offline: record counts, the restored
  state table, and an invariant check.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

from repro.experiments import export as export_mod
from repro.experiments.failure import deadlock_experiment, overcommit_experiment
from repro.experiments.multi import DEFAULT_SEED, run_schedule, sweep
from repro.experiments.report import (
    ascii_series_plot,
    format_fig4,
    format_policy_table,
    format_table,
)
from repro.experiments.single import (
    api_response_experiment,
    creation_time_experiment,
    mnist_runtime_experiment,
)
from repro.workloads.arrivals import PAPER_CONTAINER_COUNTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ConVGPU reproduction (CLUSTER 2017) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="API response time (Fig. 4)")
    fig4.add_argument("--repeats", type=int, default=10)
    fig4.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig5 = sub.add_parser("fig5", help="container creation time (Fig. 5)")
    fig5.add_argument("--repeats", type=int, default=10)
    fig5.add_argument("--mode", choices=("sim", "live"), default="sim")

    fig6 = sub.add_parser("fig6", help="MNIST trainer runtime (Fig. 6)")
    fig6.add_argument("--steps", type=int, default=20_000)

    run = sub.add_parser("run", help="one multi-container schedule")
    run.add_argument("--policy", default="BF")
    run.add_argument("--count", type=int, default=16)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)

    sweep_cmd = sub.add_parser("sweep", help="the full Fig. 7/8 grid")
    sweep_cmd.add_argument("--repeats", type=int, default=6)
    sweep_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep_cmd.add_argument(
        "--counts",
        default=",".join(str(c) for c in PAPER_CONTAINER_COUNTS),
        help="comma-separated container counts",
    )

    sub.add_parser("deadlock", help="the §I failure scenarios")

    crash = sub.add_parser("crash", help="daemon-crash fault injection")
    crash.add_argument("--policy", default="FIFO")

    export_cmd = sub.add_parser("export", help="write JSON/CSV results")
    export_cmd.add_argument("--out", default="results")
    export_cmd.add_argument("--repeats", type=int, default=6)
    export_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)

    daemon_cmd = sub.add_parser(
        "daemon", help="run the live scheduler daemon (foreground)"
    )
    daemon_cmd.add_argument(
        "--journal-path", default=None,
        help="write-ahead journal file (enables crash recovery)",
    )
    daemon_cmd.add_argument(
        "--recover", action="store_true",
        help="restore state from --journal-path instead of starting fresh",
    )
    daemon_cmd.add_argument("--base-dir", default=None,
                            help="socket directory (temp dir when omitted)")
    daemon_cmd.add_argument("--transport", choices=("unix", "tcp"), default="unix")
    daemon_cmd.add_argument("--host", default="127.0.0.1")
    daemon_cmd.add_argument("--port", type=int, default=0,
                            help="control port for --transport tcp (0 = ephemeral)")
    daemon_cmd.add_argument("--total-memory", type=int, default=4096,
                            help="GPU pool size in MiB")
    daemon_cmd.add_argument("--policy", default="FIFO")
    daemon_cmd.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="reap containers silent for this many seconds (off by default)",
    )
    daemon_cmd.add_argument("--reap-interval", type=float, default=1.0)
    daemon_cmd.add_argument(
        "--ready-file", default=None,
        help="write a JSON line with the serving endpoints once listening",
    )

    recover_cmd = sub.add_parser(
        "recover", help="inspect a scheduler journal offline"
    )
    recover_cmd.add_argument("journal", help="path to the journal file")
    recover_cmd.add_argument(
        "--no-verify", action="store_true",
        help="skip the accounting-invariant check on the restored state",
    )
    return parser


def _cmd_fig4(args) -> int:
    result = api_response_experiment(repeats=args.repeats, mode=args.mode)
    print(format_fig4(result.with_convgpu, result.without_convgpu))
    return 0


def _cmd_fig5(args) -> int:
    result = creation_time_experiment(repeats=args.repeats, mode=args.mode)
    print(
        format_table(
            ("series", "creation time (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.4f}"),
                ("with ConVGPU", f"{result.with_convgpu:.4f}"),
                ("overhead", f"{result.overhead:.4f} ({result.overhead_percent:.1f}%)"),
            ],
            title="Fig. 5 — creation time of the container",
        )
    )
    return 0


def _cmd_fig6(args) -> int:
    from repro.workloads.mnist import MnistConfig

    result = mnist_runtime_experiment(MnistConfig().scaled(args.steps))
    print(
        format_table(
            ("series", "runtime (s)"),
            [
                ("without ConVGPU", f"{result.without_convgpu:.2f}"),
                ("with ConVGPU", f"{result.with_convgpu:.2f}"),
                ("overhead", f"{result.overhead_percent:.2f}%"),
            ],
            title="Fig. 6 — overall runtime of TensorFlow MNIST program",
        )
    )
    return 0


def _cmd_run(args) -> int:
    result = run_schedule(args.policy, args.count, args.seed)
    print(
        format_table(
            ("container", "type", "submitted", "finished", "suspended (s)", "exit"),
            [
                (
                    o.name,
                    o.type_name,
                    f"{o.submitted_at:.0f}s",
                    f"{o.finished_at:.1f}s",
                    f"{o.suspended:.1f}",
                    str(o.exit_code),
                )
                for o in result.outcomes
            ],
            title=(
                f"{args.policy}: {result.count} containers, seed {result.seed} — "
                f"finished {result.finished_time:.1f}s, "
                f"avg suspended {result.avg_suspended:.1f}s, "
                f"failures {result.failures}"
            ),
        )
    )
    return 0 if result.failures == 0 else 1


def _cmd_sweep(args) -> int:
    counts = tuple(int(token) for token in args.counts.split(","))
    result = sweep(counts=counts, repeats=args.repeats, seed=args.seed)
    print(
        format_policy_table(
            result.finished, result.counts,
            title="Table IV — finished time (s)",
        )
    )
    print()
    print(
        format_policy_table(
            result.suspended, result.counts,
            title="Table V — average suspended time (s)",
        )
    )
    print()
    print(
        ascii_series_plot(
            {p: result.finished_row(p) for p in result.policies},
            list(result.counts),
            title="Fig. 7 — finished time",
        )
    )
    return 0


def _cmd_deadlock(args) -> int:
    for label, experiment in (
        ("over-commit", overcommit_experiment),
        ("deadlock", deadlock_experiment),
    ):
        for managed in (False, True):
            outcome = experiment(managed)
            mode = "with ConVGPU" if managed else "without ConVGPU"
            print(
                f"{label:11s} {mode:16s} exits={outcome.exit_codes} "
                f"deadlocked={outcome.deadlocked} wall={outcome.wall_time:.1f}s"
            )
    return 0


def _cmd_crash(args) -> int:
    from repro.experiments.failure import daemon_crash_experiment

    outcome = daemon_crash_experiment(policy=args.policy)
    print(
        format_table(
            ("check", "result"),
            [
                ("state identical after recovery", str(outcome.state_identical)),
                ("wrapper reattached", str(outcome.reattached)),
                ("orphaned request adopted", str(outcome.adopted)),
                ("paused allocation resumed", str(outcome.resumed)),
                ("reconnect attempts", str(outcome.reconnect_attempts)),
                ("events journaled at kill", str(outcome.journaled_events)),
            ],
            title=f"daemon-crash fault injection ({args.policy})",
        )
    )
    survived = (
        outcome.state_identical
        and outcome.reattached
        and outcome.adopted
        and outcome.resumed
    )
    return 0 if survived else 1


def _cmd_daemon(args) -> int:
    from repro.core.scheduler import (
        GpuMemoryScheduler,
        HeartbeatMonitor,
        SchedulerDaemon,
        SchedulerJournal,
        make_policy,
    )
    from repro.units import MiB

    if args.recover and args.journal_path is None:
        print("--recover requires --journal-path", file=sys.stderr)
        return 2
    monitor = (
        HeartbeatMonitor(timeout=args.heartbeat_timeout)
        if args.heartbeat_timeout is not None
        else None
    )
    common = dict(
        base_dir=args.base_dir,
        transport=args.transport,
        host=args.host,
        control_port=args.port,
        monitor=monitor,
        reap_interval=args.reap_interval,
    )
    # Wall clock, not monotonic: journaled timestamps must stay comparable
    # across a restart (suspension accounting spans the crash).
    if args.recover:
        daemon = SchedulerDaemon.recover(args.journal_path, clock=time.time, **common)
    else:
        scheduler = GpuMemoryScheduler(
            args.total_memory * MiB, make_policy(args.policy), clock=time.time
        )
        journal = None
        if args.journal_path is not None:
            journal = SchedulerJournal(args.journal_path)
            journal.attach(scheduler)
        daemon = SchedulerDaemon(scheduler, journal=journal, **common)
    daemon.start()

    endpoints = {
        "pid": os.getpid(),
        "transport": args.transport,
        "base_dir": daemon.base_dir,
        "control": daemon.control_path,
    }
    if args.transport == "tcp":
        endpoints["host"] = daemon.host
        endpoints["port"] = daemon.control_port
    if args.ready_file is not None:
        # Write-then-rename so a polling reader never sees a partial file.
        staging = args.ready_file + ".tmp"
        with open(staging, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(endpoints) + "\n")
        os.replace(staging, args.ready_file)
    print(f"daemon serving: {json.dumps(endpoints)}", flush=True)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    daemon.stop()
    return 0


def _cmd_recover(args) -> int:
    from repro.core.scheduler import (
        format_snapshot,
        journal_summary,
        restore,
        snapshot,
    )

    summary = journal_summary(args.journal)
    meta = summary["meta"] or {}
    print(
        format_table(
            ("field", "value"),
            [
                ("journal", summary["path"]),
                ("policy", str(meta.get("policy"))),
                ("total memory (MiB)", str((meta.get("total_memory") or 0) // (1 << 20))),
                ("events", str(summary["events"])),
                ("snapshots", str(summary["snapshots"])),
                ("torn lines dropped", str(summary["torn_lines"])),
            ],
            title="journal summary",
        )
    )
    for name, count in summary["event_counts"].items():
        print(f"  {name:24s} {count}")
    scheduler = restore(args.journal)
    print()
    print(format_snapshot(snapshot(scheduler)))
    if not args.no_verify:
        scheduler.check_invariants()
        print("\ninvariants: OK")
    return 0


def _cmd_export(args) -> int:
    os.makedirs(args.out, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {path}")

    sweep_result = sweep(repeats=args.repeats, seed=args.seed)
    write("sweep.json", export_mod.sweep_to_json(sweep_result))
    write("table4_finished.csv", export_mod.sweep_to_csv(sweep_result, "finished"))
    write("table5_suspended.csv", export_mod.sweep_to_csv(sweep_result, "suspended"))
    fig4 = api_response_experiment(repeats=10, mode="sim")
    fig5 = creation_time_experiment(repeats=10, mode="sim")
    fig6 = mnist_runtime_experiment()
    write("single.json", export_mod.single_results_to_json(fig4, fig5, fig6))
    one_run = run_schedule("BF", 16, args.seed)
    write("schedule_bf_16.json", export_mod.schedule_to_json(one_run))
    return 0


_COMMANDS = {
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "deadlock": _cmd_deadlock,
    "crash": _cmd_crash,
    "export": _cmd_export,
    "daemon": _cmd_daemon,
    "recover": _cmd_recover,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
