"""The motivating failure experiment (§I and ref. [10]).

"concurrent access including memory allocation to the GPU memory may happen
by multiple containers.  However, the total amount of GPU memory is
limited, and swapping GPU memory is currently not supported.  Therefore,
accessing the same GPU at the same time by different containers may cause a
program failure.  In the worst case, a deadlock situation can occur."

Three scenarios:

- **over-commit failure** (with/without ConVGPU): two containers whose
  combined footprint exceeds the device.  Unmanaged, the slower one's
  ``cudaMalloc`` fails mid-run; managed, its allocation pauses and both
  finish.
- **allocation deadlock** (with/without ConVGPU): two containers that each
  grab half the device and then retry-loop for more (the common "wait for
  memory" pattern).  Unmanaged, neither can ever proceed — deadlock;
  managed, the per-container limits mean the scheduler never lets them
  interleave into the wedge.
- **daemon crash** (this reproduction's extension): kill the scheduler
  daemon while one container holds memory and another is paused
  mid-allocation, recover from the write-ahead journal, and verify the
  paused client reconnects, is adopted into its original queue position,
  and eventually resumes — the failure mode the paper's in-memory Go
  daemon could not survive.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass

from repro.container.image import make_cuda_image
from repro.core.middleware import ConVGPU
from repro.core.scheduler import (
    GpuMemoryScheduler,
    SchedulerDaemon,
    SchedulerJournal,
    make_policy,
    serialize_state,
)
from repro.cuda.effects import HostCompute
from repro.cuda.errors import cudaError
from repro.errors import TransportError
from repro.ipc import protocol
from repro.ipc.retry import ResilientClient, RetryPolicy
from repro.ipc.unix_socket import UnixSocketClient
from repro.sim.engine import Environment
from repro.units import MiB
from repro.workloads.api import ProcessApi
from repro.workloads.runner import SimIpcBridge, SimProgramRunner, fail_program

__all__ = [
    "FailureOutcome",
    "CrashRecoveryOutcome",
    "overcommit_experiment",
    "deadlock_experiment",
    "daemon_crash_experiment",
]


@dataclass(frozen=True)
class FailureOutcome:
    """Result of one two-container scenario."""

    managed: bool
    exit_codes: tuple[int, ...]
    finished: bool
    deadlocked: bool
    wall_time: float

    @property
    def any_failure(self) -> bool:
        return any(code != 0 for code in self.exit_codes)


def _greedy_program(api: ProcessApi, *, chunks: list[int], hold: float,
                    retry_interval: float, max_retries: int,
                    inter_chunk_delay: float = 0.0):
    """Allocate ``chunks`` in order, retrying on failure (the wedge pattern).

    ``inter_chunk_delay`` models the host-side staging work between
    allocations (data loading, preprocessing) during which *other*
    containers get to allocate — the interleaving that creates the wedge.
    """
    held = []
    for index, chunk in enumerate(chunks):
        if index and inter_chunk_delay:
            yield HostCompute(inter_chunk_delay)
        attempts = 0
        while True:
            err, ptr = yield from api.cudaMalloc(chunk)
            if err is cudaError.cudaSuccess:
                held.append(ptr)
                break
            attempts += 1
            if attempts > max_retries:
                # With a retry budget this is starvation/deadlock (exit 3);
                # with none, the program just crashed on the failed
                # allocation like any unprepared CUDA program (exit 2).
                raise fail_program(3 if max_retries > 0 else 2)
            yield HostCompute(retry_interval)
    err, _ = yield from api.cudaLaunchKernel(hold)
    if err is not cudaError.cudaSuccess:
        raise fail_program(1)
    for ptr in held:
        err, _ = yield from api.cudaFree(ptr)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
    return 0


def _run_pair(
    managed: bool,
    specs: list[dict],
    *,
    limit_for: list[int],
) -> FailureOutcome:
    env = Environment()
    system = ConVGPU(policy="FIFO", managed=managed, clock=lambda: env.now)
    system.engine.images.add(make_cuda_image("greedy"))
    bridge = SimIpcBridge(env, system.service.handle) if managed else None
    runner = SimProgramRunner(env, system.device, bridge)
    exit_codes: dict[int, int] = {}

    def launch(index: int, spec: dict):
        yield env.timeout(spec.get("delay", 0.0))
        command = lambda api, spec=spec: _greedy_program(api, **spec["program"])  # noqa: E731
        container = system.nvdocker.run(
            "greedy",
            name=f"greedy-{index}",
            nvidia_memory=limit_for[index],
            command=command,
        )
        proc = runner.run_program(
            ProcessApi(container.main_process),
            on_exit=lambda code: system.engine.notify_main_exit(
                container.container_id, code
            ),
        )
        exit_codes[index] = yield proc

    for index, spec in enumerate(specs):
        env.process(launch(index, spec))
    env.run()
    codes = tuple(exit_codes[i] for i in sorted(exit_codes))
    deadlocked = any(code == 3 for code in codes)
    return FailureOutcome(
        managed=managed,
        exit_codes=codes,
        finished=len(codes) == len(specs),
        deadlocked=deadlocked,
        wall_time=env.now,
    )


def overcommit_experiment(managed: bool) -> FailureOutcome:
    """Two containers that together exceed the 5 GiB device.

    Each wants 2.75 GiB (+66 MiB context); combined ≈ 5.6 GiB > 5 GiB.
    The second to allocate fails unmanaged (no retries configured here —
    a plain TensorFlow-style program just dies on cudaErrorMemoryAllocation).
    """
    chunk = 2816 * MiB  # 2.75 GiB
    spec = {
        "program": {
            "chunks": [chunk],
            "hold": 10.0,
            "retry_interval": 1.0,
            "max_retries": 0,
        }
    }
    specs = [dict(spec), {**spec, "delay": 1.0}]
    limits = [chunk + 128 * MiB, chunk + 128 * MiB]
    return _run_pair(managed, specs, limit_for=limits)


def deadlock_experiment(managed: bool, *, max_retries: int = 30) -> FailureOutcome:
    """The §I worst case: two half-takers that both want a second half.

    Each container allocates 2.3 GiB, then retry-loops for another 2.3 GiB
    (total per container ≈ 4.7 GiB with context overhead — feasible alone,
    impossible together on a 5 GiB device).

    Unmanaged: both first chunks succeed concurrently, after which *neither*
    second chunk can ever be satisfied — both spin until they give up
    (exit 3): the deadlock of ref. [10].

    Managed: each container declares its true requirement (~4.8 GiB), so the
    scheduler reserves the device for the first container and pauses the
    second at its *first* allocation until the reservation frees — the
    containers serialize and both finish cleanly (exit 0).
    """
    chunk = 2355 * MiB  # 2.3 GiB
    spec = {
        "program": {
            "chunks": [chunk, chunk],
            "hold": 5.0,
            "retry_interval": 1.0,
            "max_retries": max_retries,
            # 2 s of host-side staging between the chunks: both containers
            # grab their first half before either asks for the second.
            "inter_chunk_delay": 2.0,
        }
    }
    specs = [dict(spec), {**spec, "delay": 0.5}]
    limit = 2 * chunk + 128 * MiB  # true footprint incl. context overhead
    return _run_pair(managed, specs, limit_for=[limit, limit])


@dataclass(frozen=True)
class CrashRecoveryOutcome:
    """Result of one daemon-crash fault injection."""

    #: Restored scheduler state equals the pre-kill state, field for field.
    state_identical: bool
    #: The re-registering wrapper was acknowledged idempotently.
    reattached: bool
    #: The re-issued request joined its orphaned pending entry (no dupe).
    adopted: bool
    #: The paused allocation ultimately resumed with a grant.
    resumed: bool
    #: Transport-level reconnect attempts the paused client needed.
    reconnect_attempts: int
    #: Events in the journal at the moment of the kill.
    journaled_events: int


def daemon_crash_experiment(
    *, policy: str = "FIFO", pause_timeout: float = 10.0
) -> CrashRecoveryOutcome:
    """Kill the daemon under a paused allocation; recover; finish the run.

    Scenario (all sizes in MiB, device = 4096):

    1. container A (limit 2000) allocates 1800 and commits;
    2. container B (limit 3000) requests 2500 → **paused** (reply withheld);
    3. the daemon is killed — B's blocked ``recv`` dies with a typed error;
    4. a new daemon recovers from the journal (state must be identical);
    5. B's client redials through :class:`~repro.ipc.retry.ResilientClient`
       — re-register (idempotent reattach) then re-issue the allocation,
       which is adopted by the orphaned pending entry;
    6. A exits; redistribution resumes B with a grant.
    """
    with tempfile.TemporaryDirectory(prefix="convgpu-crash-") as tmp:
        journal_path = os.path.join(tmp, "scheduler.journal")
        base_dir = os.path.join(tmp, "daemon")
        scheduler = GpuMemoryScheduler(4096 * MiB, make_policy(policy))
        journal = SchedulerJournal(journal_path)
        journal.attach(scheduler)
        daemon = SchedulerDaemon(scheduler, base_dir=base_dir, journal=journal)
        daemon.start()

        control = UnixSocketClient(daemon.control_path)
        control.call(
            protocol.MSG_REGISTER_CONTAINER, container_id="cont-a", limit=2000 * MiB
        )
        control.call(
            protocol.MSG_REGISTER_CONTAINER, container_id="cont-b", limit=3000 * MiB
        )
        client_a = UnixSocketClient(daemon.container_socket_path("cont-a"))
        client_a.call(
            protocol.MSG_ALLOC_REQUEST,
            container_id="cont-a",
            pid=1,
            size=1800 * MiB,
            api="cudaMalloc",
        )
        client_a.notify(
            protocol.MSG_ALLOC_COMMIT,
            container_id="cont-a",
            pid=1,
            address=0x1000,
            size=1800 * MiB,
        )

        socket_path = daemon.container_socket_path("cont-b")
        outcome: dict = {}

        def first_attempt() -> None:
            client = UnixSocketClient(socket_path, timeout=pause_timeout)
            try:
                outcome["first"] = client.call(
                    protocol.MSG_ALLOC_REQUEST,
                    container_id="cont-b",
                    pid=2,
                    size=2500 * MiB,
                    api="cudaMalloc",
                )
            except TransportError as exc:
                outcome["first_error"] = exc
            finally:
                client.close()

        blocked = threading.Thread(target=first_attempt)
        blocked.start()
        _wait_until(lambda: scheduler.container("cont-b").paused, timeout=5.0)

        # -- the crash ---------------------------------------------------
        pre_state = serialize_state(scheduler)
        journaled = journal.events_written
        daemon.kill()
        blocked.join(timeout=pause_timeout + 5.0)
        client_a.close()
        control.close()

        # -- recovery ----------------------------------------------------
        recovered = SchedulerDaemon.recover(journal_path, base_dir=base_dir)
        recovered.start()
        state_identical = serialize_state(recovered.scheduler) == pre_state

        def reconnect() -> UnixSocketClient:
            # The full wrapper handshake: re-register on the control socket
            # (acknowledged as a reattach), then dial the container socket.
            handshake = UnixSocketClient(recovered.control_path)
            try:
                reply = handshake.call(
                    protocol.MSG_REGISTER_CONTAINER,
                    container_id="cont-b",
                    limit=3000 * MiB,
                )
                outcome["reattached"] = bool(reply.get("reattached"))
            finally:
                handshake.close()
            return UnixSocketClient(
                recovered.container_socket_path("cont-b"), timeout=pause_timeout
            )

        resilient = ResilientClient(
            factory=reconnect, policy=RetryPolicy(max_attempts=6, jitter=0.0)
        )

        def second_attempt() -> None:
            try:
                outcome["second"] = resilient.call(
                    protocol.MSG_ALLOC_REQUEST,
                    container_id="cont-b",
                    pid=2,
                    size=2500 * MiB,
                    api="cudaMalloc",
                )
            except TransportError as exc:
                outcome["second_error"] = exc

        reissued = threading.Thread(target=second_attempt)
        reissued.start()
        _wait_until(
            lambda: recovered.scheduler.container("cont-b").pending
            and recovered.scheduler.container("cont-b").pending[0].resume is not None,
            timeout=5.0,
        )
        adopted = len(recovered.scheduler.container("cont-b").pending) == 1

        # A exits -> redistribution tops B's reservation up -> resume.
        exit_control = UnixSocketClient(recovered.control_path)
        exit_control.call(protocol.MSG_CONTAINER_EXIT, container_id="cont-a")
        exit_control.close()
        reissued.join(timeout=pause_timeout + 5.0)
        resilient.close()

        resumed = outcome.get("second", {}).get("decision") == "grant"
        result = CrashRecoveryOutcome(
            state_identical=state_identical,
            reattached=outcome.get("reattached", False),
            adopted=adopted,
            resumed=resumed,
            reconnect_attempts=len(resilient.retries),
            journaled_events=journaled,
        )
        recovered.stop()
        return result


def _wait_until(predicate, *, timeout: float, interval: float = 0.01) -> None:
    """Poll a condition with a deadline (no scheduler hooks needed)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached before deadline")
