"""Live-mode program runner: real UNIX sockets, hybrid clock.

The paper's single-container numbers (Fig. 4/5) measure middleware overhead
— socket round-trips, scheduler handshakes — on a real kernel.  This runner
reproduces that: :class:`~repro.cuda.effects.IpcCall` effects go over a real
``AF_UNIX`` connection to the :class:`~repro.core.scheduler.daemon.
SchedulerDaemon`, blocking in ``recv`` exactly like ``libgpushare.so`` does,
while device-side effect durations (which our simulated GPU cannot spend
physically) are accumulated into a *virtual offset*.

The program clock is ``monotonic() + virtual_offset``: response times taken
with it therefore combine **measured** IPC cost with **modelled** device
cost, which is the honest decomposition for a reproduction without the
hardware (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.cuda.effects import (
    DeviceOp,
    Effect,
    EventRecord,
    HostCompute,
    IpcCall,
    KernelLaunch,
    StreamOp,
    StreamWait,
    Synchronize,
)
from repro.errors import (
    IpcDisconnected,
    IpcTimeoutError,
    SimulationError,
    TransportError,
)
from repro.gpu.device import GpuDevice
from repro.ipc.retry import ResilientClient, RetryPolicy
from repro.ipc.unix_socket import UnixSocketClient
from repro.workloads.api import ProcessApi
from repro.workloads.runner import ProgramFailure

__all__ = ["LiveProgramRunner", "HybridClock"]


class HybridClock:
    """Wall clock advanced additionally by modelled device time."""

    def __init__(self) -> None:
        self.virtual_offset = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds}")
        self.virtual_offset += seconds

    def now(self) -> float:
        return time.monotonic() + self.virtual_offset

    __call__ = now


class LiveProgramRunner:
    """Synchronously executes a container program against a live daemon."""

    def __init__(
        self,
        device: GpuDevice,
        *,
        socket_path: str | None = None,
        client_factory: Callable[[], Any] | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: HybridClock | None = None,
    ) -> None:
        self.device = device
        self.clock = clock or HybridClock()
        # The daemon connection is held behind a ResilientClient: a daemon
        # restart mid-program becomes reconnect latency (measured by the
        # hybrid clock, like any IPC cost) instead of a dead container.
        # ``client_factory`` generalizes the dial — e.g. "re-register on the
        # control socket, then connect to the advertised container socket" —
        # so reconnecting after recovery re-runs the whole handshake.
        self._client: ResilientClient | None = None
        if client_factory is None and socket_path is not None:
            client_factory = lambda: UnixSocketClient(socket_path)  # noqa: E731
        if client_factory is not None:
            self._client = ResilientClient(
                factory=client_factory,
                policy=retry_policy if retry_policy is not None else RetryPolicy(),
            )
        self._last_completion = 0.0

    @property
    def ipc_retries(self) -> list[tuple[int, str]]:
        """(attempt, error-type) pairs from the reconnect loop (observability)."""
        return list(self._client.retries) if self._client is not None else []

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self) -> "LiveProgramRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def run_program(self, api: ProcessApi, *, uses_cuda: bool = True) -> int:
        """Run the process's program to completion; returns the exit code."""
        process = api.process
        exit_code = 0
        handle = None
        if uses_cuda:
            err, handle = self.drive(api.resolve("__cudaRegisterFatBinary")())
        if process.program is not None:
            try:
                result = self.drive(process.program(api))
                exit_code = int(result) if result is not None else 0
            except ProgramFailure as failure:
                exit_code = failure.exit_code
        if uses_cuda and handle is not None:
            self.drive(api.resolve("__cudaUnregisterFatBinary")(handle))
        process.exit(exit_code)
        return exit_code

    def drive(self, generator) -> Any:
        """Drive one effect generator synchronously."""
        try:
            item = next(generator)
        except StopIteration as stop:
            return stop.value
        while True:
            value = self._interpret(item)
            try:
                item = generator.send(value)
            except StopIteration as stop:
                return stop.value

    # ------------------------------------------------------------------

    def _interpret(self, effect: Effect) -> Any:
        if isinstance(effect, (DeviceOp, HostCompute)):
            self.clock.advance(effect.duration)
            return None
        if isinstance(effect, KernelLaunch):
            record = self.device.submit_kernel(self.clock.now(), effect.duration)
            self._last_completion = max(self._last_completion, record.completion_time)
            if effect.blocking:
                self.clock.advance(max(0.0, record.completion_time - self.clock.now()))
            return None
        if isinstance(effect, Synchronize):
            self.clock.advance(max(0.0, self._last_completion - self.clock.now()))
            return None
        if isinstance(effect, StreamOp):
            start, completion = effect.table.queue_op(
                effect.stream_id, self.clock.now(), effect.duration
            )
            self._last_completion = max(self._last_completion, completion)
            return start, completion
        if isinstance(effect, StreamWait):
            now = self.clock.now()
            if effect.stream_id is None:
                target = effect.table.device_drain_time(now)
            else:
                target = effect.table.stream_drain_time(effect.stream_id, now)
            self.clock.advance(max(0.0, target - now))
            return None
        if isinstance(effect, EventRecord):
            event = effect.table.record_event(
                effect.event_id, effect.stream_id, self.clock.now()
            )
            return event.completion_time
        if isinstance(effect, IpcCall):
            if self._client is None:
                return {"status": "error", "error": "no scheduler socket"}
            message = dict(effect.message)
            msg_type = message.pop("type")
            message.pop("seq", None)
            try:
                if effect.await_reply:
                    return self._client.call(msg_type, **message)
                self._client.notify(msg_type, **message)
                return None
            except TransportError as exc:
                # The wrapper's own retry loop keys on ``transient``: a
                # dead/wedged daemon is worth re-asking (it may be
                # recovering), a protocol error is not.
                return {
                    "status": "error",
                    "error": str(exc),
                    "transient": isinstance(exc, (IpcDisconnected, IpcTimeoutError)),
                }
        raise SimulationError(f"unknown effect {effect!r}")
