"""Rendering helpers: the paper's tables and ASCII versions of its figures.

The benchmark harness prints the same rows/series the paper reports, so a
side-by-side comparison with Tables IV/V and Figs. 4-8 is a diff, not an
archaeology project.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_table",
    "format_fig4",
    "format_policy_table",
    "ascii_series_plot",
    "ascii_gantt",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render a simple aligned text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_fig4(
    with_convgpu: Mapping[str, float],
    without_convgpu: Mapping[str, float],
    *,
    unit: float = 1e-3,
    unit_name: str = "ms",
) -> str:
    """Fig. 4-style table: response time per API, both series."""
    rows = []
    for api in with_convgpu:
        w = with_convgpu[api] / unit
        wo = without_convgpu.get(api, float("nan")) / unit
        rows.append((api, f"{wo:.4f}", f"{w:.4f}", f"{w / wo:.2f}x"))
    return format_table(
        ("API", f"without ({unit_name})", f"with ConVGPU ({unit_name})", "ratio"),
        rows,
        title="Fig. 4 — response time of the API call from the container",
    )


def format_policy_table(
    data: Mapping[str, Mapping[int, float]],
    counts: Sequence[int],
    *,
    title: str,
    policies: Sequence[str] = ("FIFO", "BF", "RU", "Rand"),
) -> str:
    """Table IV/V layout: policies as rows, container counts as columns."""
    headers = ["policy"] + [str(c) for c in counts]
    rows = []
    for policy in policies:
        row = [f"{policy} (sec)"] + [
            f"{data[policy][count]:.1f}" for count in counts
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def ascii_gantt(
    rows: Mapping[str, Sequence[tuple[float, float, str]]],
    *,
    title: str,
    width: int = 60,
    end: float | None = None,
) -> str:
    """Render labelled time intervals as an ASCII gantt chart.

    ``rows`` maps a label (e.g. container name) to intervals
    ``(start, stop, kind)``; ``kind`` selects the fill character:
    ``run`` → ``█``, ``wait`` → ``░``, anything else → ``▒``.  Used to
    visualize suspension timelines next to execution spans.
    """
    fills = {"run": "█", "wait": "░"}
    horizon = end
    if horizon is None:
        horizon = max(
            (stop for spans in rows.values() for _s, stop, _k in spans),
            default=1.0,
        )
    if horizon <= 0:
        horizon = 1.0
    label_width = max((len(label) for label in rows), default=5)
    lines = [title]
    for label, spans in rows.items():
        track = [" "] * width
        for start, stop, kind in spans:
            lo = int(max(0.0, start) / horizon * (width - 1))
            hi = int(min(horizon, stop) / horizon * (width - 1))
            for x in range(lo, max(lo, hi) + 1):
                track[x] = fills.get(kind, "▒")
        lines.append(f"{label:<{label_width}} │{''.join(track)}│")
    lines.append(
        f"{'':<{label_width}}  0{'':{width - 8}}{horizon:7.1f}s"
        f"   (█ run  ░ wait)"
    )
    return "\n".join(lines)


def ascii_series_plot(
    series: Mapping[str, Sequence[float]],
    xs: Sequence[int],
    *,
    title: str,
    width: int = 68,
    height: int = 16,
) -> str:
    """A small ASCII line chart: one mark per (policy, x) point.

    Good enough to eyeball the Fig. 7/8 shapes (growth with count, the BF
    separation beyond ~18 containers) in terminal output.
    """
    marks = {}
    for mark, name in zip("*o+x#@", series):
        marks[name] = mark
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return f"{title}\n(no data)"
    vmax = max(all_values) or 1.0
    vmin = 0.0
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        for i, value in enumerate(values):
            x = int(i * (width - 1) / max(1, len(xs) - 1))
            yfrac = (value - vmin) / (vmax - vmin)
            y = height - 1 - int(yfrac * (height - 1))
            grid[y][x] = marks[name]
    lines = [title]
    lines.append(f"{vmax:8.1f} ┐")
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append(f"{vmin:8.1f} └" + "─" * width)
    lines.append("          " + f"{xs[0]:<6}" + " " * (width - 12) + f"{xs[-1]:>6}")
    legend = "   ".join(f"{mark}={name}" for name, mark in marks.items())
    lines.append("          " + legend)
    return "\n".join(lines)
