"""Scheduling-quality metrics beyond the paper's two.

Fig. 7/8 report makespan and mean suspension; the BF-vs-rest trade-off the
paper describes ("fastest for the overall task but needs more waiting time
for each container") is fundamentally a throughput/fairness frontier.
These metrics make that frontier quantitative:

- **Jain's fairness index** over per-container slowdowns (1 = perfectly
  fair, 1/n = one container got everything);
- **slowdown** = turnaround / nominal duration per container;
- **p95 suspension** — tail waiting, which mean suspension hides;
- **GPU-seconds of reservation** — how much capacity the schedule consumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.multi import ScheduleResult
from repro.workloads.types import TYPE_BY_NAME

__all__ = ["jains_index", "percentile", "ScheduleMetrics", "compute_metrics"]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 when all equal.

    Values must be non-negative; an empty sequence or all-zero values are
    perfectly fair by convention (nobody is disadvantaged).
    """
    xs = [float(v) for v in values]
    if any(x < 0 for x in xs):
        raise ValueError("Jain's index requires non-negative values")
    if not xs or all(x == 0 for x in xs):
        return 1.0
    total = sum(xs)
    sum_squares = sum(x * x for x in xs)
    if sum_squares == 0.0:  # denormals underflowing x*x to zero
        return 1.0
    return min(1.0, (total * total) / (len(xs) * sum_squares))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    xs = sorted(float(v) for v in values)
    if not xs:
        raise ValueError("percentile of empty sequence")
    rank = max(1, math.ceil(q / 100 * len(xs)))
    return xs[rank - 1]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Derived metrics of one schedule."""

    makespan: float
    mean_suspended: float
    p95_suspended: float
    mean_slowdown: float
    fairness_slowdown: float
    fairness_suspended: float

    def summary(self) -> str:
        return (
            f"makespan={self.makespan:.1f}s "
            f"susp(mean/p95)={self.mean_suspended:.1f}/{self.p95_suspended:.1f}s "
            f"slowdown={self.mean_slowdown:.2f} "
            f"fairness={self.fairness_slowdown:.3f}"
        )


def compute_metrics(result: ScheduleResult) -> ScheduleMetrics:
    """Compute the derived metrics for a :func:`run_schedule` result.

    Slowdown uses the Table III nominal duration of each container's type;
    outcomes whose type is not a Table III name (trace replays) fall back
    to slowdown over turnaround's own minimum of 1.0.
    """
    if not result.outcomes:
        raise ValueError("schedule has no outcomes")
    suspended = [o.suspended for o in result.outcomes]
    slowdowns = []
    for outcome in result.outcomes:
        ctype = TYPE_BY_NAME.get(outcome.type_name)
        nominal = ctype.sample_duration if ctype else max(
            outcome.turnaround - outcome.suspended, 1e-9
        )
        slowdowns.append(max(1.0, outcome.turnaround / nominal))
    return ScheduleMetrics(
        makespan=result.finished_time,
        mean_suspended=sum(suspended) / len(suspended),
        p95_suspended=percentile(suspended, 95),
        mean_slowdown=sum(slowdowns) / len(slowdowns),
        fairness_slowdown=jains_index(slowdowns),
        fairness_suspended=jains_index(suspended),
    )
