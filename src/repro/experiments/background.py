"""Table I — the Remote-API framework comparison (background, §II-B).

Static data, reproduced so the benchmark harness regenerates every table in
the paper, and used by the docs to contrast ConVGPU's LD_PRELOAD approach
with full API-remoting designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table

__all__ = ["RemoteApiFramework", "REMOTE_API_FRAMEWORKS", "format_table_i"]


@dataclass(frozen=True)
class RemoteApiFramework:
    """One column of Table I."""

    name: str
    network_method: str
    reference: str


REMOTE_API_FRAMEWORKS: tuple[RemoteApiFramework, ...] = (
    RemoteApiFramework("GViM", "XenStore", "[4]"),
    RemoteApiFramework("gVirtuS", "TCP/IP (VMSocket)", "[5]"),
    RemoteApiFramework("vCUDA", "VMRPC", "[6]"),
    RemoteApiFramework("rCUDA", "Sockets API", "[7]"),
)


def format_table_i() -> str:
    """Render Table I as text."""
    return format_table(
        ("Framework", "Network method", "Ref"),
        [(f.name, f.network_method, f.reference) for f in REMOTE_API_FRAMEWORKS],
        title="Table I — comparing the Remote-API frameworks",
    )
