"""Experiment drivers: one per table/figure of the paper's evaluation."""

from repro.experiments.background import (
    REMOTE_API_FRAMEWORKS,
    RemoteApiFramework,
    format_table_i,
)
from repro.experiments.failure import (
    FailureOutcome,
    deadlock_experiment,
    overcommit_experiment,
)
from repro.experiments.live import HybridClock, LiveProgramRunner
from repro.experiments.export import (
    schedule_to_json,
    single_results_to_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.experiments.metrics import ScheduleMetrics, compute_metrics, jains_index
from repro.experiments.multi import (
    DEFAULT_SEED,
    ContainerOutcome,
    ScheduleResult,
    SweepResult,
    run_schedule,
    run_trace,
    sweep,
)
from repro.experiments.report import (
    ascii_series_plot,
    format_fig4,
    format_policy_table,
    format_table,
)
from repro.experiments.single import (
    ApiResponseResult,
    CreationTimeResult,
    MnistRuntimeResult,
    api_response_experiment,
    creation_time_experiment,
    mnist_runtime_experiment,
)

__all__ = [
    "api_response_experiment",
    "creation_time_experiment",
    "mnist_runtime_experiment",
    "ApiResponseResult",
    "CreationTimeResult",
    "MnistRuntimeResult",
    "run_schedule",
    "run_trace",
    "sweep",
    "compute_metrics",
    "ScheduleMetrics",
    "jains_index",
    "sweep_to_json",
    "sweep_to_csv",
    "schedule_to_json",
    "single_results_to_json",
    "ScheduleResult",
    "SweepResult",
    "ContainerOutcome",
    "DEFAULT_SEED",
    "overcommit_experiment",
    "deadlock_experiment",
    "FailureOutcome",
    "LiveProgramRunner",
    "HybridClock",
    "format_table",
    "format_fig4",
    "format_policy_table",
    "ascii_series_plot",
    "format_table_i",
    "RemoteApiFramework",
    "REMOTE_API_FRAMEWORKS",
]
