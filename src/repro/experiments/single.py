"""Single-container experiments: Fig. 4 (API response time), Fig. 5
(container creation time), Fig. 6 (MNIST runtime).

Each driver runs the same workload twice — with and without ConVGPU — and
reports paired results, like §IV-B.  Two execution modes:

- ``mode="live"``: real AF_UNIX sockets to a real scheduler daemon; IPC
  costs are *measured* on this machine, device costs are modelled
  (:class:`~repro.experiments.live.HybridClock`).  This is the faithful
  reproduction of what Fig. 4/5 actually measured: middleware overhead.
- ``mode="sim"``: everything in virtual time with the calibrated socket
  latency — deterministic, used by tests and by Fig. 6 (a 400 s program is
  impractical to run 10x in live mode).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.container.image import make_cuda_image
from repro.core.middleware import ConVGPU
from repro.experiments.live import HybridClock, LiveProgramRunner
from repro.sim.engine import Environment
from repro.units import MiB
from repro.workloads.api import ProcessApi
from repro.workloads.apibench import APIBENCH_APIS, make_apibench_command
from repro.workloads.mnist import MnistConfig, make_mnist_command
from repro.workloads.runner import SimIpcBridge, SimProgramRunner

__all__ = [
    "ApiResponseResult",
    "CreationTimeResult",
    "MnistRuntimeResult",
    "api_response_experiment",
    "creation_time_experiment",
    "mnist_runtime_experiment",
]


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------


def _run_once(system: ConVGPU, command, *, mode: str, env: Environment | None = None):
    """Run one container with ``command`` to completion; returns the container."""
    image = make_cuda_image("bench")
    if "bench:latest" not in system.engine.images:
        system.engine.images.add(image)
    container = system.nvdocker.run("bench", command=command)
    api = ProcessApi(container.main_process)
    if mode == "live":
        socket_path = None
        if system.managed:
            socket_path = system.container_socket_path(container.name)
        clock = command.__convgpu_clock__
        with LiveProgramRunner(system.device, socket_path=socket_path, clock=clock) as runner:
            code = runner.run_program(api)
        system.engine.notify_main_exit(container.container_id, code)
    else:
        assert env is not None
        bridge = SimIpcBridge(env, system.service.handle) if system.managed else None
        runner = SimProgramRunner(env, system.device, bridge)
        proc = runner.run_program(
            api,
            on_exit=lambda code: system.engine.notify_main_exit(
                container.container_id, code
            ),
        )
        env.run(proc)
    return container


# ----------------------------------------------------------------------
# Fig. 4 — API response time
# ----------------------------------------------------------------------


@dataclass
class ApiResponseResult:
    """Mean response time (seconds) per API, with vs without ConVGPU."""

    with_convgpu: dict[str, float]
    without_convgpu: dict[str, float]
    repeats: int
    mode: str

    def overhead(self, api: str) -> float:
        """Absolute with-minus-without overhead for one API."""
        return self.with_convgpu[api] - self.without_convgpu[api]

    def ratio(self, api: str) -> float:
        return self.with_convgpu[api] / self.without_convgpu[api]


def _api_timings(managed: bool, repeats: int, alloc_size: int, mode: str) -> dict[str, float]:
    if mode == "live":
        clock = HybridClock()
        system = ConVGPU(policy="BF", managed=managed, live=managed)
        command = make_apibench_command(clock.now, alloc_size=alloc_size, repeats=repeats)
        command.__convgpu_clock__ = clock
        try:
            container = _run_once(system, command, mode="live")
        finally:
            system.close()
    else:
        env = Environment()
        system = ConVGPU(policy="BF", managed=managed, clock=lambda: env.now)
        command = make_apibench_command(lambda: env.now, alloc_size=alloc_size, repeats=repeats)
        container = _run_once(system, command, mode="sim", env=env)
    timings = container.main_process.annotations["api_timings"]
    return {
        label: statistics.fmean(samples)
        for label, samples in timings.items()
        if samples
    }


def api_response_experiment(
    *, repeats: int = 10, alloc_size: int = 16 * MiB, mode: str = "sim"
) -> ApiResponseResult:
    """Reproduce Fig. 4: per-API response time with/without ConVGPU."""
    if mode not in ("sim", "live"):
        raise ValueError(f"unknown mode {mode!r}")
    return ApiResponseResult(
        with_convgpu=_api_timings(True, repeats, alloc_size, mode),
        without_convgpu=_api_timings(False, repeats, alloc_size, mode),
        repeats=repeats,
        mode=mode,
    )


# ----------------------------------------------------------------------
# Fig. 5 — container creation time
# ----------------------------------------------------------------------


@dataclass
class CreationTimeResult:
    """Container creation time (seconds), with vs without ConVGPU."""

    with_convgpu: float
    without_convgpu: float
    repeats: int
    mode: str
    samples_with: list[float] = field(default_factory=list)
    samples_without: list[float] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        return self.with_convgpu - self.without_convgpu

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead / self.without_convgpu


def _creation_samples(managed: bool, repeats: int, mode: str) -> list[float]:
    """Creation time = modelled docker work + (measured) middleware work."""
    samples: list[float] = []
    for i in range(repeats):
        system = ConVGPU(policy="BF", managed=managed, live=(mode == "live" and managed))
        try:
            system.engine.images.add(make_cuda_image("bench"))
            start = time.monotonic()
            container = system.nvdocker.run("bench", name=f"create-{i}")
            middleware_cost = time.monotonic() - start
            base = system.engine.timing.creation_time(container.config)
            if mode == "sim" and managed:
                # Virtual mode cannot measure sockets; use the modelled
                # constant instead (calibrated to the paper's 0.0618 s).
                middleware_cost = system.creation_overhead()
            samples.append(base + middleware_cost)
            system.engine.notify_main_exit(container.container_id, 0)
        finally:
            system.close()
    return samples


def creation_time_experiment(*, repeats: int = 10, mode: str = "sim") -> CreationTimeResult:
    """Reproduce Fig. 5: creation time with/without ConVGPU."""
    if mode not in ("sim", "live"):
        raise ValueError(f"unknown mode {mode!r}")
    with_samples = _creation_samples(True, repeats, mode)
    without_samples = _creation_samples(False, repeats, mode)
    return CreationTimeResult(
        with_convgpu=statistics.fmean(with_samples),
        without_convgpu=statistics.fmean(without_samples),
        repeats=repeats,
        mode=mode,
        samples_with=with_samples,
        samples_without=without_samples,
    )


# ----------------------------------------------------------------------
# Fig. 6 — MNIST program runtime
# ----------------------------------------------------------------------


@dataclass
class MnistRuntimeResult:
    """End-to-end trainer runtime (seconds), with vs without ConVGPU."""

    with_convgpu: float
    without_convgpu: float
    config: MnistConfig

    @property
    def overhead_percent(self) -> float:
        return 100.0 * (self.with_convgpu - self.without_convgpu) / self.without_convgpu


def _mnist_runtime(managed: bool, config: MnistConfig) -> float:
    env = Environment()
    system = ConVGPU(policy="BF", managed=managed, clock=lambda: env.now)
    start = env.now
    _run_once(system, make_mnist_command(config), mode="sim", env=env)
    return env.now - start


def mnist_runtime_experiment(config: MnistConfig | None = None) -> MnistRuntimeResult:
    """Reproduce Fig. 6: TensorFlow-MNIST-like runtime with/without ConVGPU.

    Runs in virtual time (the paper's program takes ~400 s of wall clock per
    repetition; our DES replays its call profile in seconds).
    """
    config = config or MnistConfig()
    return MnistRuntimeResult(
        with_convgpu=_mnist_runtime(True, config),
        without_convgpu=_mnist_runtime(False, config),
        config=config,
    )
