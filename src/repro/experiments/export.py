"""Machine-readable export of experiment results (JSON + CSV).

The text renderings in :mod:`repro.experiments.report` are for eyeballs;
this module serializes the same results for plotting pipelines and for the
regeneration workflow (`python -m repro export`).
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any

from repro.experiments.multi import ScheduleResult, SweepResult
from repro.experiments.single import (
    ApiResponseResult,
    CreationTimeResult,
    MnistRuntimeResult,
)

__all__ = [
    "sweep_to_json",
    "sweep_to_csv",
    "schedule_to_json",
    "single_results_to_json",
]


def _dump(payload: Any) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def sweep_to_json(result: SweepResult) -> str:
    """Tables IV and V as one JSON document."""
    return _dump(
        {
            "seed": result.seed,
            "repeats": result.repeats,
            "counts": list(result.counts),
            "policies": list(result.policies),
            "finished_time_s": {
                policy: [result.finished[policy][c] for c in result.counts]
                for policy in result.policies
            },
            "avg_suspended_s": {
                policy: [result.suspended[policy][c] for c in result.counts]
                for policy in result.policies
            },
            "failures": {
                policy: [result.failures[policy][c] for c in result.counts]
                for policy in result.policies
            },
            "p95_suspended_s": {
                policy: [result.p95_suspended[policy][c] for c in result.counts]
                for policy in result.policies
                if result.p95_suspended.get(policy)
            },
            "mean_slowdown": {
                policy: [result.mean_slowdown[policy][c] for c in result.counts]
                for policy in result.policies
                if result.mean_slowdown.get(policy)
            },
            "fairness": {
                policy: [result.fairness[policy][c] for c in result.counts]
                for policy in result.policies
                if result.fairness.get(policy)
            },
        }
    )


#: CSV-exportable sweep metrics -> the SweepResult attribute holding them.
_SWEEP_METRICS = {
    "finished": "finished",
    "suspended": "suspended",
    "p95_suspended": "p95_suspended",
    "slowdown": "mean_slowdown",
    "fairness": "fairness",
}


def sweep_to_csv(result: SweepResult, metric: str = "finished") -> str:
    """One metric of the sweep as CSV (rows=policies, cols=counts).

    ``metric`` is one of ``finished``, ``suspended``, ``p95_suspended``,
    ``slowdown``, or ``fairness``.
    """
    attr = _SWEEP_METRICS.get(metric)
    if attr is None:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {sorted(_SWEEP_METRICS)}"
        )
    table = getattr(result, attr)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["policy", *result.counts])
    for policy in result.policies:
        row = table.get(policy, {})
        writer.writerow(
            [policy, *(f"{row[c]:.3f}" if c in row else "" for c in result.counts)]
        )
    return buffer.getvalue()


def schedule_to_json(result: ScheduleResult) -> str:
    """One run with its per-container outcomes and derived quality metrics."""
    # In-function import: experiments.metrics imports multi, which this
    # module shares; importing it at module scope would be circular-prone.
    from repro.experiments.metrics import compute_metrics

    payload: dict[str, Any] = {
        "policy": result.policy,
        "count": result.count,
        "seed": result.seed,
        "finished_time_s": result.finished_time,
        "avg_suspended_s": result.avg_suspended,
        "failures": result.failures,
        "rejected_count": result.rejected_count,
        "aborted_count": result.aborted_count,
        "containers": [dataclasses.asdict(o) for o in result.outcomes],
    }
    if result.outcomes:
        derived = compute_metrics(result)
        payload["metrics"] = {
            "p95_suspended_s": derived.p95_suspended,
            "mean_slowdown": derived.mean_slowdown,
            "fairness_slowdown": derived.fairness_slowdown,
            "fairness_suspended": derived.fairness_suspended,
        }
    return _dump(payload)


def single_results_to_json(
    fig4: ApiResponseResult | None = None,
    fig5: CreationTimeResult | None = None,
    fig6: MnistRuntimeResult | None = None,
) -> str:
    """The single-container experiments as one JSON document."""
    payload: dict[str, Any] = {}
    if fig4 is not None:
        payload["fig4_api_response_s"] = {
            "with_convgpu": fig4.with_convgpu,
            "without_convgpu": fig4.without_convgpu,
            "repeats": fig4.repeats,
            "mode": fig4.mode,
        }
    if fig5 is not None:
        payload["fig5_creation_time_s"] = {
            "with_convgpu": fig5.with_convgpu,
            "without_convgpu": fig5.without_convgpu,
            "overhead_percent": fig5.overhead_percent,
        }
    if fig6 is not None:
        payload["fig6_mnist_runtime_s"] = {
            "with_convgpu": fig6.with_convgpu,
            "without_convgpu": fig6.without_convgpu,
            "overhead_percent": fig6.overhead_percent,
        }
    return _dump(payload)
