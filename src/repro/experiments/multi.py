"""Multi-container experiments: Fig. 7 / Table IV (finished time) and
Fig. 8 / Table V (average suspended time).

Protocol (§IV-A): container types drawn uniformly from Table III, one
container submitted every 5 s, counts swept 4..38, each configuration
repeated (paper: 6 times) and averaged.  The *same* arrival sequence is
replayed for all four policies within a repetition, so policy comparisons
are paired — the fair reading of the paper's tables.

Everything runs in virtual time on the DES; the scheduler object and the
wrapper logic are the identical code paths the live mode uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.container.image import make_cuda_image
from repro.core.middleware import ConVGPU
from repro.core.scheduler.core import CONTEXT_OVERHEAD_CHARGE
from repro.core.scheduler.events import AllocationAborted, AllocationRejected
from repro.sim.engine import Environment
from repro.sim.rng import SeedSequenceFactory
from repro.workloads.api import ProcessApi
from repro.workloads.arrivals import (
    ARRIVAL_INTERVAL,
    PAPER_CONTAINER_COUNTS,
    Arrival,
    cloud_arrivals,
)
from repro.workloads.runner import SimIpcBridge, SimProgramRunner
from repro.workloads.sample import make_sample_command

__all__ = [
    "ContainerOutcome",
    "ScheduleResult",
    "SweepResult",
    "run_schedule",
    "run_trace",
    "sweep",
    "DEFAULT_SEED",
]

#: Root seed of the published tables in EXPERIMENTS.md.
DEFAULT_SEED = 2017


@dataclass(frozen=True)
class ContainerOutcome:
    """Per-container measurements of one run."""

    name: str
    type_name: str
    submitted_at: float
    finished_at: float
    exit_code: int
    suspended: float

    @property
    def turnaround(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass
class ScheduleResult:
    """One (policy, count, seed) run."""

    policy: str
    count: int
    seed: int
    #: §IV-A "finished time of all containers": the makespan.
    finished_time: float
    #: Fig. 8: mean of per-container suspended time.
    avg_suspended: float
    outcomes: list[ContainerOutcome] = field(default_factory=list)
    #: Scheduler-level rejections (requests over the declared limit).
    rejected_count: int = 0
    #: Native allocation failures after a scheduler grant (device ran dry:
    #: exactly what correct overhead accounting is supposed to prevent).
    aborted_count: int = 0
    #: Total kernel execution time on the device (lane-seconds).
    gpu_busy_seconds: float = 0.0
    #: Finished trace spans (populated by ``capture_trace=True``; virtual
    #: timestamps — feed to :func:`repro.obs.chrome.write_chrome_trace`).
    spans: list = field(default_factory=list)
    #: The scheduler's full event log (populated by ``capture_events=True``).
    events: list = field(default_factory=list)

    @property
    def gpu_utilization(self) -> float:
        """Average kernel concurrency: lane-seconds per wall-second.

        1.0 means one kernel ran at all times; values above 1 mean Hyper-Q
        overlap (bounded by the device's 32 lanes).  BF's makespan
        advantage shows up here as keeping more kernels resident on the
        memory-gated device.
        """
        if self.finished_time <= 0:
            return 0.0
        return self.gpu_busy_seconds / self.finished_time

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.exit_code != 0)


def run_schedule(
    policy: str,
    count: int,
    seed: int,
    *,
    interval: float = ARRIVAL_INTERVAL,
    resume_mode: str = "fit",
    context_overhead: int | None = None,
    program_margin: int | None = None,
    program_chunks: int = 1,
    arrivals: list[Arrival] | None = None,
    capture_trace: bool = False,
    capture_events: bool = False,
) -> ScheduleResult:
    """Simulate one cloud-usage schedule under one policy.

    ``program_margin`` is how much below its limit each sample program
    allocates (default: the 66 MiB context charge, the allocation an
    overhead-aware user makes).  Setting it to 0 models naive users who
    allocate their full declared limit — used by the overhead ablation.

    ``capture_trace`` wires a virtual-clock tracer through the wrapper and
    scheduler and returns the finished spans on the result;
    ``capture_events`` returns the scheduler's event log.  Both feed the
    Chrome trace export (``repro run --chrome-trace``).
    """
    factory = SeedSequenceFactory(seed)
    env = Environment()
    tracer = None
    if capture_trace:
        from repro.obs.trace import Tracer

        tracer = Tracer(clock=lambda: env.now, seed=seed)
    system = ConVGPU(
        policy,
        clock=lambda: env.now,
        rng=factory.generator("policy", policy),
        resume_mode=resume_mode,
        context_overhead=context_overhead,
        tracer=tracer,
    )
    system.engine.images.add(make_cuda_image("sample"))
    bridge = SimIpcBridge(env, system.service.handle)
    runner = SimProgramRunner(env, system.device, bridge)
    if arrivals is None:
        arrivals = cloud_arrivals(count, factory.generator("arrivals"), interval=interval)
    outcomes: list[ContainerOutcome] = []

    def submit(arrival: Arrival):
        yield env.timeout(arrival.time)
        command = make_sample_command(
            arrival.container_type,
            lambda: env.now,
            overhead=(
                program_margin
                if program_margin is not None
                else CONTEXT_OVERHEAD_CHARGE
            ),
            chunks=program_chunks,
        )
        container = system.nvdocker.run(
            "sample",
            name=arrival.name,
            container_type=arrival.container_type,
            command=command,
        )
        # Docker + ConVGPU creation latency before the program starts.
        creation = (
            system.engine.timing.creation_time(container.config)
            + system.creation_overhead()
        )
        yield env.timeout(creation)
        proc = runner.run_program(
            ProcessApi(container.main_process),
            on_exit=lambda code: system.engine.notify_main_exit(
                container.container_id, code
            ),
        )
        exit_code = yield proc
        record = system.scheduler.container(arrival.name)
        outcomes.append(
            ContainerOutcome(
                name=arrival.name,
                type_name=arrival.container_type.name,
                submitted_at=arrival.time,
                finished_at=env.now,
                exit_code=exit_code,
                suspended=record.suspended_total,
            )
        )

    for arrival in arrivals:
        env.process(submit(arrival))
    env.run()
    system.scheduler.check_invariants()
    system.device.allocator.check_invariants()

    finished_time = max((o.finished_at for o in outcomes), default=0.0)
    avg_suspended = (
        sum(o.suspended for o in outcomes) / len(outcomes) if outcomes else 0.0
    )
    return ScheduleResult(
        policy=policy,
        count=count,
        seed=seed,
        finished_time=finished_time,
        avg_suspended=avg_suspended,
        outcomes=sorted(outcomes, key=lambda o: o.submitted_at),
        rejected_count=len(system.scheduler.log.of_type(AllocationRejected)),
        aborted_count=len(system.scheduler.log.of_type(AllocationAborted)),
        gpu_busy_seconds=system.device.hyperq.total_kernel_seconds,
        spans=tracer.finished() if tracer is not None else [],
        events=list(system.scheduler.log) if capture_events else [],
    )


@dataclass
class SweepResult:
    """The full Fig. 7/8 sweep: policy × container-count grids."""

    policies: tuple[str, ...]
    counts: tuple[int, ...]
    repeats: int
    seed: int
    #: policy -> count -> mean finished time (Table IV).
    finished: dict[str, dict[int, float]]
    #: policy -> count -> mean average-suspended time (Table V).
    suspended: dict[str, dict[int, float]]
    #: policy -> count -> total failed containers across repeats (must be 0).
    failures: dict[str, dict[int, int]]
    #: policy -> count -> mean p95 suspension across repeats (tail waiting).
    p95_suspended: dict[str, dict[int, float]] = field(default_factory=dict)
    #: policy -> count -> mean per-container slowdown across repeats.
    mean_slowdown: dict[str, dict[int, float]] = field(default_factory=dict)
    #: policy -> count -> mean Jain's fairness index over slowdowns.
    fairness: dict[str, dict[int, float]] = field(default_factory=dict)

    def finished_row(self, policy: str) -> list[float]:
        return [self.finished[policy][count] for count in self.counts]

    def suspended_row(self, policy: str) -> list[float]:
        return [self.suspended[policy][count] for count in self.counts]


def sweep(
    policies: tuple[str, ...] = ("FIFO", "BF", "RU", "Rand"),
    counts: tuple[int, ...] = PAPER_CONTAINER_COUNTS,
    *,
    repeats: int = 6,
    seed: int = DEFAULT_SEED,
    resume_mode: str = "fit",
    context_overhead: int | None = None,
) -> SweepResult:
    """Run the whole evaluation grid (Tables IV and V)."""
    # In-function import: experiments.metrics imports this module.
    from repro.experiments.metrics import compute_metrics

    finished: dict[str, dict[int, float]] = {p: {} for p in policies}
    suspended: dict[str, dict[int, float]] = {p: {} for p in policies}
    failures: dict[str, dict[int, int]] = {p: {} for p in policies}
    p95: dict[str, dict[int, float]] = {p: {} for p in policies}
    slowdown: dict[str, dict[int, float]] = {p: {} for p in policies}
    fairness: dict[str, dict[int, float]] = {p: {} for p in policies}
    root = SeedSequenceFactory(seed)
    for count in counts:
        for policy in policies:
            finished_sum = 0.0
            suspended_sum = 0.0
            failure_sum = 0
            p95_sum = 0.0
            slowdown_sum = 0.0
            fairness_sum = 0.0
            for rep in range(repeats):
                # Arrival sequence depends on (count, rep) only, so all
                # policies face the same workload within a repetition.
                rep_seed = root.spawn("run", count, rep).root_seed
                result = run_schedule(
                    policy,
                    count,
                    rep_seed,
                    resume_mode=resume_mode,
                    context_overhead=context_overhead,
                )
                finished_sum += result.finished_time
                suspended_sum += result.avg_suspended
                failure_sum += result.failures
                derived = compute_metrics(result)
                p95_sum += derived.p95_suspended
                slowdown_sum += derived.mean_slowdown
                fairness_sum += derived.fairness_slowdown
            finished[policy][count] = finished_sum / repeats
            suspended[policy][count] = suspended_sum / repeats
            failures[policy][count] = failure_sum
            p95[policy][count] = p95_sum / repeats
            slowdown[policy][count] = slowdown_sum / repeats
            fairness[policy][count] = fairness_sum / repeats
    return SweepResult(
        policies=tuple(policies),
        counts=tuple(counts),
        repeats=repeats,
        seed=seed,
        finished=finished,
        suspended=suspended,
        failures=failures,
        p95_suspended=p95,
        mean_slowdown=slowdown,
        fairness=fairness,
    )


def run_trace(
    policy: str,
    entries: "list",
    *,
    seed: int = 0,
    resume_mode: str = "fit",
    context_overhead: int | None = None,
) -> ScheduleResult:
    """Replay a parsed JSONL trace (see :mod:`repro.workloads.trace`).

    Each entry becomes one container with its own limit, duration, and
    program kind; everything else matches :func:`run_schedule`.
    """
    from repro.core.scheduler.core import CONTEXT_OVERHEAD_CHARGE as OVH
    from repro.workloads.mnist import MnistConfig, mnist_program
    from repro.workloads.sample import sample_program, usable_gpu_memory

    factory = SeedSequenceFactory(seed)
    env = Environment()
    system = ConVGPU(
        policy,
        clock=lambda: env.now,
        rng=factory.generator("policy", policy),
        resume_mode=resume_mode,
        context_overhead=context_overhead,
    )
    system.engine.images.add(make_cuda_image("trace"))
    bridge = SimIpcBridge(env, system.service.handle)
    runner = SimProgramRunner(env, system.device, bridge)
    outcomes: list[ContainerOutcome] = []

    def make_command(entry):
        if entry.kind == "mnist":
            config = MnistConfig().scaled(entry.mnist_steps)
            return lambda api: mnist_program(api, config)
        gpu_bytes = usable_gpu_memory(entry.gpu_limit, OVH)
        return lambda api: sample_program(
            api,
            gpu_bytes=gpu_bytes,
            duration=entry.duration,
            clock=lambda: env.now,
            chunks=entry.chunks,
        )

    def submit(entry):
        yield env.timeout(entry.at)
        container = system.nvdocker.run(
            "trace",
            name=entry.name,
            nvidia_memory=entry.gpu_limit,
            vcpus=entry.vcpus,
            memory_limit=entry.host_memory,
            command=make_command(entry),
        )
        creation = (
            system.engine.timing.creation_time(container.config)
            + system.creation_overhead()
        )
        yield env.timeout(creation)
        proc = runner.run_program(
            ProcessApi(container.main_process),
            on_exit=lambda code: system.engine.notify_main_exit(
                container.container_id, code
            ),
        )
        exit_code = yield proc
        record = system.scheduler.container(entry.name)
        outcomes.append(
            ContainerOutcome(
                name=entry.name,
                type_name=entry.kind,
                submitted_at=entry.at,
                finished_at=env.now,
                exit_code=exit_code,
                suspended=record.suspended_total,
            )
        )

    for entry in entries:
        env.process(submit(entry))
    env.run()
    system.scheduler.check_invariants()
    system.device.allocator.check_invariants()
    finished_time = max((o.finished_at for o in outcomes), default=0.0)
    avg_suspended = (
        sum(o.suspended for o in outcomes) / len(outcomes) if outcomes else 0.0
    )
    return ScheduleResult(
        policy=policy,
        count=len(entries),
        seed=seed,
        finished_time=finished_time,
        avg_suspended=avg_suspended,
        outcomes=sorted(outcomes, key=lambda o: o.submitted_at),
        rejected_count=len(system.scheduler.log.of_type(AllocationRejected)),
        aborted_count=len(system.scheduler.log.of_type(AllocationAborted)),
        gpu_busy_seconds=system.device.hyperq.total_kernel_seconds,
    )
