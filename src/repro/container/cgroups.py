"""cgroup-style host resource accounting.

Docker "uses cgroups ... to separate processes belonging to each container
and to handle their CPU time or memory limit" (§II-C) — and the paper's
whole point is that *no such scheme existed for GPU memory*.  We model the
host side (vCPUs, host RAM) so the Table III container types are complete
and so tests can show the asymmetry: host memory is enforced by cgroups at
container granularity, GPU memory only by ConVGPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ContainerError
from repro.units import GiB, format_size

__all__ = ["HostResources", "Cgroup", "CgroupManager"]


@dataclass(frozen=True)
class HostResources:
    """Capacity of the host machine (paper testbed: 2x Xeon E5, 64 GB)."""

    vcpus: int = 32
    memory: int = 64 * GiB

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.memory <= 0:
            raise ContainerError(f"bad host resources: {self}")


@dataclass
class Cgroup:
    """One container's control group."""

    name: str
    vcpus: int
    memory_limit: int
    memory_used: int = 0
    frozen: bool = False

    def charge(self, nbytes: int) -> bool:
        """Account a host-memory allocation; False = over the limit (OOM)."""
        if nbytes < 0:
            raise ContainerError(f"negative charge: {nbytes}")
        if self.memory_used + nbytes > self.memory_limit:
            return False
        self.memory_used += nbytes
        return True

    def uncharge(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.memory_used:
            raise ContainerError(
                f"bad uncharge {nbytes} (used {self.memory_used})"
            )
        self.memory_used -= nbytes


class CgroupManager:
    """Creates/destroys cgroups and enforces host capacity.

    Unlike the GPU pool, host resources may be *oversubscribed* in shares
    (Docker does not reserve CPUs), so only memory limits are capacity
    checked — and only when ``strict_memory`` is set, matching a host
    admin's choice.
    """

    def __init__(self, resources: HostResources | None = None, *, strict_memory: bool = False) -> None:
        self.resources = resources or HostResources()
        self.strict_memory = strict_memory
        self._groups: dict[str, Cgroup] = {}

    @property
    def total_memory_limit(self) -> int:
        return sum(group.memory_limit for group in self._groups.values())

    def create(self, name: str, *, vcpus: int, memory_limit: int) -> Cgroup:
        if name in self._groups:
            raise ContainerError(f"cgroup {name!r} already exists")
        if vcpus < 1:
            raise ContainerError(f"cgroup needs >= 1 vcpu, got {vcpus}")
        if memory_limit <= 0:
            raise ContainerError("cgroup memory limit must be positive")
        if memory_limit > self.resources.memory:
            raise ContainerError(
                f"limit {format_size(memory_limit)} exceeds host memory "
                f"{format_size(self.resources.memory)}"
            )
        if self.strict_memory and self.total_memory_limit + memory_limit > self.resources.memory:
            raise ContainerError(
                "host memory would be oversubscribed "
                f"({format_size(self.total_memory_limit + memory_limit)} reserved "
                f"of {format_size(self.resources.memory)})"
            )
        group = Cgroup(name=name, vcpus=vcpus, memory_limit=memory_limit)
        self._groups[name] = group
        return group

    def get(self, name: str) -> Cgroup:
        try:
            return self._groups[name]
        except KeyError:
            raise ContainerError(f"no such cgroup: {name!r}") from None

    def destroy(self, name: str) -> None:
        self._groups.pop(name, None)

    def __len__(self) -> int:
        return len(self._groups)
