"""Volumes, bind mounts, and the Docker volume-plugin API.

Two middleware mechanisms ride on volumes (§III-B):

1. the scheduler's per-container directory (wrapper module + UNIX socket)
   is bind-mounted into the container with ``--volume``;
2. a *dummy volume* served by nvidia-docker-plugin is attached so that the
   plugin's unmount callback fires when the container exits "by any
   reasons" — that is how the scheduler learns a container is gone.

The plugin interface mirrors Docker's legacy volume-plugin protocol
(/VolumeDriver.Mount, /VolumeDriver.Unmount) at the granularity our stack
needs: named volumes with mount/unmount callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import VolumeError

__all__ = ["Mount", "VolumePlugin", "VolumeManager"]


@dataclass(frozen=True)
class Mount:
    """One ``--volume`` entry: source (host path or volume name) → target."""

    source: str
    target: str
    read_only: bool = False
    #: Name of the volume plugin serving this mount; None = local bind.
    driver: str | None = None

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise VolumeError(f"mount needs source and target: {self}")
        if not self.target.startswith("/"):
            raise VolumeError(f"mount target must be absolute: {self.target}")


class VolumePlugin(Protocol):
    """Docker legacy volume-plugin surface (the slice we use)."""

    @property
    def driver_name(self) -> str:
        """The name containers reference in ``Mount.driver``."""
        ...

    def mount(self, volume_name: str, container_id: str) -> str:
        """Attach the named volume; returns the host path that gets bound."""
        ...

    def unmount(self, volume_name: str, container_id: str) -> None:
        """Called when the container stops and the volume is detached."""
        ...


class VolumeManager:
    """Tracks plugins and which container has which plugin volumes mounted."""

    def __init__(self) -> None:
        self._plugins: dict[str, VolumePlugin] = {}
        #: container_id -> list of (driver, volume_name) currently mounted.
        self._mounted: dict[str, list[tuple[str, str]]] = {}

    def register_plugin(self, plugin: VolumePlugin) -> None:
        name = plugin.driver_name
        if name in self._plugins:
            raise VolumeError(f"volume plugin {name!r} already registered")
        self._plugins[name] = plugin

    def plugin(self, name: str) -> VolumePlugin:
        try:
            return self._plugins[name]
        except KeyError:
            raise VolumeError(f"no such volume plugin: {name!r}") from None

    def mount_all(self, container_id: str, mounts: list[Mount]) -> list[str]:
        """Attach every mount for a starting container; returns host paths.

        On failure, already-attached plugin volumes are rolled back so a
        failed start leaves no dangling mounts.
        """
        attached: list[tuple[str, str]] = []
        host_paths: list[str] = []
        try:
            for mount in mounts:
                if mount.driver is None:
                    host_paths.append(mount.source)
                    continue
                plugin = self.plugin(mount.driver)
                host_paths.append(plugin.mount(mount.source, container_id))
                attached.append((mount.driver, mount.source))
        except Exception:
            for driver, volume_name in reversed(attached):
                try:
                    self._plugins[driver].unmount(volume_name, container_id)
                except Exception:
                    pass
            raise
        self._mounted[container_id] = attached
        return host_paths

    def unmount_all(self, container_id: str) -> int:
        """Detach a stopping container's plugin volumes (firing callbacks).

        Returns the number of plugin volumes detached.  This is the event
        path by which nvidia-docker-plugin "can identify the container is
        exited" (§III-B).
        """
        attached = self._mounted.pop(container_id, [])
        for driver, volume_name in reversed(attached):
            plugin = self._plugins.get(driver)
            if plugin is not None:
                plugin.unmount(volume_name, container_id)
        return len(attached)

    def mounted_volumes(self, container_id: str) -> list[tuple[str, str]]:
        return list(self._mounted.get(container_id, []))
