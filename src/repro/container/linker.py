"""Dynamic-linker simulation: shared libraries, ``LD_PRELOAD``, static linking.

ConVGPU's entire interception mechanism is ``LD_PRELOAD`` (§III-C): the
wrapper library ``libgpushare.so`` "only overrides the function symbol name
of some CUDA APIs and it leaves other CUDA API available".  To reproduce
that honestly we model symbol resolution itself:

- a :class:`SharedLibrary` exports named symbols (callables);
- a :class:`DynamicLinker` resolves a symbol by walking the preload list
  first, then the process's linked libraries, in order — first definition
  wins, exactly like ``ld.so``;
- a **statically linked** symbol set short-circuits resolution entirely:
  "the nvcc compiler links CUDA Runtime API statically inside the user
  program by default. In this case, overriding function symbol name using
  LD_PRELOAD does not work" (§III-C).  Programs must be "compiled" with
  ``cudart=shared`` for interception to apply — our test suite reproduces
  the failure mode when they are not.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import ContainerError

__all__ = ["SharedLibrary", "StaticArchive", "DynamicLinker", "UndefinedSymbolError"]


class UndefinedSymbolError(ContainerError):
    """No loaded object defines the requested symbol."""


class SharedLibrary:
    """A loadable object exporting symbols by name.

    ``soname`` is the library's file name (e.g. ``"libcudart.so.8.0"`` or
    ``"libgpushare.so"``); exports map symbol names to callables.
    """

    def __init__(self, soname: str, exports: Mapping[str, Callable[..., Any]]) -> None:
        if not soname:
            raise ContainerError("shared library needs a soname")
        self.soname = soname
        self._exports = dict(exports)

    def symbols(self) -> list[str]:
        return sorted(self._exports)

    def lookup(self, symbol: str) -> Callable[..., Any] | None:
        return self._exports.get(symbol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SharedLibrary {self.soname} ({len(self._exports)} symbols)>"


class StaticArchive(SharedLibrary):
    """Symbols baked into the executable at link time.

    Resolution for these names never consults the preload list — the call
    sites were bound by the compiler, not ``ld.so``.
    """


class DynamicLinker:
    """Per-process symbol resolution honoring ``LD_PRELOAD``.

    Construction mirrors process startup: the executable's static symbols
    (if any), the ``LD_PRELOAD`` list parsed from the environment, and the
    ordinary dependency list (``DT_NEEDED`` order).
    """

    def __init__(
        self,
        libraries: Iterable[SharedLibrary],
        *,
        preload: Iterable[SharedLibrary] = (),
        static: StaticArchive | None = None,
    ) -> None:
        self._static = static
        self._preload = list(preload)
        self._libraries = list(libraries)
        for obj in [*self._preload, *self._libraries]:
            if isinstance(obj, StaticArchive):
                raise ContainerError(
                    f"{obj.soname}: static archives cannot be dynamically loaded"
                )

    @property
    def preload_sonames(self) -> list[str]:
        return [lib.soname for lib in self._preload]

    def resolve(self, symbol: str) -> Callable[..., Any]:
        """Resolve ``symbol`` with ld.so precedence rules.

        Static beats everything (the linker never sees those call sites);
        then preload objects in list order; then regular libraries in load
        order.
        """
        if self._static is not None:
            bound = self._static.lookup(symbol)
            if bound is not None:
                return bound
        for library in self._preload:
            bound = library.lookup(symbol)
            if bound is not None:
                return bound
        for library in self._libraries:
            bound = library.lookup(symbol)
            if bound is not None:
                return bound
        raise UndefinedSymbolError(f"undefined symbol: {symbol}")

    def provider_of(self, symbol: str) -> str:
        """The soname whose definition would satisfy ``symbol`` (diagnostics)."""
        if self._static is not None and self._static.lookup(symbol) is not None:
            return self._static.soname
        for library in [*self._preload, *self._libraries]:
            if library.lookup(symbol) is not None:
                return library.soname
        raise UndefinedSymbolError(f"undefined symbol: {symbol}")

    @staticmethod
    def parse_ld_preload(value: str) -> list[str]:
        """Split an ``LD_PRELOAD`` env value into sonames (spaces or colons)."""
        return [token for token in value.replace(":", " ").split() if token]
