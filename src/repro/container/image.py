"""Container images and the label metadata nvidia-docker reads.

nvidia-docker decides whether (and how) to wire a GPU into a container from
image labels (§II-D): ``com.nvidia.volumes.needed`` marks CUDA images,
``com.nvidia.cuda.version`` carries the required CUDA version, and ConVGPU
adds ``com.nvidia.memory.limit`` as the fallback source of the container's
GPU memory limit (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ContainerError, ImageNotFoundError

__all__ = [
    "LABEL_VOLUMES_NEEDED",
    "LABEL_CUDA_VERSION",
    "LABEL_MEMORY_LIMIT",
    "Image",
    "ImageRegistry",
]

LABEL_VOLUMES_NEEDED = "com.nvidia.volumes.needed"
LABEL_CUDA_VERSION = "com.nvidia.cuda.version"
LABEL_MEMORY_LIMIT = "com.nvidia.memory.limit"


@dataclass(frozen=True)
class Image:
    """An immutable container image.

    ``entrypoint`` is a program factory: a callable producing the generator
    the container's main process will run (see
    :mod:`repro.workloads`); ``None`` models idle images.
    ``cudart_shared`` records whether the image's binary was compiled with
    ``-cudart=shared`` (§III-C) — without it, LD_PRELOAD interception fails.
    """

    name: str
    tag: str = "latest"
    labels: Mapping[str, str] = field(default_factory=dict)
    entrypoint: Callable[..., Any] | None = None
    cudart_shared: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ContainerError("image needs a name")

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    @property
    def uses_cuda(self) -> bool:
        """nvidia-docker's check: does the image declare CUDA volumes?"""
        return LABEL_VOLUMES_NEEDED in self.labels

    @property
    def cuda_version(self) -> str | None:
        return self.labels.get(LABEL_CUDA_VERSION)

    @property
    def memory_limit_label(self) -> str | None:
        """Raw ``com.nvidia.memory.limit`` value, if present."""
        return self.labels.get(LABEL_MEMORY_LIMIT)

    def with_labels(self, **labels: str) -> "Image":
        """A copy with extra/overridden labels."""
        merged = {**dict(self.labels), **labels}
        return Image(
            name=self.name,
            tag=self.tag,
            labels=merged,
            entrypoint=self.entrypoint,
            cudart_shared=self.cudart_shared,
        )


class ImageRegistry:
    """The local image store (``docker images``)."""

    def __init__(self) -> None:
        self._images: dict[str, Image] = {}

    def add(self, image: Image) -> Image:
        self._images[image.reference] = image
        return image

    def get(self, reference: str) -> Image:
        """Look up ``name[:tag]`` (tag defaults to ``latest``)."""
        if ":" not in reference:
            reference = f"{reference}:latest"
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFoundError(f"no such image: {reference}")
        return image

    def __contains__(self, reference: str) -> bool:
        try:
            self.get(reference)
            return True
        except ImageNotFoundError:
            return False

    def __len__(self) -> int:
        return len(self._images)

    def references(self) -> list[str]:
        return sorted(self._images)


def make_cuda_image(
    name: str,
    *,
    entrypoint: Callable[..., Any] | None = None,
    cuda_version: str = "8.0",
    memory_limit: str | None = None,
    cudart_shared: bool = True,
    tag: str = "latest",
) -> Image:
    """Convenience factory for a CUDA-enabled image with NVIDIA labels."""
    labels = {
        LABEL_VOLUMES_NEEDED: "nvidia_driver",
        LABEL_CUDA_VERSION: cuda_version,
    }
    if memory_limit is not None:
        labels[LABEL_MEMORY_LIMIT] = memory_limit
    return Image(
        name=name,
        tag=tag,
        labels=labels,
        entrypoint=entrypoint,
        cudart_shared=cudart_shared,
    )


__all__.append("make_cuda_image")
