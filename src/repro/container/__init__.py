"""Container substrate: a Docker-like engine with the features ConVGPU uses.

Images + NVIDIA labels, lifecycle state machine, volumes + volume plugins
(the exit-detection mechanism), cgroup accounting, pid allocation, and a
dynamic-linker simulation implementing ``LD_PRELOAD`` semantics including
the static-cudart failure mode.  See DESIGN.md §2.
"""

from repro.container.cgroups import Cgroup, CgroupManager, HostResources
from repro.container.container import Container, ContainerConfig, ContainerState
from repro.container.engine import DockerEngine, EngineTimingModel
from repro.container.image import (
    LABEL_CUDA_VERSION,
    LABEL_MEMORY_LIMIT,
    LABEL_VOLUMES_NEEDED,
    Image,
    ImageRegistry,
    make_cuda_image,
)
from repro.container.linker import (
    DynamicLinker,
    SharedLibrary,
    StaticArchive,
    UndefinedSymbolError,
)
from repro.container.process import (
    ContainerProcess,
    PidAllocator,
    build_process_linker,
)
from repro.container.volumes import Mount, VolumeManager, VolumePlugin

__all__ = [
    "DockerEngine",
    "EngineTimingModel",
    "Container",
    "ContainerConfig",
    "ContainerState",
    "Image",
    "ImageRegistry",
    "make_cuda_image",
    "LABEL_VOLUMES_NEEDED",
    "LABEL_CUDA_VERSION",
    "LABEL_MEMORY_LIMIT",
    "Mount",
    "VolumeManager",
    "VolumePlugin",
    "Cgroup",
    "CgroupManager",
    "HostResources",
    "ContainerProcess",
    "PidAllocator",
    "build_process_linker",
    "DynamicLinker",
    "SharedLibrary",
    "StaticArchive",
    "UndefinedSymbolError",
]
