"""The Docker-like container engine.

Owns images, containers, volumes/plugins, cgroups, and pids, and implements
the lifecycle commands the nvidia-docker wrapper forwards (§II-D: the
wrapper "only captures run and create command, and the other docker
commands are passed through to the docker").

Time is injected (``clock``) so the same engine runs under wall-clock in
live experiments and under the virtual clock in simulations.  The engine
never sleeps; the *duration* of a creation is modelled separately by
:class:`EngineTimingModel`, calibrated so the Fig. 5 baseline (container
creation without ConVGPU ≈ 0.41 s) holds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.container.cgroups import CgroupManager, HostResources
from repro.container.container import Container, ContainerConfig, ContainerState
from repro.container.image import Image, ImageRegistry
from repro.container.linker import SharedLibrary, StaticArchive
from repro.container.process import (
    ContainerProcess,
    PidAllocator,
    build_process_linker,
)
from repro.container.volumes import Mount, VolumeManager
from repro.errors import ContainerError, ContainerStateError

__all__ = ["EngineTimingModel", "DockerEngine"]


@dataclass(frozen=True)
class EngineTimingModel:
    """Modelled durations of engine operations (seconds).

    Fig. 5 of the paper puts plain container creation at ~0.412 s (the
    ConVGPU variant adds 0.0618 s ≈ 15%).  The split below is informed by
    Docker 1.12-era behaviour: image/layer setup dominates, namespace and
    cgroup setup are milliseconds, volume binds cost per-mount.
    """

    image_setup: float = 0.310
    namespace_setup: float = 0.055
    cgroup_setup: float = 0.025
    per_mount: float = 0.004
    per_device: float = 0.002
    process_spawn: float = 0.010

    def creation_time(self, config: ContainerConfig) -> float:
        """Duration of ``docker create`` + ``docker start`` for ``config``."""
        return (
            self.image_setup
            + self.namespace_setup
            + self.cgroup_setup
            + self.per_mount * len(config.mounts)
            + self.per_device * len(config.devices)
            + self.process_spawn
        )


class DockerEngine:
    """A single host's container engine."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        resources: HostResources | None = None,
        timing: EngineTimingModel | None = None,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.images = ImageRegistry()
        self.volumes = VolumeManager()
        self.cgroups = CgroupManager(resources)
        self.pids = PidAllocator()
        self.timing = timing or EngineTimingModel()
        self._containers: dict[str, Container] = {}
        self._names: dict[str, str] = {}
        self._ids = itertools.count(1)
        #: soname -> provider building the per-process view of a system
        #: library (the nvidia-docker-plugin's driver volume serves these,
        #: §II-D).  A provider receives (container, host_pid) because library
        #: state — e.g. the CUDA runtime's context — is per process.
        self.library_providers: dict[str, Callable[[Container, int], SharedLibrary]] = {}
        #: soname -> provider for LD_PRELOAD-able libraries.  ConVGPU's
        #: per-container ``libgpushare.so`` registers here when the
        #: scheduler's directory is bind-mounted.
        self.preload_providers: dict[str, Callable[[Container, int], SharedLibrary]] = {}
        #: Callbacks fired after a container exits and volumes unmount.
        self._exit_listeners: list[Callable[[Container], None]] = []

    # -- registration -------------------------------------------------------

    def add_exit_listener(self, callback: Callable[[Container], None]) -> None:
        self._exit_listeners.append(callback)

    def install_library(
        self, soname: str, provider: Callable[[Container, int], SharedLibrary]
    ) -> None:
        """Install a host library that containers link against."""
        self.library_providers[soname] = provider

    def publish_preload(
        self, soname: str, provider: Callable[[Container, int], SharedLibrary]
    ) -> None:
        """Make a library available for LD_PRELOAD inside containers."""
        self.preload_providers[soname] = provider

    # -- queries --------------------------------------------------------------

    def get(self, container_id_or_name: str) -> Container:
        container = self._containers.get(container_id_or_name)
        if container is None:
            resolved = self._names.get(container_id_or_name)
            container = self._containers.get(resolved or "")
        if container is None or container.state is ContainerState.REMOVED:
            raise ContainerError(f"no such container: {container_id_or_name}")
        return container

    def list_containers(self, *, all_states: bool = False) -> list[Container]:
        containers = [
            c for c in self._containers.values() if c.state is not ContainerState.REMOVED
        ]
        if not all_states:
            containers = [c for c in containers if c.running]
        return sorted(containers, key=lambda c: c.created_at)

    # -- lifecycle -----------------------------------------------------------

    def create(self, config: ContainerConfig) -> Container:
        """``docker create``: allocate id, cgroup, and the container record."""
        if config.name in self._names:
            raise ContainerError(f"container name already in use: {config.name!r}")
        container_id = f"{next(self._ids):016x}" + "0" * 48
        container = Container(container_id, config, created_at=self.clock())
        container.cgroup = self.cgroups.create(
            container_id, vcpus=config.vcpus, memory_limit=config.memory_limit
        )
        self._containers[container_id] = container
        self._names[config.name] = container_id
        return container

    def start(self, container_id: str) -> Container:
        """``docker start``: mount volumes, spawn pid 1, go RUNNING."""
        container = self.get(container_id)
        if container.state is not ContainerState.CREATED:
            raise ContainerStateError(
                f"cannot start container in state {container.state.value}"
            )
        self.volumes.mount_all(container.container_id, list(container.config.mounts))
        process = self._spawn_main_process(container)
        container.processes.append(process)
        container.mark_started(self.clock())
        return container

    def run(self, config: ContainerConfig) -> Container:
        """``docker run`` = create + start."""
        container = self.create(config)
        return self.start(container.container_id)

    def _spawn_main_process(self, container: Container) -> ContainerProcess:
        return self._spawn_process(container, 1, container.config.entrypoint)

    def _spawn_process(
        self, container: Container, container_pid: int, program: Callable[..., Any] | None
    ) -> ContainerProcess:
        config = container.config
        host_pid = self.pids.allocate()
        # Materialize per-process views of every installed library (this is
        # ld.so mapping shared objects into the new address space).
        libraries = {
            soname: provider(container, host_pid)
            for soname, provider in self.library_providers.items()
        }
        # Static CUDA runtime unless the image was built -cudart=shared:
        # the compiler baked the symbols into the executable, so the
        # dynamic loader (and hence LD_PRELOAD) never resolves them.
        static: StaticArchive | None = None
        if not config.image.cudart_shared and "libcudart.so" in libraries:
            baked = libraries.pop("libcudart.so")
            static = StaticArchive(
                "a.out(static cudart)",
                {symbol: baked.lookup(symbol) for symbol in baked.symbols()},
            )
        available_preloads = {
            soname: provider(container, host_pid)
            for soname, provider in self.preload_providers.items()
        }
        linker = build_process_linker(
            libraries=list(libraries.values()),
            env=config.env,
            available_preloads=available_preloads,
            static=static,
        )
        return ContainerProcess(
            host_pid=host_pid,
            container_pid=container_pid,
            container_id=container.container_id,
            env=dict(config.env),
            linker=linker,
            program=program,
        )

    def exec_process(self, container_id: str, program: Callable[..., Any]) -> ContainerProcess:
        """``docker exec``: spawn an additional process in a running container.

        The new process joins the container's namespaces and environment —
        in particular it inherits ``LD_PRELOAD``, so under ConVGPU its CUDA
        calls are intercepted too, and the scheduler charges its own 66 MiB
        context overhead against the *container's* limit (per-pid
        accounting, §III-D).
        """
        container = self.get(container_id)
        if not container.running:
            raise ContainerStateError(
                f"cannot exec in container in state {container.state.value}"
            )
        process = self._spawn_process(
            container, len(container.processes) + 1, program
        )
        container.processes.append(process)
        return process

    def stop(self, container_id: str, exit_code: int = 137) -> Container:
        """``docker stop`` / ``docker kill`` (we do not model the grace gap)."""
        return self._finish(container_id, exit_code)

    def notify_main_exit(self, container_id: str, exit_code: int) -> Container:
        """The main process returned; the container exits with its code.

        Idempotent against the stop/exit race: if ``docker stop`` already
        finished the container, the late process-exit event is ignored,
        like the daemon's handling of reaped processes.
        """
        container = self.get(container_id)
        if container.state is ContainerState.EXITED:
            return container
        return self._finish(container_id, exit_code)

    def _finish(self, container_id: str, exit_code: int) -> Container:
        container = self.get(container_id)
        container.mark_exited(self.clock(), exit_code)
        # Volume unmount is what makes exit observable to plugins (§III-B).
        self.volumes.unmount_all(container.container_id)
        for listener in self._exit_listeners:
            listener(container)
        return container

    def remove(self, container_id: str) -> None:
        container = self.get(container_id)
        container.mark_removed()
        self.cgroups.destroy(container.container_id)
        self._names.pop(container.name, None)

    # -- process-level symbol resolution (per-process CUDA bindings) ------

    def resolve_for(self, process: ContainerProcess, symbol: str):
        """Resolve an API symbol as ``process`` would (diagnostic helper)."""
        return process.resolve(symbol)
