"""Processes inside containers: pids, namespaces, env, symbol resolution.

Docker "uses Linux namespaces to have a separate process ID (pid)" (§II-C);
the wrapper module nonetheless reports the *host-visible* pid to the
scheduler (the scheduler runs on the host and keys its per-process
bookkeeping by pid, §III-D).  We model both: every process has a host pid
and a container-local pid, and all protocol traffic carries the host pid.

Each process owns a :class:`~repro.container.linker.DynamicLinker` built at
spawn time from the container's environment — this is the moment
``LD_PRELOAD`` takes effect in real life, and the moment ConVGPU's wrapper
does or does not get interposed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.container.linker import DynamicLinker, SharedLibrary, StaticArchive
from repro.errors import ContainerError

__all__ = ["PidAllocator", "ContainerProcess"]


class PidAllocator:
    """Host-global pid source (monotonic, never reused within a run)."""

    def __init__(self, first_pid: int = 1000) -> None:
        self._pids = itertools.count(first_pid)

    def allocate(self) -> int:
        return next(self._pids)


@dataclass
class ContainerProcess:
    """One process running inside a container."""

    host_pid: int
    container_pid: int
    container_id: str
    env: Mapping[str, str]
    linker: DynamicLinker
    #: The program generator factory (``None`` for processes without code,
    #: e.g. placeholder init processes).
    program: Callable[..., Any] | None = None
    exit_code: int | None = None
    #: Populated by runners: response-time log, allocation trace, etc.
    annotations: dict[str, Any] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.exit_code is None

    def resolve(self, symbol: str) -> Callable[..., Any]:
        """Resolve an API symbol through this process's linker view."""
        return self.linker.resolve(symbol)

    def exit(self, code: int = 0) -> None:
        if not self.alive:
            raise ContainerError(
                f"process {self.host_pid} already exited with {self.exit_code}"
            )
        self.exit_code = code


def build_process_linker(
    *,
    libraries: list[SharedLibrary],
    env: Mapping[str, str],
    available_preloads: Mapping[str, SharedLibrary],
    static: StaticArchive | None = None,
) -> DynamicLinker:
    """Construct a process's linker from its environment.

    ``LD_PRELOAD`` names sonames; they are resolved against
    ``available_preloads`` (the libraries visible inside the container —
    for ConVGPU, the bind-mounted ``libgpushare.so``).  Unknown sonames are
    skipped with the same silent tolerance as ``ld.so`` (it warns on
    stderr and continues), which matters: a container missing its wrapper
    volume must still run, just unmanaged.
    """
    preload_list: list[SharedLibrary] = []
    ld_preload = env.get("LD_PRELOAD", "")
    for soname in DynamicLinker.parse_ld_preload(ld_preload):
        # Accept both bare sonames and mount paths ("/convgpu/libgpushare.so").
        key = soname.rsplit("/", 1)[-1]
        library = available_preloads.get(key)
        if library is not None:
            preload_list.append(library)
    return DynamicLinker(libraries, preload=preload_list, static=static)


__all__.append("build_process_linker")
