"""Container objects and their lifecycle state machine.

State machine (the subset of Docker's that the paper's flows touch)::

    CREATED --start--> RUNNING --exit/stop--> EXITED --remove--> (gone)

A container may exit "by any reasons" (§III-B): its main process returning,
``docker stop``, or a crash — all converge on :meth:`Container.mark_exited`,
after which the engine unmounts volumes and the nvidia-docker-plugin close
signal fires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.container.cgroups import Cgroup
from repro.container.image import Image
from repro.container.process import ContainerProcess
from repro.container.volumes import Mount
from repro.errors import ContainerStateError

__all__ = ["ContainerState", "ContainerConfig", "Container"]


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"
    REMOVED = "removed"


@dataclass(frozen=True)
class ContainerConfig:
    """Everything ``docker create`` needs (post nvidia-docker rewriting)."""

    image: Image
    name: str
    env: Mapping[str, str] = field(default_factory=dict)
    mounts: tuple[Mount, ...] = ()
    devices: tuple[str, ...] = ()
    vcpus: int = 1
    memory_limit: int = 1 << 30
    command: Callable[..., Any] | None = None  # overrides image entrypoint
    labels: Mapping[str, str] = field(default_factory=dict)

    @property
    def entrypoint(self) -> Callable[..., Any] | None:
        return self.command if self.command is not None else self.image.entrypoint


class Container:
    """A live container instance."""

    def __init__(self, container_id: str, config: ContainerConfig, created_at: float) -> None:
        self.container_id = container_id
        self.config = config
        self.state = ContainerState.CREATED
        self.created_at = created_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.exit_code: int | None = None
        self.cgroup: Cgroup | None = None
        self.processes: list[ContainerProcess] = []
        #: Set by runners/middleware: timings, scheduler records, etc.
        self.annotations: dict[str, Any] = {}

    # -- convenience -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def short_id(self) -> str:
        return self.container_id[:12]

    @property
    def main_process(self) -> ContainerProcess | None:
        return self.processes[0] if self.processes else None

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    @property
    def uptime(self) -> float | None:
        """Run duration (None until finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    # -- lifecycle transitions (engine-internal) ---------------------------

    def mark_started(self, at: float) -> None:
        if self.state is not ContainerState.CREATED:
            raise ContainerStateError(
                f"cannot start container in state {self.state.value}"
            )
        self.state = ContainerState.RUNNING
        self.started_at = at

    def mark_exited(self, at: float, exit_code: int) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ContainerStateError(
                f"cannot exit container in state {self.state.value}"
            )
        self.state = ContainerState.EXITED
        self.finished_at = at
        self.exit_code = exit_code
        for process in self.processes:
            if process.alive:
                process.exit(exit_code)

    def mark_removed(self) -> None:
        if self.state not in (ContainerState.CREATED, ContainerState.EXITED):
            raise ContainerStateError(
                f"cannot remove container in state {self.state.value}"
            )
        self.state = ContainerState.REMOVED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Container {self.short_id} {self.name!r} {self.state.value}>"
