"""The customized nvidia-docker front-end (§II-D, §III-B).

nvidia-docker is "a thin wrapper on top of docker" that "only captures run
and create command, and the other docker commands are passed through".  The
ConVGPU customization adds, for CUDA images:

- the ``--nvidia-memory=<size>`` option; fallback to the image's
  ``com.nvidia.memory.limit`` label; final default **1 GiB** (§III-B);
- a ``register_container`` round-trip to the scheduler *before* creation,
  whose reply carries the per-container directory to bind-mount;
- ``--volume`` for that directory (wrapper module + UNIX socket),
  ``--env LD_PRELOAD=<wrapper>`` so the dynamic linker interposes it,
  the GPU ``--device`` entries, the driver volume, and the dummy
  exit-detection volume.

The entry point accepts real argv lists (``["run", "--nvidia-memory=512m",
"myimage"]``), because option parsing/rewriting is precisely what the paper
customized — and what the Fig. 5 creation-time overhead includes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.container.container import Container, ContainerConfig
from repro.container.engine import DockerEngine
from repro.container.image import Image
from repro.container.volumes import Mount
from repro.errors import ContainerError
from repro.ipc import protocol
from repro.nvdocker.plugin import NvidiaDockerPlugin
from repro.units import GiB, parse_size
from repro.workloads.types import ContainerType

__all__ = ["NvidiaDockerCommand", "NvidiaDocker", "DEFAULT_GPU_MEMORY_LIMIT"]

#: §III-B: "to set 1 GiB as a default if both the option and the label are
#: absent".
DEFAULT_GPU_MEMORY_LIMIT: int = 1 * GiB

#: Where the scheduler directory is mounted inside the container.
CONTAINER_WRAPPER_DIR = "/convgpu"


@dataclass
class NvidiaDockerCommand:
    """Parsed ``nvidia-docker run/create`` invocation."""

    verb: str
    image_ref: str = ""
    name: str | None = None
    nvidia_memory: int | None = None
    env: dict[str, str] = field(default_factory=dict)
    mounts: list[Mount] = field(default_factory=list)
    vcpus: int = 1
    memory_limit: int = 1 << 30
    command: Callable[..., Any] | None = None
    passthrough: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, argv: list[str]) -> "NvidiaDockerCommand":
        """Parse an argv list the way the thin wrapper does."""
        if not argv:
            raise ContainerError("empty nvidia-docker command")
        verb, rest = argv[0], argv[1:]
        cmd = cls(verb=verb)
        if verb not in ("run", "create"):
            # "the other docker commands are passed through to the docker".
            cmd.passthrough = rest
            return cmd
        it = iter(rest)
        positionals: list[str] = []
        for token in it:
            if token.startswith("--nvidia-memory="):
                cmd.nvidia_memory = parse_size(token.split("=", 1)[1])
            elif token == "--nvidia-memory":
                cmd.nvidia_memory = parse_size(cls._value(it, token))
            elif token.startswith("--name="):
                cmd.name = token.split("=", 1)[1]
            elif token == "--name":
                cmd.name = cls._value(it, token)
            elif token.startswith("--env=") or token.startswith("-e="):
                cmd._add_env(token.split("=", 1)[1])
            elif token in ("--env", "-e"):
                cmd._add_env(cls._value(it, token))
            elif token.startswith("--volume=") or token.startswith("-v="):
                cmd._add_volume(token.split("=", 1)[1])
            elif token in ("--volume", "-v"):
                cmd._add_volume(cls._value(it, token))
            elif token.startswith("--cpus="):
                cmd.vcpus = int(token.split("=", 1)[1])
            elif token.startswith("--memory=") or token.startswith("-m="):
                cmd.memory_limit = parse_size(token.split("=", 1)[1])
            elif token in ("--memory", "-m"):
                cmd.memory_limit = parse_size(cls._value(it, token))
            elif token.startswith("-"):
                raise ContainerError(f"unknown option {token!r}")
            else:
                positionals.append(token)
        if not positionals:
            raise ContainerError(f"nvidia-docker {verb}: missing image")
        cmd.image_ref = positionals[0]
        return cmd

    @staticmethod
    def _value(it, token: str) -> str:
        try:
            return next(it)
        except StopIteration:
            raise ContainerError(f"option {token} needs a value") from None

    def _add_env(self, spec: str) -> None:
        if "=" not in spec:
            raise ContainerError(f"bad --env {spec!r}")
        key, value = spec.split("=", 1)
        self.env[key] = value

    def _add_volume(self, spec: str) -> None:
        parts = spec.split(":")
        if len(parts) < 2:
            raise ContainerError(f"bad --volume {spec!r}")
        read_only = len(parts) > 2 and "ro" in parts[2].split(",")
        self.mounts.append(Mount(source=parts[0], target=parts[1], read_only=read_only))


class NvidiaDocker:
    """The customized thin wrapper.

    ``control_call(msg_type, **payload) -> reply`` reaches the scheduler
    (over the control UNIX socket in live mode, in-process otherwise); when
    it is ``None`` the wrapper behaves like *stock* nvidia-docker — GPU
    passthrough with no memory management — which is the paper's baseline.
    """

    def __init__(
        self,
        engine: DockerEngine,
        plugin: NvidiaDockerPlugin,
        *,
        control_call: Callable[..., dict[str, Any]] | None = None,
        gpu_devices: tuple[str, ...] = ("/dev/nvidia0", "/dev/nvidiactl", "/dev/nvidia-uvm"),
        supported_cuda_version: str = "8.0",
    ) -> None:
        self.engine = engine
        self.plugin = plugin
        self.control_call = control_call
        self.gpu_devices = gpu_devices
        #: Highest CUDA version the host driver supports; nvidia-docker
        #: refuses images whose com.nvidia.cuda.version exceeds it (§II-D:
        #: the label "indicates required CUDA version").
        self.supported_cuda_version = supported_cuda_version
        self._anon_names = itertools.count(1)

    @staticmethod
    def _version_tuple(text: str) -> tuple[int, ...]:
        try:
            return tuple(int(part) for part in text.split("."))
        except ValueError:
            raise ContainerError(f"malformed CUDA version {text!r}") from None

    def check_cuda_version(self, image: Image) -> None:
        """Refuse images that need a newer CUDA than the driver provides."""
        required = image.cuda_version
        if required is None:
            return
        if self._version_tuple(required) > self._version_tuple(
            self.supported_cuda_version
        ):
            raise ContainerError(
                f"image {image.reference} requires CUDA {required}, but the "
                f"host driver supports only {self.supported_cuda_version}"
            )

    @property
    def managed(self) -> bool:
        """True when the ConVGPU customization is active."""
        return self.control_call is not None

    # ------------------------------------------------------------------

    def run_command(self, argv: list[str]) -> Container:
        """Parse and execute ``nvidia-docker run ...``."""
        command = NvidiaDockerCommand.parse(argv)
        if command.verb != "run":
            raise ContainerError(
                f"run_command only executes 'run'; got {command.verb!r}"
            )
        return self.run(
            command.image_ref,
            name=command.name,
            nvidia_memory=command.nvidia_memory,
            env=command.env,
            mounts=command.mounts,
            vcpus=command.vcpus,
            memory_limit=command.memory_limit,
        )

    def run(
        self,
        image_ref: str,
        *,
        name: str | None = None,
        nvidia_memory: int | str | None = None,
        env: Mapping[str, str] | None = None,
        mounts: list[Mount] | None = None,
        vcpus: int = 1,
        memory_limit: int = 1 << 30,
        command: Callable[..., Any] | None = None,
        container_type: ContainerType | None = None,
    ) -> Container:
        """``nvidia-docker run``: rewrite options, register, create, start."""
        config = self.build_config(
            image_ref,
            name=name,
            nvidia_memory=nvidia_memory,
            env=env,
            mounts=mounts,
            vcpus=vcpus,
            memory_limit=memory_limit,
            command=command,
            container_type=container_type,
        )
        return self.engine.run(config)

    def create(self, image_ref: str, **kwargs: Any) -> Container:
        """``nvidia-docker create``: like run, but the container stays CREATED."""
        config = self.build_config(image_ref, **kwargs)
        return self.engine.create(config)

    # ------------------------------------------------------------------

    def build_config(
        self,
        image_ref: str,
        *,
        name: str | None = None,
        nvidia_memory: int | str | None = None,
        env: Mapping[str, str] | None = None,
        mounts: list[Mount] | None = None,
        vcpus: int = 1,
        memory_limit: int = 1 << 30,
        command: Callable[..., Any] | None = None,
        container_type: ContainerType | None = None,
    ) -> ContainerConfig:
        """The option-rewriting step: user command → docker command."""
        image = self.engine.images.get(image_ref)
        if container_type is not None:
            vcpus = container_type.vcpus
            memory_limit = container_type.memory
            if nvidia_memory is None:
                nvidia_memory = container_type.gpu_memory
        final_env = dict(env or {})
        final_mounts = list(mounts or [])
        devices: tuple[str, ...] = ()
        final_name = name or f"convgpu-{next(self._anon_names)}"

        if image.uses_cuda:
            # Stock nvidia-docker behaviour: version check, device + driver
            # volume (§II-D).
            self.check_cuda_version(image)
            devices = self.gpu_devices
            final_mounts.append(self.plugin.driver_mount())

            if self.managed:
                limit = self.resolve_memory_limit(image, nvidia_memory)
                # Pre-create registration; reply carries the directory the
                # scheduler prepared (§III-B/D).  We need the container id
                # before the engine assigns one, so ConVGPU keys scheduler
                # state by container *name* — unique per engine.
                reply = self.control_call(
                    protocol.MSG_REGISTER_CONTAINER,
                    container_id=final_name,
                    limit=limit,
                )
                if reply.get("status") != "ok":
                    raise ContainerError(
                        f"scheduler refused container: {reply.get('error')}"
                    )
                if "device" in reply:
                    # Multi-GPU host: attach only the device the scheduler
                    # placed this container on (the NV_GPU narrowing real
                    # nvidia-docker performs).
                    devices = (
                        f"/dev/nvidia{reply['device']}",
                        "/dev/nvidiactl",
                        "/dev/nvidia-uvm",
                    )
                socket_dir = reply.get("socket_dir", f"/var/convgpu/{final_name}")
                final_mounts.append(
                    Mount(source=socket_dir, target=CONTAINER_WRAPPER_DIR)
                )
                final_env["LD_PRELOAD"] = (
                    f"{CONTAINER_WRAPPER_DIR}/libgpushare.so"
                    + (" " + final_env["LD_PRELOAD"] if "LD_PRELOAD" in final_env else "")
                )
                final_env["CONVGPU_SOCKET"] = (
                    f"{CONTAINER_WRAPPER_DIR}/convgpu.sock"
                )
                final_mounts.append(self.plugin.dummy_mount(final_name))
        elif nvidia_memory is not None:
            raise ContainerError(
                f"--nvidia-memory given but image {image.reference} has no "
                "com.nvidia.volumes.needed label"
            )

        return ContainerConfig(
            image=image,
            name=final_name,
            env=final_env,
            mounts=tuple(final_mounts),
            devices=devices,
            vcpus=vcpus,
            memory_limit=memory_limit,
            command=command,
        )

    @staticmethod
    def resolve_memory_limit(image: Image, option_value: int | str | None) -> int:
        """Option > image label > 1 GiB default (§III-B)."""
        if option_value is not None:
            return parse_size(option_value)
        label = image.memory_limit_label
        if label is not None:
            return parse_size(label)
        return DEFAULT_GPU_MEMORY_LIMIT
