"""The customized nvidia-docker-plugin (§II-D, §III-B).

Two responsibilities, both reproduced:

1. serve the **driver volume** — the read-only volume carrying the host's
   CUDA driver libraries into the container, named after the driver
   version (``nvidia_driver_375.51``);
2. serve the **dummy volume** ConVGPU attaches to every managed container:
   when the container exits "by any reasons", Docker unmounts its volumes,
   the plugin's unmount callback fires, and the plugin "can send a *close*
   signal to the scheduler for that container".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.container.volumes import Mount
from repro.errors import VolumeError
from repro.ipc import protocol

__all__ = ["NvidiaDockerPlugin", "DRIVER_VOLUME_PREFIX", "DUMMY_VOLUME_PREFIX"]

DRIVER_VOLUME_PREFIX = "nvidia_driver_"
DUMMY_VOLUME_PREFIX = "convgpu_dummy_"

#: control_call(msg_type, **payload) -> reply dict — how the plugin reaches
#: the scheduler daemon (UNIX socket in live mode, in-process otherwise).
ControlCall = Callable[..., dict[str, Any]]


class NvidiaDockerPlugin:
    """Docker volume plugin: driver volumes + ConVGPU exit detection."""

    driver_name = "nvidia-docker"

    def __init__(self, driver_version: str = "375.51", control_call: ControlCall | None = None) -> None:
        self.driver_version = driver_version
        self.control_call = control_call
        #: (volume_name, container_id) pairs currently mounted.
        self._active: set[tuple[str, str]] = set()
        #: Close signals sent (for tests / observability).
        self.close_signals: list[str] = []

    # -- naming helpers --------------------------------------------------

    @property
    def driver_volume_name(self) -> str:
        """Volume encoding the CUDA/driver version nvidia-docker inspected."""
        return f"{DRIVER_VOLUME_PREFIX}{self.driver_version}"

    @staticmethod
    def dummy_volume_name(scheduler_key: str) -> str:
        """Encode the scheduler's container key in the volume name.

        nvidia-docker registers the container with the scheduler *before*
        Docker assigns an id (§III-B), so ConVGPU keys scheduler state by
        container name; embedding that key here lets the unmount callback
        recover it without a reverse lookup.
        """
        return f"{DUMMY_VOLUME_PREFIX}{scheduler_key}"

    def driver_mount(self) -> Mount:
        """The ``--volume`` nvidia-docker adds for driver binaries (§II-D)."""
        return Mount(
            source=self.driver_volume_name,
            target="/usr/local/nvidia",
            read_only=True,
            driver=self.driver_name,
        )

    def dummy_mount(self, container_id: str) -> Mount:
        """The exit-detection dummy volume ConVGPU adds (§III-B)."""
        return Mount(
            source=self.dummy_volume_name(container_id),
            target="/.convgpu-keepalive",
            read_only=True,
            driver=self.driver_name,
        )

    # -- VolumePlugin interface --------------------------------------------

    def mount(self, volume_name: str, container_id: str) -> str:
        if volume_name.startswith(DRIVER_VOLUME_PREFIX):
            if volume_name != self.driver_volume_name:
                raise VolumeError(
                    f"driver volume {volume_name!r} does not match installed "
                    f"driver {self.driver_version}"
                )
            self._active.add((volume_name, container_id))
            return f"/var/lib/nvidia-docker/volumes/{volume_name}"
        if volume_name.startswith(DUMMY_VOLUME_PREFIX):
            self._active.add((volume_name, container_id))
            return f"/var/lib/nvidia-docker/volumes/{volume_name}"
        raise VolumeError(f"unknown nvidia-docker volume {volume_name!r}")

    def unmount(self, volume_name: str, container_id: str) -> None:
        self._active.discard((volume_name, container_id))
        if volume_name.startswith(DUMMY_VOLUME_PREFIX):
            # The container stopped: forward the close signal (§III-B),
            # addressed by the scheduler key embedded in the volume name.
            scheduler_key = volume_name[len(DUMMY_VOLUME_PREFIX):]
            self.close_signals.append(scheduler_key)
            if self.control_call is not None:
                try:
                    self.control_call(
                        protocol.MSG_CONTAINER_EXIT, container_id=scheduler_key
                    )
                except Exception:
                    # The daemon may already be gone during teardown; the
                    # scheduler treats unknown/closed containers as no-ops.
                    pass

    def is_mounted(self, volume_name: str, container_id: str) -> bool:
        return (volume_name, container_id) in self._active
