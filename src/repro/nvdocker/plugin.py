"""The customized nvidia-docker-plugin (§II-D, §III-B).

Two responsibilities, both reproduced:

1. serve the **driver volume** — the read-only volume carrying the host's
   CUDA driver libraries into the container, named after the driver
   version (``nvidia_driver_375.51``);
2. serve the **dummy volume** ConVGPU attaches to every managed container:
   when the container exits "by any reasons", Docker unmounts its volumes,
   the plugin's unmount callback fires, and the plugin "can send a *close*
   signal to the scheduler for that container".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.container.volumes import Mount
from repro.errors import IpcDisconnected, IpcTimeoutError, VolumeError
from repro.ipc import protocol
from repro.ipc.retry import RetryPolicy, call_with_retry
from repro.obs.log import get_logger

__all__ = ["NvidiaDockerPlugin", "DRIVER_VOLUME_PREFIX", "DUMMY_VOLUME_PREFIX"]

DRIVER_VOLUME_PREFIX = "nvidia_driver_"
DUMMY_VOLUME_PREFIX = "convgpu_dummy_"

#: control_call(msg_type, **payload) -> reply dict — how the plugin reaches
#: the scheduler daemon (UNIX socket in live mode, in-process otherwise).
ControlCall = Callable[..., dict[str, Any]]


class NvidiaDockerPlugin:
    """Docker volume plugin: driver volumes + ConVGPU exit detection."""

    driver_name = "nvidia-docker"

    def __init__(
        self,
        driver_version: str = "375.51",
        control_call: ControlCall | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.driver_version = driver_version
        self.control_call = control_call
        #: Backoff for *close* delivery — a close lost to a restarting daemon
        #: would leak the container's whole reservation until the reaper's
        #: heartbeat timeout, so the plugin retries through the restart.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=5, base_delay=0.05, jitter=0.0
        )
        self.log = get_logger("nvidia-docker-plugin")
        #: (volume_name, container_id) pairs currently mounted.
        self._active: set[tuple[str, str]] = set()
        #: Close signals sent (for tests / observability).
        self.close_signals: list[str] = []
        #: Close signals that could not be delivered after all retries.
        self.close_failures: list[str] = []

    # -- naming helpers --------------------------------------------------

    @property
    def driver_volume_name(self) -> str:
        """Volume encoding the CUDA/driver version nvidia-docker inspected."""
        return f"{DRIVER_VOLUME_PREFIX}{self.driver_version}"

    @staticmethod
    def dummy_volume_name(scheduler_key: str) -> str:
        """Encode the scheduler's container key in the volume name.

        nvidia-docker registers the container with the scheduler *before*
        Docker assigns an id (§III-B), so ConVGPU keys scheduler state by
        container name; embedding that key here lets the unmount callback
        recover it without a reverse lookup.
        """
        return f"{DUMMY_VOLUME_PREFIX}{scheduler_key}"

    def driver_mount(self) -> Mount:
        """The ``--volume`` nvidia-docker adds for driver binaries (§II-D)."""
        return Mount(
            source=self.driver_volume_name,
            target="/usr/local/nvidia",
            read_only=True,
            driver=self.driver_name,
        )

    def dummy_mount(self, container_id: str) -> Mount:
        """The exit-detection dummy volume ConVGPU adds (§III-B)."""
        return Mount(
            source=self.dummy_volume_name(container_id),
            target="/.convgpu-keepalive",
            read_only=True,
            driver=self.driver_name,
        )

    # -- VolumePlugin interface --------------------------------------------

    def mount(self, volume_name: str, container_id: str) -> str:
        if volume_name.startswith(DRIVER_VOLUME_PREFIX):
            if volume_name != self.driver_volume_name:
                raise VolumeError(
                    f"driver volume {volume_name!r} does not match installed "
                    f"driver {self.driver_version}"
                )
            self._active.add((volume_name, container_id))
            return f"/var/lib/nvidia-docker/volumes/{volume_name}"
        if volume_name.startswith(DUMMY_VOLUME_PREFIX):
            self._active.add((volume_name, container_id))
            self.log.debug(
                "volume_mounted", volume=volume_name, container_id=container_id
            )
            return f"/var/lib/nvidia-docker/volumes/{volume_name}"
        raise VolumeError(f"unknown nvidia-docker volume {volume_name!r}")

    def unmount(self, volume_name: str, container_id: str) -> None:
        self._active.discard((volume_name, container_id))
        self.log.debug(
            "volume_unmounted", volume=volume_name, container_id=container_id
        )
        if volume_name.startswith(DUMMY_VOLUME_PREFIX):
            # The container stopped: forward the close signal (§III-B),
            # addressed by the scheduler key embedded in the volume name.
            self.send_close(volume_name[len(DUMMY_VOLUME_PREFIX):])

    def send_close(self, scheduler_key: str) -> bool:
        """Deliver the *close* signal for one container, retrying transients.

        The unmount callback funnels through here; the daemon's orphan
        reaper synthesizes the same ``container_exit`` message when this
        delivery ultimately fails.  Retrying transient transport errors
        means a daemon restarting from its journal still receives every
        close.  Returns True when delivered (or when no control channel
        exists to deliver on).
        """
        self.close_signals.append(scheduler_key)
        if self.control_call is None:
            return True
        try:
            call_with_retry(
                lambda: self.control_call(
                    protocol.MSG_CONTAINER_EXIT, container_id=scheduler_key
                ),
                self.retry_policy,
                retry_on=(IpcDisconnected, IpcTimeoutError),
            )
            self.log.info("close_delivered", container_id=scheduler_key)
            return True
        except Exception as exc:
            # The daemon is gone for good during teardown; the heartbeat
            # reaper (liveness.py) is the backstop that reclaims the
            # reservation, and the scheduler treats unknown/closed
            # containers as no-ops if the close raced a recovery.
            self.close_failures.append(scheduler_key)
            self.log.error(
                "close_delivery_failed",
                container_id=scheduler_key,
                error=str(exc),
            )
            return False

    def is_mounted(self, volume_name: str, container_id: str) -> bool:
        return (volume_name, container_id) in self._active
