"""The (customized) NVIDIA Docker layer: thin CLI wrapper + volume plugin."""

from repro.nvdocker.cli import (
    CONTAINER_WRAPPER_DIR,
    DEFAULT_GPU_MEMORY_LIMIT,
    NvidiaDocker,
    NvidiaDockerCommand,
)
from repro.nvdocker.plugin import (
    DRIVER_VOLUME_PREFIX,
    DUMMY_VOLUME_PREFIX,
    NvidiaDockerPlugin,
)

__all__ = [
    "NvidiaDocker",
    "NvidiaDockerCommand",
    "NvidiaDockerPlugin",
    "DEFAULT_GPU_MEMORY_LIMIT",
    "CONTAINER_WRAPPER_DIR",
    "DRIVER_VOLUME_PREFIX",
    "DUMMY_VOLUME_PREFIX",
]
