"""The native CUDA Runtime API (the thing the wrapper module wraps).

Each public method reproduces one API from Table II of the paper plus the
execution APIs (memcpy, kernel launch, synchronize) that workloads need.
Methods are generators yielding :mod:`repro.cuda.effects` and returning
``(cudaError, value)`` tuples, mirroring the C calling convention of
``cudaError_t`` + out-parameters.

Semantics reproduced from the paper and CUDA 8.0 behaviour:

- first *allocation* of a process materializes its context, consuming
  64 MiB + 2 MiB of device memory (§III-D);
- ``cudaMallocPitch`` widens rows to the device pitch granularity, and the
  pitch "varies among the GPU model" — it is a device property (§III-C);
- ``cudaMalloc3D`` does the same for the 3-D extent;
- ``cudaMallocManaged`` reserves device space in 128 MiB multiples
  (§III-C: "allocates memory size which is multiple of 128MiB since it
  uses mapped memory") and is ~40x slower than ``cudaMalloc`` (Fig. 4);
- ``cudaFree(0)`` succeeds as a no-op; freeing a bad pointer returns
  ``cudaErrorInvalidDevicePointer``;
- allocation failure is in-band: ``cudaErrorMemoryAllocation``, never an
  exception (GPU memory cannot be swapped, §I).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.cuda.context import ContextTable
from repro.cuda.effects import DeviceOp, Effect, HostCompute, KernelLaunch, Synchronize
from repro.cuda.errors import cudaError
from repro.cuda.fatbinary import FatBinaryHandle, FatBinaryRegistry
from repro.cuda.runtime_async import AsyncRuntimeMixin, HostPinnedRegistry
from repro.cuda.streams import StreamTable
from repro.cuda.types import cudaDeviceProp, cudaExtent, cudaPitchedPtr
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice

__all__ = ["CudaRuntime", "ApiGen", "align_up"]

#: Type alias for the generator every API method returns.
ApiGen = Generator[Effect, Any, tuple[cudaError, Any]]


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of power-of-two ``alignment``."""
    return (value + alignment - 1) & ~(alignment - 1)


class CudaRuntime(AsyncRuntimeMixin):
    """Runtime API state for one process (pid) on one device.

    The instance is what the simulated dynamic linker binds CUDA symbols to
    when no ``LD_PRELOAD`` interposition is active.  The ConVGPU wrapper
    module holds a reference to an instance of this class and forwards to it
    after consulting the scheduler — "wrapper module allocates memory using
    original CUDA API, only if the requested size of the memory is
    available" (§III-C).
    """

    #: snake_case -> public symbol, used by interception/bench tables.
    SYMBOLS = (
        "cudaMalloc",
        "cudaMallocManaged",
        "cudaMallocPitch",
        "cudaMalloc3D",
        "cudaMallocArray",
        "cudaFree",
        "cudaMemGetInfo",
        "cudaGetDeviceProperties",
        "cudaMemcpy",
        "cudaLaunchKernel",
        "cudaDeviceSynchronize",
        "__cudaRegisterFatBinary",
        "__cudaUnregisterFatBinary",
    ) + AsyncRuntimeMixin.ASYNC_SYMBOLS

    def __init__(
        self,
        device: GpuDevice,
        pid: int,
        contexts: ContextTable,
        fatbins: FatBinaryRegistry | None = None,
    ) -> None:
        if contexts.device is not device:
            raise ValueError("context table belongs to a different device")
        self.device = device
        self.pid = pid
        self.contexts = contexts
        self.fatbins = fatbins if fatbins is not None else FatBinaryRegistry()
        self._costs = device.latency.api_costs
        #: Per-process stream/event state (see repro.cuda.streams).
        self.streams = StreamTable()
        #: Pinned host allocations (cudaMallocHost) — host-side only.
        self.host_pinned = HostPinnedRegistry()
        #: How many devices cudaGetDeviceCount reports (the facade raises
        #: this when a multi-GPU registry is attached).
        self.device_count = 1

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _ensure_context(self) -> ApiGen:
        """Materialize this pid's context if needed (yields its cost)."""
        if not self.contexts.has_context(self.pid):
            try:
                self.contexts.ensure(self.pid)
            except OutOfMemoryError:
                return cudaError.cudaErrorInitializationError, None
            yield DeviceOp(self._costs.context_create, api="contextCreate")
        return cudaError.cudaSuccess, None

    def _record_user_alloc(self, address: int) -> None:
        context = self.contexts.get(self.pid)
        assert context is not None, "allocation without a context"
        context.user_addresses.add(address)

    def _alloc_bytes(self, nbytes: int) -> tuple[cudaError, int | None]:
        """Allocate raw device bytes under this pid's context."""
        try:
            allocation = self.device.allocate(nbytes)
        except OutOfMemoryError:
            return cudaError.cudaErrorMemoryAllocation, None
        self._record_user_alloc(allocation.address)
        return cudaError.cudaSuccess, allocation.address

    # ------------------------------------------------------------------
    # allocation APIs (Table II)
    # ------------------------------------------------------------------

    def cudaMalloc(self, size: int) -> ApiGen:  # noqa: N802 - CUDA name
        """General-purpose device allocation. Returns (err, devPtr)."""
        if size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.cuda_malloc, api="cudaMalloc")
        return self._alloc_bytes(size)

    def cudaMallocManaged(self, size: int) -> ApiGen:  # noqa: N802
        """Unified-memory allocation; reserves 128 MiB multiples on device."""
        if size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.cuda_malloc_managed, api="cudaMallocManaged")
        reserved = align_up(size, self.device.properties.managed_granularity)
        return self._alloc_bytes(reserved)

    def cudaMallocPitch(self, width: int, height: int) -> ApiGen:  # noqa: N802
        """Pitched 2-D allocation. Returns (err, (devPtr, pitch))."""
        if width <= 0 or height <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.cuda_malloc_pitch, api="cudaMallocPitch")
        pitch = align_up(width, self.device.properties.pitch_granularity)
        err, address = self._alloc_bytes(pitch * height)
        if err is not cudaError.cudaSuccess:
            return err, None
        return cudaError.cudaSuccess, (address, pitch)

    def cudaMalloc3D(self, extent: cudaExtent) -> ApiGen:  # noqa: N802
        """Pitched 3-D allocation. Returns (err, cudaPitchedPtr)."""
        if extent.width <= 0 or extent.height <= 0 or extent.depth <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.cuda_malloc_3d, api="cudaMalloc3D")
        pitch = align_up(extent.width, self.device.properties.pitch_granularity)
        err, address = self._alloc_bytes(pitch * extent.height * extent.depth)
        if err is not cudaError.cudaSuccess:
            return err, None
        result = cudaPitchedPtr(
            ptr=address, pitch=pitch, xsize=extent.width, ysize=extent.height
        )
        return cudaError.cudaSuccess, result

    def cudaMallocArray(self, width: int, height: int, element_size: int = 4) -> ApiGen:  # noqa: N802
        """Texture-array allocation.

        Deliberately present but *not* on the wrapper's interception list:
        "Some allocation APIs which is used as a texture memory like
        cudaMallocArray are not captured, since they are not used in GPGPU"
        (§III-C).  The test suite uses it to show unmanaged allocations
        escaping the scheduler's accounting.
        """
        if width <= 0 or height < 0 or element_size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.cuda_malloc, api="cudaMallocArray")
        return self._alloc_bytes(width * max(height, 1) * element_size)

    # ------------------------------------------------------------------
    # deallocation / query APIs (Table II)
    # ------------------------------------------------------------------

    def cudaFree(self, dev_ptr: int) -> ApiGen:  # noqa: N802
        """Free a device allocation. ``cudaFree(0)`` is a successful no-op."""
        if dev_ptr == 0:
            return cudaError.cudaSuccess, None
        yield DeviceOp(self._costs.cuda_free, api="cudaFree")
        context = self.contexts.get(self.pid)
        if context is None or dev_ptr not in context.user_addresses:
            return cudaError.cudaErrorInvalidDevicePointer, None
        context.user_addresses.discard(dev_ptr)
        self.device.release(dev_ptr)
        return cudaError.cudaSuccess, None

    def cudaMemGetInfo(self) -> ApiGen:  # noqa: N802
        """Device-wide (free, total) memory, straight from the hardware."""
        yield DeviceOp(self._costs.cuda_mem_get_info, api="cudaMemGetInfo")
        info = self.device.mem_info()
        return cudaError.cudaSuccess, (info.free, info.total)

    def cudaGetDeviceProperties(self, ordinal: int = 0) -> ApiGen:  # noqa: N802
        """Device properties; the wrapper calls this once for the pitch."""
        if ordinal != self.device.ordinal:
            return cudaError.cudaErrorInvalidDevice, None
        yield DeviceOp(self._costs.cuda_get_device_properties, api="cudaGetDeviceProperties")
        return cudaError.cudaSuccess, cudaDeviceProp.from_properties(self.device.properties)

    # ------------------------------------------------------------------
    # execution APIs (not intercepted; used by workloads)
    # ------------------------------------------------------------------

    def cudaMemcpy(self, nbytes: int, kind: str) -> ApiGen:  # noqa: N802
        """Blocking copy; ``kind`` in {"h2d", "d2h", "d2d"}."""
        if nbytes < 0:
            return cudaError.cudaErrorInvalidValue, None
        durations = {
            "h2d": self.device.latency.h2d_time,
            "d2h": self.device.latency.d2h_time,
            "d2d": self.device.latency.d2d_time,
        }
        if kind not in durations:
            return cudaError.cudaErrorInvalidValue, None
        # cudaMemcpy is synchronizing with respect to prior kernels.
        yield Synchronize()
        yield DeviceOp(durations[kind](nbytes), api="cudaMemcpy")
        return cudaError.cudaSuccess, None

    def cudaLaunchKernel(self, duration: float, *, blocking: bool = True, name: str = "kernel") -> ApiGen:  # noqa: N802
        """Launch a kernel of pre-computed duration through Hyper-Q."""
        if duration < 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.kernel_launch, api="cudaLaunchKernel")
        yield KernelLaunch(duration, blocking=blocking, name=name)
        return cudaError.cudaSuccess, None

    def cudaDeviceSynchronize(self) -> ApiGen:  # noqa: N802
        """Block until all of this process's kernels have completed."""
        yield Synchronize()
        return cudaError.cudaSuccess, None

    def hostCompute(self, duration: float) -> ApiGen:  # noqa: N802
        """CPU-side work (not a CUDA API; convenience for workloads)."""
        if duration < 0:
            return cudaError.cudaErrorInvalidValue, None
        yield HostCompute(duration)
        return cudaError.cudaSuccess, None

    # ------------------------------------------------------------------
    # implicit APIs (Table II)
    # ------------------------------------------------------------------

    # NOTE: the real symbols are ``__cudaRegisterFatBinary`` /
    # ``__cudaUnregisterFatBinary``; Python name-mangles leading-dunder
    # method names inside class bodies, so the methods drop the prefix and
    # :meth:`resolve` maps the true symbol names onto them.

    def cudaRegisterFatBinary(self) -> ApiGen:  # noqa: N802
        """``__cudaRegisterFatBinary``: called by CRT startup before main()."""
        yield DeviceOp(self._costs.fatbin_register, api="__cudaRegisterFatBinary")
        return cudaError.cudaSuccess, self.fatbins.register(self.pid)

    def cudaUnregisterFatBinary(self, handle: FatBinaryHandle) -> ApiGen:  # noqa: N802
        """Called at process exit; tears down the context on last handle.

        Returns (err, pid_finished: bool).  The driver reclaims every
        allocation the process still holds — this is the backstop for
        programs that leak GPU memory (§III-D).
        """
        yield DeviceOp(self._costs.fatbin_unregister, api="__cudaUnregisterFatBinary")
        try:
            last = self.fatbins.unregister(handle)
        except KeyError:
            return cudaError.cudaErrorInvalidValue, None
        if last:
            self.contexts.destroy(self.pid)
        return cudaError.cudaSuccess, last

    # ------------------------------------------------------------------

    def resolve(self, symbol: str):
        """Look a public API symbol up by name (dynamic-linker hook)."""
        if symbol not in self.SYMBOLS:
            raise KeyError(f"runtime does not export {symbol!r}")
        # The implicit CRT symbols carry a ``__cuda`` prefix on the wire but
        # map to unmangled method names here (see note above).
        attr = symbol.lstrip("_")
        return getattr(self, attr)
