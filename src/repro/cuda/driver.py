"""CUDA Driver API subset (``cu*``), layered under the Runtime API.

§III-C: "our wrapper module can cover both CUDA Driver API and Runtime
API".  The driver layer shares the same per-pid context table and device as
the runtime — exactly like real CUDA, where the Runtime API is "implemented
on top of low-level Driver API" (§II-A) — so memory allocated through
``cuMemAlloc`` is visible to ``cudaMemGetInfo`` and vice versa.

Only the symbols the ConVGPU evaluation touches are provided: explicit
init/context control (the Driver API's "fine-grained context control",
§II-A) plus the memory trio the wrapper interposes.
"""

from __future__ import annotations

from repro.cuda.context import ContextTable
from repro.cuda.effects import DeviceOp
from repro.cuda.errors import CUresult
from repro.cuda.runtime import ApiGen
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice

__all__ = ["CudaDriver"]


class CudaDriver:
    """Driver API state for one process (pid) on one device."""

    SYMBOLS = (
        "cuInit",
        "cuCtxCreate",
        "cuCtxDestroy",
        "cuMemAlloc",
        "cuMemFree",
        "cuMemGetInfo",
    )

    def __init__(self, device: GpuDevice, pid: int, contexts: ContextTable) -> None:
        if contexts.device is not device:
            raise ValueError("context table belongs to a different device")
        self.device = device
        self.pid = pid
        self.contexts = contexts
        self._initialized = False
        self._costs = device.latency.api_costs

    def cuInit(self, flags: int = 0) -> ApiGen:  # noqa: N802 - CUDA name
        """Initialize the driver; must precede every other driver call."""
        if flags != 0:
            return CUresult.CUDA_ERROR_INVALID_VALUE, None
        yield DeviceOp(self._costs.cuda_get_device_properties, api="cuInit")
        self._initialized = True
        return CUresult.CUDA_SUCCESS, None

    def _check_init(self) -> CUresult:
        if not self._initialized:
            return CUresult.CUDA_ERROR_NOT_INITIALIZED
        return CUresult.CUDA_SUCCESS

    def cuCtxCreate(self) -> ApiGen:  # noqa: N802
        """Explicitly create this pid's context (fine-grained control)."""
        err = self._check_init()
        if not err.is_success:
            return err, None
        if not self.contexts.has_context(self.pid):
            try:
                self.contexts.ensure(self.pid)
            except OutOfMemoryError:
                return CUresult.CUDA_ERROR_OUT_OF_MEMORY, None
            yield DeviceOp(self._costs.context_create, api="cuCtxCreate")
        return CUresult.CUDA_SUCCESS, self.pid

    def cuCtxDestroy(self) -> ApiGen:  # noqa: N802
        """Destroy the pid's context, releasing all of its memory."""
        err = self._check_init()
        if not err.is_success:
            return err, None
        if self.contexts.get(self.pid) is None:
            return CUresult.CUDA_ERROR_INVALID_CONTEXT, None
        yield DeviceOp(self._costs.cuda_free, api="cuCtxDestroy")
        freed = self.contexts.destroy(self.pid)
        return CUresult.CUDA_SUCCESS, freed

    def cuMemAlloc(self, size: int) -> ApiGen:  # noqa: N802
        """Driver-level device allocation. Returns (result, dptr)."""
        err = self._check_init()
        if not err.is_success:
            return err, None
        if size <= 0:
            return CUresult.CUDA_ERROR_INVALID_VALUE, None
        if not self.contexts.has_context(self.pid):
            # Driver API has no implicit init: allocating without a context
            # is an error, unlike the Runtime API (§II-A).
            return CUresult.CUDA_ERROR_INVALID_CONTEXT, None
        yield DeviceOp(self._costs.cuda_malloc, api="cuMemAlloc")
        try:
            allocation = self.device.allocate(size)
        except OutOfMemoryError:
            return CUresult.CUDA_ERROR_OUT_OF_MEMORY, None
        context = self.contexts.get(self.pid)
        assert context is not None
        context.user_addresses.add(allocation.address)
        return CUresult.CUDA_SUCCESS, allocation.address

    def cuMemFree(self, dptr: int) -> ApiGen:  # noqa: N802
        """Driver-level free."""
        err = self._check_init()
        if not err.is_success:
            return err, None
        yield DeviceOp(self._costs.cuda_free, api="cuMemFree")
        context = self.contexts.get(self.pid)
        if context is None or dptr not in context.user_addresses:
            return CUresult.CUDA_ERROR_INVALID_VALUE, None
        context.user_addresses.discard(dptr)
        self.device.release(dptr)
        return CUresult.CUDA_SUCCESS, None

    def cuMemGetInfo(self) -> ApiGen:  # noqa: N802
        """Driver-level (free, total) query."""
        err = self._check_init()
        if not err.is_success:
            return err, None
        yield DeviceOp(self._costs.cuda_mem_get_info, api="cuMemGetInfo")
        info = self.device.mem_info()
        return CUresult.CUDA_SUCCESS, (info.free, info.total)

    def resolve(self, symbol: str):
        """Look a driver symbol up by name (dynamic-linker hook)."""
        if symbol not in self.SYMBOLS:
            raise KeyError(f"driver does not export {symbol!r}")
        return getattr(self, symbol)
