"""Effect objects yielded by CUDA API implementations.

Every API entry point in this reproduction — native Runtime/Driver calls and
the ConVGPU wrapper interpositions alike — is a Python generator that yields
*effects* and returns its result.  An interpreter drives the generator and
gives each effect meaning:

- the **simulation runner** (:mod:`repro.workloads.runner`) turns
  :class:`DeviceOp` into virtual-time delays, :class:`KernelLaunch` into
  Hyper-Q submissions, and :class:`IpcCall` into scheduler round-trips that
  may *suspend the whole program* (the paper's "pause");
- the **live runner** performs :class:`IpcCall` over a real AF_UNIX socket
  (blocking on the scheduler daemon thread) and accumulates modelled device
  time without sleeping.

This is the Python analogue of the paper's `LD_PRELOAD` design: the user
program's call site is identical whether or not interception is active; only
the bound implementation (and hence the effect stream) changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Effect",
    "DeviceOp",
    "KernelLaunch",
    "Synchronize",
    "HostCompute",
    "IpcCall",
    "StreamOp",
    "StreamWait",
    "EventRecord",
]


class Effect:
    """Marker base class for all effects."""

    __slots__ = ()


@dataclass(frozen=True)
class DeviceOp(Effect):
    """Synchronous device/driver work of a known duration (seconds).

    Covers API-call service time and blocking memory transfers.
    """

    duration: float
    api: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative DeviceOp duration: {self.duration}")


@dataclass(frozen=True)
class KernelLaunch(Effect):
    """An asynchronous kernel submission.

    ``duration`` is the kernel's standalone execution time; actual start and
    completion are decided by the device's Hyper-Q engine.  ``blocking``
    marks launches immediately followed by a sync in the original program
    (our workloads use blocking launches, as the paper's sample program
    copies results back right after the kernel).
    """

    duration: float
    blocking: bool = True
    name: str = "kernel"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative kernel duration: {self.duration}")


@dataclass(frozen=True)
class Synchronize(Effect):
    """Wait until every kernel this process launched has completed."""


@dataclass(frozen=True)
class HostCompute(Effect):
    """CPU-side work of a known duration (data generation, Python overhead)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative HostCompute duration: {self.duration}")


@dataclass(frozen=True)
class StreamOp(Effect):
    """Queue an asynchronous op on a CUDA stream and return immediately.

    The interpreter calls ``table.queue_op(stream_id, now, duration)`` with
    its clock and sends the ``(start, completion)`` pair back into the
    generator.  The calling thread does not block — that is the point of
    streams; synchronization happens via :class:`StreamWait`.
    """

    table: "object"  # repro.cuda.streams.StreamTable (kept loose: no cycle)
    stream_id: int
    duration: float
    name: str = "async-op"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative StreamOp duration: {self.duration}")


@dataclass(frozen=True)
class StreamWait(Effect):
    """Block until a stream (or, with ``stream_id=None``, all streams) drains."""

    table: "object"
    stream_id: int | None = None


@dataclass(frozen=True)
class EventRecord(Effect):
    """``cudaEventRecord``: stamp the event with the stream's drain time.

    The interpreter performs ``table.record_event(event_id, stream_id,
    now)`` — recording needs the current clock, which only interpreters
    have.
    """

    table: "object"
    event_id: int
    stream_id: int


@dataclass(frozen=True)
class IpcCall(Effect):
    """A message to the GPU memory scheduler.

    The interpreter must deliver ``message`` to the scheduler endpoint bound
    to the calling container.  When ``await_reply`` is True it must send the
    scheduler's reply (a dict) back into the generator as the value of the
    ``yield``; if the scheduler decides to pause the container, the reply
    simply does not arrive until the scheduler releases it — blocking the
    program, exactly like a ``recv()`` on the real UNIX socket.

    When ``await_reply`` is False the message is a **notification**
    (commit/release/abort/process-exit bookkeeping): the wrapper does not
    wait, which is why Fig. 4 shows ``cudaFree`` at native speed under
    ConVGPU.
    """

    message: dict[str, Any] = field(default_factory=dict)
    await_reply: bool = True
