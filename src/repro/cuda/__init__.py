"""CUDA substrate: the API surface the ConVGPU wrapper intercepts.

A from-scratch Python model of the CUDA 8.0 Runtime + Driver APIs listed in
Table II of the paper, including the implicit context overhead (64 + 2 MiB),
pitched/managed size adjustment, fat-binary lifecycle, and in-band
``cudaError_t`` error reporting.  See DESIGN.md §2 for the substitution
rationale.
"""

from repro.cuda.context import (
    CONTEXT_OVERHEAD,
    PROCESS_DATA_OVERHEAD,
    TOTAL_CONTEXT_OVERHEAD,
    ContextTable,
    CudaContext,
)
from repro.cuda.driver import CudaDriver
from repro.cuda.effects import (
    DeviceOp,
    Effect,
    HostCompute,
    IpcCall,
    KernelLaunch,
    Synchronize,
)
from repro.cuda.errors import CudaApiError, CUresult, cudaError
from repro.cuda.fatbinary import FatBinaryHandle, FatBinaryRegistry
from repro.cuda.runtime import ApiGen, CudaRuntime, align_up
from repro.cuda.types import cudaDeviceProp, cudaExtent, cudaPitchedPtr, dim3

__all__ = [
    "cudaError",
    "CUresult",
    "CudaApiError",
    "CudaRuntime",
    "CudaDriver",
    "ApiGen",
    "align_up",
    "ContextTable",
    "CudaContext",
    "PROCESS_DATA_OVERHEAD",
    "CONTEXT_OVERHEAD",
    "TOTAL_CONTEXT_OVERHEAD",
    "FatBinaryHandle",
    "FatBinaryRegistry",
    "Effect",
    "DeviceOp",
    "KernelLaunch",
    "Synchronize",
    "HostCompute",
    "IpcCall",
    "dim3",
    "cudaExtent",
    "cudaPitchedPtr",
    "cudaDeviceProp",
]
