"""CUDA streams and events.

The paper's testbed relies on Hyper-Q ("it can run multiple GPU kernels
concurrently up to 32 kernels", §IV-A).  On real Kepler hardware the unit
of concurrency is the *stream*: work items in one stream serialize, and
Hyper-Q gives independent streams independent hardware queues.  This module
models exactly that, giving workloads the async toolbox (streams, events,
``cudaMemcpyAsync``, per-stream synchronization) that real multi-tenant
CUDA programs use.

Semantics implemented:

- operations queued on one stream execute in FIFO order;
- distinct streams proceed independently (bounded by the device-wide
  Hyper-Q width through :class:`~repro.gpu.hyperq.HyperQEngine`);
- the default stream (0) is *synchronizing*: legacy-default-stream rules,
  i.e. work on stream 0 does not begin until all other streams have
  drained, and later work on any stream waits for it;
- events record completion points; ``cudaStreamWaitEvent`` makes a stream
  wait for an event recorded on another (cross-stream dependencies);
- ``cudaEventElapsedTime`` returns the modelled milliseconds between two
  completed events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import GpuError

__all__ = ["CudaStream", "CudaEvent", "StreamTable"]


@dataclass
class CudaStream:
    """One stream's queue state: when its last queued op completes."""

    stream_id: int
    #: Completion time of the most recently queued operation.
    tail_time: float = 0.0
    #: Number of operations queued over the stream's lifetime.
    ops_queued: int = 0
    destroyed: bool = False


@dataclass
class CudaEvent:
    """A completion marker recorded into a stream."""

    event_id: int
    #: Time the event completes; None until recorded.
    completion_time: float | None = None
    recorded_on: int | None = None

    @property
    def recorded(self) -> bool:
        return self.completion_time is not None


class StreamTable:
    """Per-process stream and event bookkeeping.

    The table is pure time arithmetic: ``queue_op`` computes when an
    operation queued *now* on a stream would start and finish, honoring
    stream FIFO order and default-stream synchronization.  The caller (the
    runtime) is responsible for feeding kernel durations through the
    device's Hyper-Q engine first when the op is a kernel.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._event_ids = itertools.count(1)
        #: stream_id -> CudaStream; 0 is the default stream.
        self._streams: dict[int, CudaStream] = {0: CudaStream(0)}
        self._events: dict[int, CudaEvent] = {}

    # -- stream lifecycle ---------------------------------------------------

    def create_stream(self) -> CudaStream:
        stream = CudaStream(next(self._ids))
        self._streams[stream.stream_id] = stream
        return stream

    def get(self, stream_id: int) -> CudaStream:
        stream = self._streams.get(stream_id)
        if stream is None or stream.destroyed:
            raise GpuError(f"invalid stream {stream_id}")
        return stream

    def destroy_stream(self, stream_id: int) -> None:
        if stream_id == 0:
            raise GpuError("the default stream cannot be destroyed")
        self.get(stream_id).destroyed = True

    def live_streams(self) -> list[int]:
        return sorted(s.stream_id for s in self._streams.values() if not s.destroyed)

    # -- queueing -----------------------------------------------------------

    def queue_op(self, stream_id: int, now: float, duration: float) -> tuple[float, float]:
        """Queue an op; returns (start_time, completion_time).

        Default-stream (0) ops are synchronizing: they start only after
        every stream has drained, and every stream's tail is pushed to
        their completion (legacy default-stream semantics).
        """
        if duration < 0:
            raise GpuError(f"negative op duration: {duration}")
        stream = self.get(stream_id)
        if stream_id == 0:
            start = max(now, *(s.tail_time for s in self._streams.values()))
        else:
            default_tail = self._streams[0].tail_time
            start = max(now, stream.tail_time, default_tail)
        completion = start + duration
        stream.tail_time = completion
        stream.ops_queued += 1
        if stream_id == 0:
            for other in self._streams.values():
                if not other.destroyed:
                    other.tail_time = max(other.tail_time, completion)
        return start, completion

    def stream_drain_time(self, stream_id: int, now: float) -> float:
        """When the stream's queued work completes (cudaStreamSynchronize)."""
        return max(now, self.get(stream_id).tail_time)

    def device_drain_time(self, now: float) -> float:
        """When all streams complete (cudaDeviceSynchronize)."""
        tails = [s.tail_time for s in self._streams.values() if not s.destroyed]
        return max([now, *tails])

    # -- events -------------------------------------------------------------

    def create_event(self) -> CudaEvent:
        event = CudaEvent(next(self._event_ids))
        self._events[event.event_id] = event
        return event

    def get_event(self, event_id: int) -> CudaEvent:
        event = self._events.get(event_id)
        if event is None:
            raise GpuError(f"invalid event {event_id}")
        return event

    def record_event(self, event_id: int, stream_id: int, now: float) -> CudaEvent:
        """``cudaEventRecord``: completes when the stream's queue drains."""
        event = self.get_event(event_id)
        event.completion_time = self.stream_drain_time(stream_id, now)
        event.recorded_on = stream_id
        return event

    def stream_wait_event(self, stream_id: int, event_id: int) -> None:
        """``cudaStreamWaitEvent``: future stream ops wait for the event."""
        event = self.get_event(event_id)
        if not event.recorded:
            return  # waiting on an unrecorded event is a no-op (CUDA rule)
        stream = self.get(stream_id)
        stream.tail_time = max(stream.tail_time, event.completion_time)

    def elapsed_ms(self, start_id: int, stop_id: int) -> float:
        """``cudaEventElapsedTime`` (milliseconds)."""
        start = self.get_event(start_id)
        stop = self.get_event(stop_id)
        if not (start.recorded and stop.recorded):
            raise GpuError("both events must be recorded")
        return (stop.completion_time - start.completion_time) * 1e3
