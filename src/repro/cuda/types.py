"""CUDA value types used by the intercepted API surface.

These mirror the C structs that cross the Runtime API boundary for the
Table II APIs: ``cudaExtent``/``cudaPitchedPtr`` for ``cudaMalloc3D``,
``dim3`` for kernel launches, and the ``cudaDeviceProp`` view returned by
``cudaGetDeviceProperties`` (which the wrapper module calls once to learn
the device pitch, §III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.properties import DeviceProperties

__all__ = ["dim3", "cudaExtent", "cudaPitchedPtr", "cudaDeviceProp"]


@dataclass(frozen=True)
class dim3:  # noqa: N801 - matches CUDA naming
    """Kernel grid/block dimensions."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dim3 components must be >= 1: {self}")

    @property
    def count(self) -> int:
        return self.x * self.y * self.z


@dataclass(frozen=True)
class cudaExtent:  # noqa: N801 - matches CUDA naming
    """3-D allocation extent in bytes × rows × slices."""

    width: int  # bytes
    height: int  # rows
    depth: int  # slices

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.depth) < 0:
            raise ValueError(f"extent components must be >= 0: {self}")


@dataclass(frozen=True)
class cudaPitchedPtr:  # noqa: N801 - matches CUDA naming
    """Result of ``cudaMalloc3D``: base pointer plus pitch geometry."""

    ptr: int
    pitch: int
    xsize: int
    ysize: int


@dataclass(frozen=True)
class cudaDeviceProp:  # noqa: N801 - matches CUDA naming
    """The subset of ``cudaDeviceProp`` our stack reads."""

    name: str
    totalGlobalMem: int  # noqa: N815 - CUDA field name
    texturePitchAlignment: int  # noqa: N815
    pitchGranularity: int  # noqa: N815 - not in real CUDA; exposed for the wrapper
    multiProcessorCount: int  # noqa: N815
    clockRate: int  # noqa: N815 - kHz
    major: int
    minor: int

    @classmethod
    def from_properties(cls, properties: DeviceProperties) -> "cudaDeviceProp":
        return cls(
            name=properties.name,
            totalGlobalMem=properties.total_global_mem,
            texturePitchAlignment=properties.texture_pitch_alignment,
            pitchGranularity=properties.pitch_granularity,
            multiProcessorCount=properties.multiprocessor_count,
            clockRate=properties.clock_rate_khz,
            major=properties.compute_capability[0],
            minor=properties.compute_capability[1],
        )
