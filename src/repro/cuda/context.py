"""Per-process CUDA contexts and the implicit 64 + 2 MiB overhead.

§III-D of the paper: "CUDA uses 64MiB of memory to store data related to
current process and 2MiB to store CUDA context when the user program uses
the CUDA API to allocate memory for the first time."  The scheduler has to
*estimate* this overhead (it adds 66 MiB on the first allocation of a pid);
here we implement the underlying reality it estimates: the driver carves the
overhead out of device memory when a process's context is materialized.

Keeping the real overhead and the scheduler's estimate as separate pieces of
code lets the ablation bench (`test_bench_ablation_overhead`) show what goes
wrong when the scheduler ignores it: containers collectively over-commit and
allocations that "should" fit fail on the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import MiB

__all__ = [
    "PROCESS_DATA_OVERHEAD",
    "CONTEXT_OVERHEAD",
    "TOTAL_CONTEXT_OVERHEAD",
    "CudaContext",
    "ContextTable",
]

#: Driver-private per-process storage (§III-D).
PROCESS_DATA_OVERHEAD: int = 64 * MiB
#: CUDA context storage (§III-D).
CONTEXT_OVERHEAD: int = 2 * MiB
#: What the scheduler charges per pid on first allocation.
TOTAL_CONTEXT_OVERHEAD: int = PROCESS_DATA_OVERHEAD + CONTEXT_OVERHEAD


@dataclass
class CudaContext:
    """Driver-side state for one (pid, device) pair."""

    pid: int
    device: GpuDevice
    #: Device addresses of the driver-private overhead blocks.
    overhead_addresses: list[int] = field(default_factory=list)
    #: Device addresses of user allocations made through this context.
    user_addresses: set[int] = field(default_factory=set)
    destroyed: bool = False

    @property
    def overhead_bytes(self) -> int:
        return sum(self.device.allocator.size_of(a) for a in self.overhead_addresses)

    def destroy(self) -> int:
        """Tear the context down, freeing overhead AND leaked user memory.

        Returns the number of bytes released.  This models what actually
        happens when a process exits (or ``__cudaUnregisterFatBinary``
        fires): the driver reclaims everything the process still holds —
        "some program may not free its allocated GPU memory" (§III-D).
        """
        if self.destroyed:
            return 0
        freed = 0
        for address in list(self.user_addresses):
            freed += self.device.release(address).size
        self.user_addresses.clear()
        for address in self.overhead_addresses:
            freed += self.device.release(address).size
        self.overhead_addresses.clear()
        self.destroyed = True
        return freed


class ContextTable:
    """All live contexts on one device, keyed by pid."""

    def __init__(self, device: GpuDevice) -> None:
        self.device = device
        self._contexts: dict[int, CudaContext] = {}

    def get(self, pid: int) -> CudaContext | None:
        context = self._contexts.get(pid)
        if context is not None and context.destroyed:
            return None
        return context

    def has_context(self, pid: int) -> bool:
        return self.get(pid) is not None

    def ensure(self, pid: int) -> tuple[CudaContext, bool]:
        """Return the pid's context, creating it on first use.

        Returns ``(context, created)``.  Creation allocates the 64 MiB
        process block and the 2 MiB context block from device memory; if the
        device cannot hold them the creation fails with
        :class:`~repro.errors.OutOfMemoryError` after rolling back partial
        allocations (contexts are all-or-nothing).
        """
        existing = self.get(pid)
        if existing is not None:
            return existing, False
        context = CudaContext(pid=pid, device=self.device)
        try:
            context.overhead_addresses.append(
                self.device.allocate(PROCESS_DATA_OVERHEAD).address
            )
            context.overhead_addresses.append(
                self.device.allocate(CONTEXT_OVERHEAD).address
            )
        except OutOfMemoryError:
            for address in context.overhead_addresses:
                self.device.release(address)
            raise
        self._contexts[pid] = context
        return context, True

    def destroy(self, pid: int) -> int:
        """Destroy the pid's context if present; returns bytes freed."""
        context = self._contexts.pop(pid, None)
        if context is None:
            return 0
        return context.destroy()

    def live_pids(self) -> list[int]:
        return sorted(pid for pid, c in self._contexts.items() if not c.destroyed)
