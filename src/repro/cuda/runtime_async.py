"""Asynchronous and auxiliary Runtime APIs (streams, events, pinned memory).

Split from :mod:`repro.cuda.runtime` for readability; the class here is
mixed into :class:`~repro.cuda.runtime.CudaRuntime`.  These APIs are *not*
on ConVGPU's interception list (Table II covers allocation/deallocation
only), but real multi-tenant programs use them heavily, and the Hyper-Q
concurrency the paper's evaluation leans on (§IV-A) is exercised through
streams — so the substrate provides them, and the test suite verifies that
the middleware's accounting stays correct underneath async traffic.

Stream semantics live in :mod:`repro.cuda.streams`; time-dependent steps
are expressed as :class:`~repro.cuda.effects.StreamOp` /
:class:`~repro.cuda.effects.StreamWait` / :class:`~repro.cuda.effects.
EventRecord` effects because only interpreters own a clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cuda.effects import DeviceOp, EventRecord, StreamOp, StreamWait
from repro.cuda.errors import cudaError
from repro.errors import GpuError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.runtime import ApiGen

__all__ = ["AsyncRuntimeMixin", "HostPinnedRegistry"]

#: Base virtual address for pinned host allocations (distinct from device
#: ranges so mixing pointers up fails loudly).
_HOST_PINNED_BASE = 0x2_0000_0000


class HostPinnedRegistry:
    """Tracks ``cudaMallocHost`` pinned host buffers for one process."""

    def __init__(self) -> None:
        self._next = _HOST_PINNED_BASE
        self._live: dict[int, int] = {}

    def allocate(self, size: int) -> int:
        address = self._next
        self._next += size + 4096
        self._live[address] = size
        return address

    def release(self, address: int) -> int | None:
        return self._live.pop(address, None)

    @property
    def pinned_bytes(self) -> int:
        return sum(self._live.values())

    def live_count(self) -> int:
        return len(self._live)


class AsyncRuntimeMixin:
    """Streams, events, async copies, memset, pinned memory, device mgmt.

    Relies on attributes provided by ``CudaRuntime.__init__``: ``device``,
    ``contexts``, ``pid``, ``_costs``, ``streams`` (a StreamTable) and
    ``host_pinned`` (a HostPinnedRegistry).
    """

    ASYNC_SYMBOLS = (
        "cudaStreamCreate",
        "cudaStreamDestroy",
        "cudaStreamSynchronize",
        "cudaStreamWaitEvent",
        "cudaEventCreate",
        "cudaEventRecord",
        "cudaEventSynchronize",
        "cudaEventElapsedTime",
        "cudaMemcpyAsync",
        "cudaLaunchKernelAsync",
        "cudaMemsetAsync",
        "cudaMemset",
        "cudaMallocHost",
        "cudaFreeHost",
        "cudaSetDevice",
        "cudaGetDevice",
        "cudaGetDeviceCount",
        "cudaDeviceReset",
    )

    # -- streams ------------------------------------------------------------

    def cudaStreamCreate(self) -> "ApiGen":  # noqa: N802 - CUDA name
        """Create a stream. Returns (err, stream_id)."""
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        yield DeviceOp(self._costs.kernel_launch, api="cudaStreamCreate")
        return cudaError.cudaSuccess, self.streams.create_stream().stream_id

    def cudaStreamDestroy(self, stream_id: int) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaStreamDestroy")
        try:
            self.streams.destroy_stream(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        return cudaError.cudaSuccess, None

    def cudaStreamSynchronize(self, stream_id: int) -> "ApiGen":  # noqa: N802
        try:
            self.streams.get(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        yield StreamWait(self.streams, stream_id)
        return cudaError.cudaSuccess, None

    def cudaStreamWaitEvent(self, stream_id: int, event_id: int) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaStreamWaitEvent")
        try:
            self.streams.stream_wait_event(stream_id, event_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        return cudaError.cudaSuccess, None

    # -- events -------------------------------------------------------------

    def cudaEventCreate(self) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaEventCreate")
        return cudaError.cudaSuccess, self.streams.create_event().event_id

    def cudaEventRecord(self, event_id: int, stream_id: int = 0) -> "ApiGen":  # noqa: N802
        try:
            self.streams.get_event(event_id)
            self.streams.get(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        yield EventRecord(self.streams, event_id, stream_id)
        return cudaError.cudaSuccess, None

    def cudaEventSynchronize(self, event_id: int) -> "ApiGen":  # noqa: N802
        try:
            event = self.streams.get_event(event_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        if event.recorded:
            # Wait for the stream the event was recorded on; the event's
            # completion is by construction <= that stream's drain.
            yield StreamWait(self.streams, event.recorded_on)
        return cudaError.cudaSuccess, None

    def cudaEventElapsedTime(self, start_id: int, stop_id: int) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaEventElapsedTime")
        try:
            return cudaError.cudaSuccess, self.streams.elapsed_ms(start_id, stop_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None

    # -- async data movement --------------------------------------------------

    def cudaMemcpyAsync(self, nbytes: int, kind: str, stream_id: int = 0) -> "ApiGen":  # noqa: N802
        """Queue a copy on a stream; returns immediately."""
        if nbytes < 0:
            return cudaError.cudaErrorInvalidValue, None
        durations = {
            "h2d": self.device.latency.h2d_time,
            "d2h": self.device.latency.d2h_time,
            "d2d": self.device.latency.d2d_time,
        }
        if kind not in durations:
            return cudaError.cudaErrorInvalidValue, None
        try:
            self.streams.get(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        yield DeviceOp(self._costs.cuda_memcpy_setup, api="cudaMemcpyAsync")
        yield StreamOp(
            self.streams, stream_id, durations[kind](nbytes), name=f"memcpy-{kind}"
        )
        return cudaError.cudaSuccess, None

    def cudaMemset(self, dev_ptr: int, value: int, count: int) -> "ApiGen":  # noqa: N802
        """Synchronous device fill (bounded by memory write bandwidth)."""
        err = self._check_device_range(dev_ptr, count)
        if err is not cudaError.cudaSuccess:
            return err, None
        duration = (
            self.device.properties.kernel_launch_latency
            + count / self.device.properties.memory_bandwidth
        )
        yield DeviceOp(duration, api="cudaMemset")
        return cudaError.cudaSuccess, None

    def cudaMemsetAsync(self, dev_ptr: int, value: int, count: int, stream_id: int = 0) -> "ApiGen":  # noqa: N802
        err = self._check_device_range(dev_ptr, count)
        if err is not cudaError.cudaSuccess:
            return err, None
        try:
            self.streams.get(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        duration = (
            self.device.properties.kernel_launch_latency
            + count / self.device.properties.memory_bandwidth
        )
        yield DeviceOp(self._costs.kernel_launch, api="cudaMemsetAsync")
        yield StreamOp(self.streams, stream_id, duration, name="memset")
        return cudaError.cudaSuccess, None

    def _check_device_range(self, dev_ptr: int, count: int) -> cudaError:
        if count < 0:
            return cudaError.cudaErrorInvalidValue
        context = self.contexts.get(self.pid)
        if context is None or dev_ptr not in context.user_addresses:
            return cudaError.cudaErrorInvalidDevicePointer
        if count > self.device.allocator.size_of(dev_ptr):
            return cudaError.cudaErrorInvalidValue
        return cudaError.cudaSuccess

    # -- pinned host memory -----------------------------------------------------

    def cudaMallocHost(self, size: int) -> "ApiGen":  # noqa: N802
        """Page-locked host allocation: slow to create, fast to transfer.

        Host-side only — it consumes *no* device memory, so ConVGPU's
        scheduler rightly ignores it (and the test suite checks that).
        Pinning cost scales with size (page-locking is per-page work).
        """
        if size <= 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        pin_cost = 50e-6 + size / 4e9  # ~0.25 ms per GiB of pages
        yield DeviceOp(pin_cost, api="cudaMallocHost")
        return cudaError.cudaSuccess, self.host_pinned.allocate(size)

    def cudaFreeHost(self, host_ptr: int) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.cuda_free, api="cudaFreeHost")
        if self.host_pinned.release(host_ptr) is None:
            return cudaError.cudaErrorInvalidValue, None
        return cudaError.cudaSuccess, None

    # -- device management ----------------------------------------------------

    def cudaSetDevice(self, ordinal: int) -> "ApiGen":  # noqa: N802
        """Single-device runtime: only the bound ordinal is valid."""
        yield DeviceOp(self._costs.kernel_launch, api="cudaSetDevice")
        if ordinal != self.device.ordinal:
            return cudaError.cudaErrorInvalidDevice, None
        return cudaError.cudaSuccess, None

    def cudaGetDevice(self) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaGetDevice")
        return cudaError.cudaSuccess, self.device.ordinal

    def cudaGetDeviceCount(self) -> "ApiGen":  # noqa: N802
        yield DeviceOp(self._costs.kernel_launch, api="cudaGetDeviceCount")
        return cudaError.cudaSuccess, self.device_count

    def cudaDeviceReset(self) -> "ApiGen":  # noqa: N802
        """Destroy this process's context, releasing everything it holds.

        The recovery hammer real CUDA programs reach for after errors.
        The next allocation re-creates the context (and re-pays its 66 MiB
        on both the device and, via the wrapper's accounting, the
        scheduler — the pid's records were dropped with the context).
        """
        yield DeviceOp(self._costs.cuda_free, api="cudaDeviceReset")
        self.contexts.destroy(self.pid)
        return cudaError.cudaSuccess, None

    # -- stream-aware kernel launch helper -------------------------------------

    def cudaLaunchKernelAsync(self, duration: float, stream_id: int) -> "ApiGen":  # noqa: N802
        """Queue a kernel on a stream (the Hyper-Q-exercising path).

        The kernel's device-side duration first passes through the shared
        Hyper-Q engine via the blocking-launch path when it eventually
        runs; at this per-process level, stream FIFO order is what we
        model (cross-process contention is covered by blocking launches).
        """
        if duration < 0:
            return cudaError.cudaErrorInvalidValue, None
        err, _ = yield from self._ensure_context()
        if err is not cudaError.cudaSuccess:
            return err, None
        try:
            self.streams.get(stream_id)
        except GpuError:
            return cudaError.cudaErrorInvalidValue, None
        yield DeviceOp(self._costs.kernel_launch, api="cudaLaunchKernel")
        yield StreamOp(self.streams, stream_id, duration, name="kernel")
        return cudaError.cudaSuccess, None
