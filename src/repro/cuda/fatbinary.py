"""CUDA fat-binary registration bookkeeping.

A CUDA program's startup code registers its embedded device code ("fat
binary") with the driver before ``main`` runs, and unregisters it at exit —
``__cudaUnregisterFatBinary`` is the *implicit* API the ConVGPU wrapper
intercepts to learn that a user program finished (§III-C, Table II), so the
scheduler can reclaim memory even from programs that never call
``cudaFree``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["FatBinaryHandle", "FatBinaryRegistry"]


@dataclass(frozen=True)
class FatBinaryHandle:
    """Opaque handle returned by ``__cudaRegisterFatBinary``."""

    handle_id: int
    pid: int


class FatBinaryRegistry:
    """Tracks which pids currently have registered device code."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        #: pid -> list of live handles (a binary may link several modules).
        self._by_pid: dict[int, list[FatBinaryHandle]] = {}

    def register(self, pid: int) -> FatBinaryHandle:
        handle = FatBinaryHandle(handle_id=next(self._ids), pid=pid)
        self._by_pid.setdefault(pid, []).append(handle)
        return handle

    def unregister(self, handle: FatBinaryHandle) -> bool:
        """Remove one handle; returns True when the pid has none left.

        The "pid has no more registered binaries" transition is the signal
        the wrapper forwards to the scheduler as process exit.
        """
        handles = self._by_pid.get(handle.pid)
        if not handles or handle not in handles:
            raise KeyError(f"unknown fat-binary handle {handle}")
        handles.remove(handle)
        if not handles:
            del self._by_pid[handle.pid]
            return True
        return False

    def registered_pids(self) -> list[int]:
        return sorted(self._by_pid)

    def has_registration(self, pid: int) -> bool:
        return pid in self._by_pid
