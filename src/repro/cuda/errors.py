"""CUDA error codes (Runtime API ``cudaError_t`` and Driver API ``CUresult``).

The real CUDA Runtime reports failures in-band through return codes rather
than exceptions; user programs in this reproduction check codes the same way
C programs do, which matters for the failure-injection experiments (a
container whose allocation is *rejected* sees ``cudaErrorMemoryAllocation``,
exactly what an unmanaged over-committed container would see on the real
device).

Only the codes the ConVGPU paper's API surface can produce are defined.
"""

from __future__ import annotations

import enum

__all__ = ["cudaError", "CUresult", "CudaApiError"]


class cudaError(enum.IntEnum):  # noqa: N801 - matches CUDA naming
    """Runtime API error codes (numeric values match CUDA 8.0)."""

    cudaSuccess = 0
    cudaErrorMemoryAllocation = 2
    cudaErrorInitializationError = 3
    cudaErrorInvalidValue = 11
    cudaErrorInvalidDevicePointer = 17
    cudaErrorInvalidDevice = 10
    cudaErrorNoDevice = 38
    cudaErrorNotSupported = 71
    #: ConVGPU-specific: the scheduler refused the allocation because it
    #: exceeds the container's declared limit.  Surfaced to the program as a
    #: plain allocation failure (the wrapper maps it), but kept distinct
    #: internally for the event log.
    cudaErrorLaunchFailure = 4

    @property
    def is_success(self) -> bool:
        return self is cudaError.cudaSuccess


class CUresult(enum.IntEnum):
    """Driver API result codes (numeric values match CUDA 8.0)."""

    CUDA_SUCCESS = 0
    CUDA_ERROR_INVALID_VALUE = 1
    CUDA_ERROR_OUT_OF_MEMORY = 2
    CUDA_ERROR_NOT_INITIALIZED = 3
    CUDA_ERROR_DEINITIALIZED = 4
    CUDA_ERROR_NO_DEVICE = 100
    CUDA_ERROR_INVALID_DEVICE = 101
    CUDA_ERROR_INVALID_CONTEXT = 201

    @property
    def is_success(self) -> bool:
        return self is CUresult.CUDA_SUCCESS


class CudaApiError(RuntimeError):
    """Raised only by the *convenience* checked helpers, never by raw APIs."""

    def __init__(self, code: cudaError | CUresult, api: str) -> None:
        super().__init__(f"{api} failed with {code.name}")
        self.code = code
        self.api = api
