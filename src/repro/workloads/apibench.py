"""The single-container API-response-time test program (Fig. 4, §IV-A).

"We wrote a test program to evaluate the performance of single container.
The test program calls each CUDA API which we hooked with wrapper module."
Response times are taken with a monotonic clock around each call — the
container-side equivalent of the paper's ``clock_gettime(CLOCK_MONOTONIC)``
— and recorded into the process annotations for the experiment driver.

The APIs exercised match Fig. 4's bars: cudaMalloc, cudaMallocManaged,
cudaMallocPitch (first call, which pays the device-properties query),
cudaFree and cudaMemGetInfo.  ``cudaMalloc3D`` and
``cudaGetDeviceProperties`` are omitted exactly as the paper omits them
("operates the same function but different format with other APIs").
"""

from __future__ import annotations

from typing import Callable

from repro.cuda.errors import cudaError
from repro.units import MiB
from repro.workloads.api import ProcessApi
from repro.workloads.runner import fail_program

__all__ = ["api_benchmark_program", "make_apibench_command", "APIBENCH_APIS"]

#: Bar order in Fig. 4.
APIBENCH_APIS = (
    "cudaMalloc",
    "cudaMallocManaged",
    "cudaMallocPitch(first)",
    "cudaMallocPitch",
    "cudaFree",
    "cudaMemGetInfo",
)


def api_benchmark_program(
    api: ProcessApi,
    *,
    clock: Callable[[], float],
    alloc_size: int = 16 * MiB,
    repeats: int = 10,
):
    """Time each hooked API ``repeats`` times; record into annotations.

    Results land in ``api.process.annotations["api_timings"]`` as a dict
    ``label -> list of seconds``.
    """
    timings: dict[str, list[float]] = {label: [] for label in APIBENCH_APIS}
    api.process.annotations["api_timings"] = timings

    # Warm the context so the one-time 66 MiB/context creation cost is not
    # attributed to the first timed call (the paper separates these too).
    err, warm = yield from api.cudaMalloc(4096)
    if err is not cudaError.cudaSuccess:
        raise fail_program(2)
    err, _ = yield from api.cudaFree(warm)
    if err is not cudaError.cudaSuccess:
        raise fail_program(1)

    first_pitch = True
    for _ in range(repeats):
        # cudaMalloc / cudaFree pair.
        t0 = clock()
        err, ptr = yield from api.cudaMalloc(alloc_size)
        timings["cudaMalloc"].append(clock() - t0)
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        t0 = clock()
        err, _ = yield from api.cudaFree(ptr)
        timings["cudaFree"].append(clock() - t0)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)

        # cudaMallocPitch: the first-ever call is reported separately (it
        # performs the cudaGetDeviceProperties lookup, §III-C) — and it must
        # run before any other pitch-aware API warms the wrapper's cache.
        t0 = clock()
        err, result = yield from api.cudaMallocPitch(4096, 1024)
        label = "cudaMallocPitch(first)" if first_pitch else "cudaMallocPitch"
        timings[label].append(clock() - t0)
        first_pitch = False
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        ptr, _pitch = result
        err, _ = yield from api.cudaFree(ptr)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)

        # cudaMallocManaged (rounded to 128 MiB on the device).
        t0 = clock()
        err, ptr = yield from api.cudaMallocManaged(alloc_size)
        timings["cudaMallocManaged"].append(clock() - t0)
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        err, _ = yield from api.cudaFree(ptr)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)

        # cudaMemGetInfo.
        t0 = clock()
        err, _info = yield from api.cudaMemGetInfo()
        timings["cudaMemGetInfo"].append(clock() - t0)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
    return 0


def make_apibench_command(
    clock: Callable[[], float],
    *,
    alloc_size: int = 16 * MiB,
    repeats: int = 10,
):
    """Entrypoint factory for the API micro-benchmark."""

    def command(api: ProcessApi):
        return api_benchmark_program(
            api, clock=clock, alloc_size=alloc_size, repeats=repeats
        )

    command.__name__ = "api_benchmark"
    return command
