"""Cloud-usage emulation: the arrival process of §IV-A.

"We emulated the cloud usage by choosing the type of the containers
randomly and running it every five seconds.  We changed the number of the
containers from 4 to 38."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.types import ContainerType, choose_types

__all__ = ["Arrival", "cloud_arrivals", "PAPER_CONTAINER_COUNTS"]

#: The x-axis of Fig. 7/8 and the columns of Tables IV/V.
PAPER_CONTAINER_COUNTS: tuple[int, ...] = tuple(range(4, 40, 2))

#: §IV-A: one container submitted every five seconds.
ARRIVAL_INTERVAL: float = 5.0


@dataclass(frozen=True)
class Arrival:
    """One container submission."""

    index: int
    time: float
    container_type: ContainerType

    @property
    def name(self) -> str:
        return f"c{self.index:03d}-{self.container_type.name}"


def cloud_arrivals(
    count: int,
    rng: np.random.Generator,
    *,
    interval: float = ARRIVAL_INTERVAL,
) -> list[Arrival]:
    """Generate the paper's arrival schedule for ``count`` containers."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if interval < 0:
        raise ValueError(f"interval must be >= 0, got {interval}")
    types = choose_types(count, rng)
    return [
        Arrival(index=i, time=i * interval, container_type=types[i])
        for i in range(count)
    ]
