"""Container types of the evaluation (Table III).

"we classified the containers by the GPU memory size, similar to the T2
instance of Amazon Web Services" (§IV-A).  The sample-program duration
scales with the type — "The time consumed by the sample program varies by
the size, from 5 seconds to 45 seconds" — which we realize as a linear ramp
over the six types (the paper does not give the per-type values; the
endpoints are exact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import GiB, MiB

__all__ = ["ContainerType", "CONTAINER_TYPES", "TYPE_BY_NAME", "choose_types"]


@dataclass(frozen=True)
class ContainerType:
    """One row of Table III."""

    name: str
    vcpus: int
    memory: int  # host RAM
    gpu_memory: int
    #: Sample-program runtime for this type (§IV-A's 5–45 s ramp).
    sample_duration: float

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.memory <= 0 or self.gpu_memory <= 0:
            raise ValueError(f"invalid container type: {self}")
        if self.sample_duration <= 0:
            raise ValueError(f"invalid sample duration: {self}")


#: Table III, in order; durations ramp 5 → 45 s linearly.
CONTAINER_TYPES: tuple[ContainerType, ...] = (
    ContainerType("nano", 1, GiB // 2, 128 * MiB, 5.0),
    ContainerType("micro", 1, 1 * GiB, 256 * MiB, 13.0),
    ContainerType("small", 1, 2 * GiB, 512 * MiB, 21.0),
    ContainerType("medium", 2, 4 * GiB, 1024 * MiB, 29.0),
    ContainerType("large", 2, 8 * GiB, 2048 * MiB, 37.0),
    ContainerType("xlarge", 4, 16 * GiB, 4096 * MiB, 45.0),
)

TYPE_BY_NAME: dict[str, ContainerType] = {t.name: t for t in CONTAINER_TYPES}


def choose_types(count: int, rng: np.random.Generator) -> list[ContainerType]:
    """Pick ``count`` container types uniformly at random (§IV-A:
    "choosing the type of the containers randomly")."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    indices = rng.integers(0, len(CONTAINER_TYPES), size=count)
    return [CONTAINER_TYPES[int(i)] for i in indices]
