"""Workloads: the evaluation's programs, container types, and arrivals."""

from repro.workloads.api import ProcessApi
from repro.workloads.apibench import (
    APIBENCH_APIS,
    api_benchmark_program,
    make_apibench_command,
)
from repro.workloads.arrivals import (
    ARRIVAL_INTERVAL,
    PAPER_CONTAINER_COUNTS,
    Arrival,
    cloud_arrivals,
)
from repro.workloads.mnist import MnistConfig, make_mnist_command, mnist_program
from repro.workloads.runner import (
    UNIX_SOCKET_ONE_WAY,
    SimIpcBridge,
    SimProgramRunner,
    fail_program,
)
from repro.workloads.sample import (
    make_sample_command,
    sample_program,
    usable_gpu_memory,
)
from repro.workloads.trace import TraceEntry, TraceError, load_trace, parse_trace_lines
from repro.workloads.types import (
    CONTAINER_TYPES,
    TYPE_BY_NAME,
    ContainerType,
    choose_types,
)

__all__ = [
    "ProcessApi",
    "SimIpcBridge",
    "SimProgramRunner",
    "UNIX_SOCKET_ONE_WAY",
    "fail_program",
    "sample_program",
    "make_sample_command",
    "usable_gpu_memory",
    "mnist_program",
    "make_mnist_command",
    "MnistConfig",
    "api_benchmark_program",
    "make_apibench_command",
    "APIBENCH_APIS",
    "ContainerType",
    "CONTAINER_TYPES",
    "TYPE_BY_NAME",
    "choose_types",
    "Arrival",
    "cloud_arrivals",
    "TraceEntry",
    "TraceError",
    "load_trace",
    "parse_trace_lines",
    "ARRIVAL_INTERVAL",
    "PAPER_CONTAINER_COUNTS",
]
