"""Trace-driven workloads: replay container schedules from JSONL files.

The paper's evaluation uses a synthetic arrival process; real deployments
have traces.  This module defines a small, documented trace format so
users can replay their own multi-tenant schedules against the middleware:

one JSON object per line, e.g.::

    {"at": 0.0,  "name": "train-a", "type": "xlarge"}
    {"at": 5.0,  "name": "infer-b", "limit": "512m", "duration": 8.0}
    {"at": 12.0, "name": "note-c",  "limit": "1g", "duration": 20.0, "chunks": 3}

Fields:

- ``at`` (required): submission time in seconds;
- ``name`` (required): unique container name;
- either ``type`` (a Table III name: nano..xlarge) **or** ``limit``
  (+ optional ``duration``, default 10 s);
- ``chunks`` (optional): split the footprint into N allocations;
- ``kind`` (optional): ``"sample"`` (default) or ``"mnist"`` with
  ``steps``.

:func:`load_trace` parses and validates; :func:`repro.experiments.multi.
run_trace` executes a parsed trace under any policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError
from repro.units import parse_size
from repro.workloads.types import TYPE_BY_NAME

__all__ = ["TraceEntry", "TraceError", "load_trace", "parse_trace_lines"]


class TraceError(ReproError):
    """The trace file violated the format."""


@dataclass(frozen=True)
class TraceEntry:
    """One container submission from a trace."""

    at: float
    name: str
    gpu_limit: int
    duration: float
    vcpus: int = 1
    host_memory: int = 1 << 30
    chunks: int = 1
    kind: str = "sample"
    mnist_steps: int = 2000

    def __post_init__(self) -> None:
        if self.at < 0:
            raise TraceError(f"{self.name}: negative submission time {self.at}")
        if self.gpu_limit <= 0:
            raise TraceError(f"{self.name}: gpu limit must be positive")
        if self.duration <= 0:
            raise TraceError(f"{self.name}: duration must be positive")
        if self.chunks < 1:
            raise TraceError(f"{self.name}: chunks must be >= 1")
        if self.kind not in ("sample", "mnist"):
            raise TraceError(f"{self.name}: unknown kind {self.kind!r}")


def _entry_from_obj(obj: dict, line_no: int) -> TraceEntry:
    if not isinstance(obj, dict):
        raise TraceError(f"line {line_no}: not a JSON object")
    try:
        at = float(obj["at"])
        name = str(obj["name"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"line {line_no}: need 'at' and 'name' ({exc})") from exc
    if "type" in obj:
        type_name = obj["type"]
        ctype = TYPE_BY_NAME.get(type_name)
        if ctype is None:
            raise TraceError(
                f"line {line_no}: unknown type {type_name!r} "
                f"(known: {sorted(TYPE_BY_NAME)})"
            )
        gpu_limit = ctype.gpu_memory
        duration = float(obj.get("duration", ctype.sample_duration))
        vcpus, host_memory = ctype.vcpus, ctype.memory
    elif "limit" in obj:
        try:
            gpu_limit = parse_size(obj["limit"])
        except ValueError as exc:
            raise TraceError(f"line {line_no}: bad limit ({exc})") from exc
        duration = float(obj.get("duration", 10.0))
        vcpus, host_memory = int(obj.get("vcpus", 1)), 1 << 30
    else:
        raise TraceError(f"line {line_no}: need either 'type' or 'limit'")
    return TraceEntry(
        at=at,
        name=name,
        gpu_limit=gpu_limit,
        duration=duration,
        vcpus=vcpus,
        host_memory=host_memory,
        chunks=int(obj.get("chunks", 1)),
        kind=str(obj.get("kind", "sample")),
        mnist_steps=int(obj.get("steps", 2000)),
    )


def parse_trace_lines(lines: Iterable[str]) -> list[TraceEntry]:
    """Parse JSONL trace content; validates names and ordering."""
    entries: list[TraceEntry] = []
    names: set[str] = set()
    for line_no, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {line_no}: bad JSON ({exc})") from exc
        entry = _entry_from_obj(obj, line_no)
        if entry.name in names:
            raise TraceError(f"line {line_no}: duplicate name {entry.name!r}")
        names.add(entry.name)
        entries.append(entry)
    if not entries:
        raise TraceError("trace is empty")
    return sorted(entries, key=lambda e: (e.at, e.name))


def load_trace(path: str | Path) -> list[TraceEntry]:
    """Load and validate a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_trace_lines(fh)
