"""The evaluation's sample program (§IV-A).

"Each container runs sample program, which allocates maximum GPU memory and
the same size of CPU memory.  This sample program copies dummy data from CPU
memory to GPU, calculates the complement, and returns the result from GPU
memory to CPU.  The time consumed by the sample program varies by the size,
from 5 seconds to 45 seconds."

Notes on fidelity:

- "maximum GPU memory" must leave room for the 66 MiB context overhead the
  scheduler charges per pid — a program allocating its entire declared
  limit would be *rejected* (the overhead pushes it past the limit), so the
  usable maximum is ``limit − 66 MiB``;
- the 5–45 s duration is realized by sizing the complement kernel: the
  transfers are fast (sub-second even for 4 GiB over PCIe), so the kernel
  absorbs the remaining budget, holding one Hyper-Q lane for its duration —
  which is what makes concurrent containers actually contend.
"""

from __future__ import annotations

from typing import Callable

from repro.core.scheduler.core import CONTEXT_OVERHEAD_CHARGE
from repro.cuda.effects import HostCompute
from repro.cuda.errors import cudaError
from repro.workloads.api import ProcessApi
from repro.workloads.runner import fail_program
from repro.workloads.types import ContainerType

__all__ = ["sample_program", "make_sample_command", "usable_gpu_memory"]


def usable_gpu_memory(limit: int, overhead: int = CONTEXT_OVERHEAD_CHARGE) -> int:
    """The largest single allocation a container with ``limit`` can make."""
    usable = limit - overhead
    if usable <= 0:
        raise ValueError(
            f"limit {limit} leaves no room for the {overhead}-byte context overhead"
        )
    return usable


def sample_program(
    api: ProcessApi,
    *,
    gpu_bytes: int,
    duration: float,
    clock: Callable[[], float],
    chunks: int = 1,
):
    """Generator implementing the §IV-A sample program.

    ``chunks`` splits the footprint into that many equal allocations —
    Fig. 3's containers allocate incrementally over time, and the chunked
    form is what distinguishes the "fit" and "full" resume conditions in
    the ablation.

    Exit codes: 0 on success; 2 when an allocation is rejected (the
    unmanaged failure mode the paper motivates with).
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    # Host side: allocate & fill the same amount of CPU memory with dummy
    # data (modelled as host compute at ~8 GB/s memset/fill speed).
    yield HostCompute(gpu_bytes / 8e9)

    # Device allocation(s): under ConVGPU any of these calls may *pause*
    # until the scheduler assigns enough memory (Fig. 3c).
    chunk_size = gpu_bytes // chunks
    sizes = [chunk_size] * (chunks - 1) + [gpu_bytes - chunk_size * (chunks - 1)]
    dev_ptrs = []
    for size in sizes:
        err, dev_ptr = yield from api.cudaMalloc(size)
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        dev_ptrs.append(dev_ptr)

    # The 5-45 s nominal duration is the program's *running* time; time
    # spent suspended inside cudaMalloc is accounted separately (Fig. 8),
    # so the budget clock starts once the allocations return.
    start = clock()

    # Copy dummy data host -> device.
    err, _ = yield from api.cudaMemcpy(gpu_bytes, "h2d")
    if err is not cudaError.cudaSuccess:
        raise fail_program(1)

    # Complement kernel: one long pass sized to land the program on its
    # nominal duration; the D2H copy mirrors the H2D cost, so reserve for it.
    h2d_elapsed = clock() - start
    kernel_budget = max(0.05, duration - 2.0 * h2d_elapsed)
    err, _ = yield from api.cudaLaunchKernel(kernel_budget, name="complement")
    if err is not cudaError.cudaSuccess:
        raise fail_program(1)

    # Return the result device -> host.
    err, _ = yield from api.cudaMemcpy(gpu_bytes, "d2h")
    if err is not cudaError.cudaSuccess:
        raise fail_program(1)

    for dev_ptr in dev_ptrs:
        err, _ = yield from api.cudaFree(dev_ptr)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
    return 0


def make_sample_command(
    container_type: ContainerType,
    clock: Callable[[], float],
    *,
    overhead: int = CONTEXT_OVERHEAD_CHARGE,
    chunks: int = 1,
):
    """Entrypoint factory for a Table III container type."""
    gpu_bytes = usable_gpu_memory(container_type.gpu_memory, overhead)
    duration = container_type.sample_duration

    def command(api: ProcessApi):
        return sample_program(
            api,
            gpu_bytes=gpu_bytes,
            duration=duration,
            clock=clock,
            chunks=chunks,
        )

    command.__name__ = f"sample_{container_type.name}"
    return command
