"""The CUDA API surface as seen from *inside* a container process.

A user program never imports the runtime or the wrapper directly — it calls
symbols that the process's dynamic linker resolved at spawn time.  This tiny
adapter gives workload generators that call-site view: attribute access is a
symbol lookup, so ``yield from api.cudaMalloc(n)`` binds to ``libgpushare``
under ConVGPU and to ``libcudart`` without it, with no change to the
program.  That is the paper's compatibility claim (§III-C) made literal.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.container.process import ContainerProcess

__all__ = ["ProcessApi"]

#: Mapping from Python-identifier attribute names to real symbol names for
#: the implicit CRT APIs (leading dunders are awkward as attributes).
_ATTR_TO_SYMBOL = {
    "cudaRegisterFatBinary": "__cudaRegisterFatBinary",
    "cudaUnregisterFatBinary": "__cudaUnregisterFatBinary",
}


class ProcessApi:
    """Symbol-resolving call proxy for one process."""

    def __init__(self, process: ContainerProcess) -> None:
        # Bypass __setattr__-free dataclass conventions; plain attribute.
        self._process = process

    @property
    def process(self) -> ContainerProcess:
        return self._process

    @property
    def pid(self) -> int:
        return self._process.host_pid

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        symbol = _ATTR_TO_SYMBOL.get(name, name)
        return self._process.resolve(symbol)

    def resolve(self, symbol: str) -> Callable[..., Any]:
        """Resolve an exact symbol name (including dunder CRT symbols)."""
        return self._process.resolve(symbol)
