"""Simulation-side interpreters: running container programs under the DES.

Two pieces:

- :class:`SimIpcBridge` interprets :class:`~repro.cuda.effects.IpcCall`
  effects against the scheduler service with modelled UNIX-socket latency.
  A deferred reply (container pause) becomes a simulation event the calling
  program waits on — virtual-time blocking with the same semantics as the
  real socket ``recv``.
- :class:`SimProgramRunner` drives a program generator as a DES process,
  giving each effect its meaning: device time, Hyper-Q kernel submission,
  host compute, scheduler messages.  It also performs the CRT bracketing
  (``__cudaRegisterFatBinary`` at start, ``__cudaUnregisterFatBinary`` at
  exit) that real CUDA binaries do implicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.cuda.effects import (
    DeviceOp,
    Effect,
    EventRecord,
    HostCompute,
    IpcCall,
    KernelLaunch,
    StreamOp,
    StreamWait,
    Synchronize,
)
from repro.cuda.errors import cudaError
from repro.errors import SimulationError
from repro.sim.events import Interrupt
from repro.gpu.device import GpuDevice
from repro.ipc.unix_socket import DEFER
from repro.sim.engine import Environment
from repro.workloads.api import ProcessApi

__all__ = ["SimIpcBridge", "SimProgramRunner", "UNIX_SOCKET_ONE_WAY"]

#: Modelled one-way UNIX-socket latency (seconds).  Calibrated so a blocking
#: request round-trip costs ~47 µs — the Fig. 4 gap between cudaMalloc with
#: (0.082 ms) and without (0.035 ms) ConVGPU.
UNIX_SOCKET_ONE_WAY: float = 23.5e-6

#: Cost of *sending* a notification (no reply read): just the write syscall.
#: This is why cudaFree stays at native speed under ConVGPU (Fig. 4).
UNIX_SOCKET_SEND: float = 3e-6


class _SimReplyHandle:
    """Reply capability whose ``send`` triggers a simulation event."""

    def __init__(self, event) -> None:
        self._event = event
        self.seq = 0

    def send(self, reply: dict[str, Any]) -> None:
        if not self._event.triggered:
            self._event.succeed(reply)


class SimIpcBridge:
    """Routes wrapper messages to the scheduler service in virtual time."""

    def __init__(
        self,
        env: Environment,
        handler: Callable[..., Any],
        *,
        one_way_latency: float = UNIX_SOCKET_ONE_WAY,
        send_latency: float = UNIX_SOCKET_SEND,
    ) -> None:
        self.env = env
        self.handler = handler
        self.one_way_latency = one_way_latency
        self.send_latency = send_latency
        #: Observability counters.
        self.calls = 0
        self.notifications = 0

    def call(self, effect: IpcCall) -> Generator[Any, Any, dict[str, Any] | None]:
        """Interpret one IpcCall; a generator to splice into the DES process."""
        message = dict(effect.message)
        if not effect.await_reply:
            # Notification: the caller only pays the write syscall and
            # moves on; the scheduler processes it asynchronously.
            self.notifications += 1
            yield self.env.timeout(self.send_latency)
            self.handler(message, _SimReplyHandle(self.env.event()))
            return None
        self.calls += 1
        yield self.env.timeout(self.one_way_latency)  # request on the wire
        reply_event = self.env.event()
        result = self.handler(message, _SimReplyHandle(reply_event))
        if result is not DEFER:
            if result is None:
                raise SimulationError(
                    f"handler returned no reply for blocking {message['type']!r}"
                )
            if not reply_event.triggered:
                reply_event.succeed(result)
        reply = yield reply_event  # blocks across a pause
        yield self.env.timeout(self.one_way_latency)  # reply on the wire
        return reply


class SimProgramRunner:
    """Executes container programs as DES processes."""

    def __init__(self, env: Environment, device: GpuDevice, bridge: SimIpcBridge | None) -> None:
        self.env = env
        self.device = device
        self.bridge = bridge

    # ------------------------------------------------------------------

    def run_program(
        self,
        api: ProcessApi,
        *,
        uses_cuda: bool = True,
        on_exit: Callable[[int], None] | None = None,
        device: GpuDevice | None = None,
    ):
        """Spawn the process's program as a simulation process.

        ``device`` overrides the runner's default GPU for kernel
        submissions (multi-GPU hosts submit to the container's device).
        Returns the :class:`repro.sim.events.Process`; its value is the
        program's exit code.
        """
        return self.env.process(
            self._drive_process(api, uses_cuda, on_exit, device or self.device)
        )

    def _drive_process(self, api: ProcessApi, uses_cuda: bool, on_exit, device=None):
        process = api.process
        program_factory = process.program
        exit_code = 0
        #: Completion time of the latest kernel this process launched,
        #: plus the device its kernels run on.
        state = {
            "last_completion": self.env.now,
            "device": device if device is not None else self.device,
        }

        handle = None
        if uses_cuda:
            err, handle = yield from self._drive_call(
                api.resolve("__cudaRegisterFatBinary")(), state
            )
            if err is not cudaError.cudaSuccess:
                exit_code = 1

        if exit_code == 0 and program_factory is not None:
            program = program_factory(api)
            try:
                result = yield from self._drive_generator(program, state)
                exit_code = int(result) if result is not None else 0
            except ProgramFailure as failure:
                exit_code = failure.exit_code

        if uses_cuda and handle is not None:
            # CRT shutdown: always runs, even when main() failed — this is
            # what lets the scheduler reclaim leaked memory (§III-D).
            yield from self._drive_call(
                api.resolve("__cudaUnregisterFatBinary")(handle), state
            )

        if process.alive:
            process.exit(exit_code)
        else:
            # The engine killed the container first (docker stop while the
            # program was paused); its code wins, ours is reported anyway.
            exit_code = process.exit_code if process.exit_code else exit_code
        if on_exit is not None:
            on_exit(exit_code)
        return exit_code

    # ------------------------------------------------------------------

    def _drive_call(self, call_gen, state):
        """Drive one API generator, interpreting its effects."""
        return (yield from self._drive_generator(call_gen, state))

    def _drive_generator(self, generator, state):
        """Pump a generator of effects, sending back each effect's value.

        An :class:`~repro.sim.events.Interrupt` (container kill) arrives in
        *this* frame — the program is suspended at its own ``yield`` — so it
        is re-thrown into the program generator, where user code can catch
        it exactly like a signal handler would.
        """
        try:
            item = next(generator)
        except StopIteration as stop:
            return stop.value
        while True:
            try:
                value = yield from self._interpret(item, state)
            except Interrupt as interrupt:
                try:
                    item = generator.throw(interrupt)
                except StopIteration as stop:
                    return stop.value
                continue
            try:
                item = generator.send(value)
            except StopIteration as stop:
                return stop.value

    def _interpret(self, effect: Effect, state) -> Generator[Any, Any, Any]:
        """Give one effect its virtual-time meaning; returns the send-value."""
        if isinstance(effect, DeviceOp):
            if effect.duration > 0:
                yield self.env.timeout(effect.duration)
            return None
        if isinstance(effect, HostCompute):
            if effect.duration > 0:
                yield self.env.timeout(effect.duration)
            return None
        if isinstance(effect, KernelLaunch):
            record = state["device"].submit_kernel(self.env.now, effect.duration)
            state["last_completion"] = max(
                state["last_completion"], record.completion_time
            )
            if effect.blocking:
                wait = record.completion_time - self.env.now
                if wait > 0:
                    yield self.env.timeout(wait)
            return None
        if isinstance(effect, Synchronize):
            wait = state["last_completion"] - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            return None
        if isinstance(effect, StreamOp):
            # Asynchronous queueing: compute times, do not block.
            start, completion = effect.table.queue_op(
                effect.stream_id, self.env.now, effect.duration
            )
            state["last_completion"] = max(state["last_completion"], completion)
            return start, completion
        if isinstance(effect, StreamWait):
            if effect.stream_id is None:
                target = effect.table.device_drain_time(self.env.now)
            else:
                target = effect.table.stream_drain_time(effect.stream_id, self.env.now)
            wait = target - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            return None
        if isinstance(effect, EventRecord):
            event = effect.table.record_event(
                effect.event_id, effect.stream_id, self.env.now
            )
            return event.completion_time
        if isinstance(effect, IpcCall):
            if self.bridge is None:
                # Unmanaged container somehow loaded a wrapper: treat the
                # scheduler as absent (error status), matching a missing
                # socket in the real system.
                return {"status": "error", "error": "no scheduler"}
            return (yield from self.bridge.call(effect))
        raise SimulationError(f"unknown effect {effect!r}")


class ProgramFailure(Exception):
    """Raised by programs that want a non-zero container exit code."""

    def __init__(self, exit_code: int) -> None:
        super().__init__(exit_code)
        self.exit_code = exit_code


def fail_program(exit_code: int = 1) -> ProgramFailure:
    """Helper for workloads to abort with a container exit code."""
    return ProgramFailure(exit_code)


__all__ += ["fail_program", "ProgramFailure"]
