"""A TensorFlow-MNIST-like training workload (Fig. 6's program).

The paper benchmarks "Convolutional Neural Network python script written
with TensorFlow, which detects MNIST handwritten digit database" (the
TF-tutorial layers model) at 402 s native / 404.93 s under ConVGPU (+0.7 %).

We reproduce the program's *CUDA call profile* rather than the maths
(DESIGN.md substitution): 2017-era TensorFlow with ``feed_dict`` input

- allocates parameter/activation pools at graph-build time
  (~a dozen ``cudaMalloc`` calls, a few hundred MiB),
- per training step: stages the input batch through a freshly allocated
  device buffer (an intercepted ``cudaMalloc``/``cudaFree`` pair), copies
  the batch H2D, runs the forward/backward kernels, and periodically reads
  a scalar loss back.

Under ConVGPU every per-step malloc/free pays the wrapper's round-trip, so
total overhead ≈ 2·steps·(IPC cost) — a few seconds over a ~400 s run, i.e.
the sub-1 % story of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.effects import HostCompute
from repro.cuda.errors import cudaError
from repro.units import MiB, KiB
from repro.workloads.api import ProcessApi
from repro.workloads.runner import fail_program

__all__ = ["MnistConfig", "mnist_program", "make_mnist_command"]


@dataclass(frozen=True)
class MnistConfig:
    """Shape of the training run (defaults reproduce the tutorial script)."""

    #: Training steps (the TF layers tutorial runs 20 000).
    steps: int = 20_000
    #: Per-step GPU compute (forward+backward), seconds.  20 000 × ~19.9 ms
    #: ≈ 398 s of kernels, matching the 402 s native wall time after
    #: transfers and Python overhead.
    step_kernel_time: float = 0.0199
    #: Batch of 100 MNIST images: 100 × 784 floats + labels.
    batch_bytes: int = 320 * KiB
    #: Python/feed_dict host overhead per step.
    step_host_time: float = 0.0
    #: Graph-build parameter/workspace allocations.
    pool_sizes: tuple[int, ...] = (
        64 * MiB,   # conv kernels + activations pool
        128 * MiB,  # dense layer pool
        96 * MiB,   # gradients
        32 * MiB,   # optimizer slots
        16 * MiB,   # cuDNN workspace
    )
    #: Read the loss back every this many steps.
    loss_fetch_interval: int = 100

    def scaled(self, steps: int) -> "MnistConfig":
        """Same profile with a different step count (fast test runs)."""
        return MnistConfig(
            steps=steps,
            step_kernel_time=self.step_kernel_time,
            batch_bytes=self.batch_bytes,
            step_host_time=self.step_host_time,
            pool_sizes=self.pool_sizes,
            loss_fetch_interval=self.loss_fetch_interval,
        )


def mnist_program(api: ProcessApi, config: MnistConfig | None = None):
    """Generator reproducing the MNIST trainer's CUDA call sequence."""
    config = config if config is not None else MnistConfig()
    # Graph build: persistent pools.
    pools: list[int] = []
    for size in config.pool_sizes:
        err, ptr = yield from api.cudaMalloc(size)
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        pools.append(ptr)

    for step in range(config.steps):
        if config.step_host_time > 0:
            yield HostCompute(config.step_host_time)
        # feed_dict staging buffer: alloc -> copy -> free (intercepted).
        err, staging = yield from api.cudaMalloc(config.batch_bytes)
        if err is not cudaError.cudaSuccess:
            raise fail_program(2)
        err, _ = yield from api.cudaMemcpy(config.batch_bytes, "h2d")
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
        err, _ = yield from api.cudaLaunchKernel(
            config.step_kernel_time, name="train_step"
        )
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
        err, _ = yield from api.cudaFree(staging)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
        if config.loss_fetch_interval and step % config.loss_fetch_interval == 0:
            err, _ = yield from api.cudaMemcpy(4, "d2h")  # scalar loss
            if err is not cudaError.cudaSuccess:
                raise fail_program(1)

    for ptr in pools:
        err, _ = yield from api.cudaFree(ptr)
        if err is not cudaError.cudaSuccess:
            raise fail_program(1)
    return 0


def make_mnist_command(config: MnistConfig | None = None):
    """Entrypoint factory for the MNIST trainer."""
    config = config if config is not None else MnistConfig()

    def command(api: ProcessApi):
        return mnist_program(api, config)

    command.__name__ = "mnist_trainer"
    return command
