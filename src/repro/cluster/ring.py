"""Consistent-hash ring: the control plane's one placement data structure.

The sharded control plane (DESIGN.md §15) runs one scheduler daemon per
device behind a thin router; the router must send every message for a
container to the *same* shard without keeping a synchronized placement
table.  A consistent-hash ring gives that for free: placement is a pure
function of the container id and the shard set, so the router, the
supervisor, a recovering shard and an offline `repro recover` all agree
on who owns what — and adding or removing a shard moves only ``1/n`` of
the keys instead of reshuffling everything.

Hashing is :func:`hashlib.blake2b` (not Python's ``hash``): placement
must be identical across processes and runs, and ``PYTHONHASHSEED``
randomizes ``str.__hash__`` per interpreter.

Locking: :attr:`_ring_lock` is a **leaf** lock — nothing else is ever
acquired while it is held, and no callback runs under it (enforced by
the reprolint ``lock-order`` leaf check).  The router may therefore call
into the ring from any of its paths without joining the ring into the
forwarding lock order.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Iterable, Iterator, Sequence

from repro.errors import ClusterError

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard.  64 points per shard keeps the worst-case
#: load imbalance under ~20% for small shard counts (measured in
#: tests/cluster/test_ring.py) while the ring stays a few hundred entries.
DEFAULT_REPLICAS = 64


def _point(key: str) -> int:
    """Map a key to a 64-bit position on the ring (stable across runs)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes over an ordered shard set.

    Shard ids may be any ``str``-able hashable value (the control plane
    uses small ints).  All methods are thread-safe; mutation cost is
    O(replicas · log points) and lookup is one binary search.
    """

    def __init__(
        self, shards: Iterable[object] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ClusterError("need at least one virtual node per shard")
        self.replicas = replicas
        self._ring_lock = threading.Lock()
        self._points: list[int] = []  # sorted vnode positions
        self._owners: dict[int, object] = {}  # position -> shard id
        self._shards: list[object] = []  # insertion order, for repr/iteration
        for shard in shards:
            self.add(shard)

    # -- membership ----------------------------------------------------------

    def add(self, shard: object) -> None:
        """Add a shard's virtual nodes (idempotent for a present shard)."""
        with self._ring_lock:
            if shard in self._shards:
                return
            for replica in range(self.replicas):
                position = _point(f"{shard}#{replica}")
                # blake2b collisions across distinct vnode labels are
                # astronomically unlikely; first owner keeps the point so
                # placement never silently flips if one ever happened.
                if position in self._owners:
                    continue
                bisect.insort(self._points, position)
                self._owners[position] = shard
            self._shards.append(shard)

    def remove(self, shard: object) -> None:
        """Drop a shard; its keys redistribute to ring successors."""
        with self._ring_lock:
            if shard not in self._shards:
                return
            self._shards.remove(shard)
            keep_points: list[int] = []
            for position in self._points:
                if self._owners[position] is shard or self._owners[position] == shard:
                    del self._owners[position]
                else:
                    keep_points.append(position)
            self._points = keep_points

    def shards(self) -> tuple[object, ...]:
        with self._ring_lock:
            return tuple(self._shards)

    def __len__(self) -> int:
        with self._ring_lock:
            return len(self._shards)

    def __contains__(self, shard: object) -> bool:
        with self._ring_lock:
            return shard in self._shards

    # -- placement -----------------------------------------------------------

    def shard_of(self, key: str) -> object:
        """The shard owning ``key`` (clockwise successor of its point)."""
        with self._ring_lock:
            if not self._points:
                raise ClusterError("hash ring is empty")
            index = bisect.bisect(self._points, _point(key))
            if index == len(self._points):
                index = 0  # wrap: the ring is circular
            return self._owners[self._points[index]]

    def preference(self, key: str) -> Iterator[object]:
        """Distinct shards in ring-walk order starting at ``key``'s owner.

        The first yielded shard is :meth:`shard_of`; the rest are the
        fallback order a placement policy should try when the owner cannot
        take the key (multi-GPU placement uses this to honor per-device
        capacity while keeping the hash-preferred device first).
        """
        with self._ring_lock:
            if not self._points:
                return iter(())
            start = bisect.bisect(self._points, _point(key))
            seen: list[object] = []
            for offset in range(len(self._points)):
                position = self._points[(start + offset) % len(self._points)]
                owner = self._owners[position]
                if owner not in seen:
                    seen.append(owner)
        return iter(seen)

    def spread(self, keys: Sequence[str]) -> dict[object, int]:
        """Key count per shard — the balance diagnostic used by the tests."""
        with self._ring_lock:
            counts: dict[object, int] = {shard: 0 for shard in self._shards}
            if not self._points:
                return counts
            for key in keys:
                index = bisect.bisect(self._points, _point(key))
                if index == len(self._points):
                    index = 0
                counts[self._owners[self._points[index]]] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(shards={self.shards()!r}, replicas={self.replicas})"
