"""Consistent-hash router fronting the shard daemon fleet.

DESIGN.md §15: the sharded control plane runs one complete daemon process
per GPU device (:mod:`repro.cluster.supervisor`), and this router is the
single address clients talk to.  It has exactly two jobs:

- **control plane** — ``register_container`` / ``container_exit`` land on
  the router's control socket; the container id is consistent-hashed onto
  the :class:`~repro.cluster.ring.HashRing`, the request is forwarded to
  the owning shard over a plain blocking client, and the shard's reply
  comes back with its socket endpoint rewritten to a router-local proxy
  listener.  The shard's ``shard`` identity field passes through, so a
  client can verify ring agreement end-to-end.
- **data plane** — per-container proxy listeners splice bytes between the
  wrapper and the owning shard *without decoding them*.  Both wire codecs
  are self-describing per frame (binary starts with ``CVGP``, JSON with
  ``{``) and hello negotiation is answered by the shard itself through the
  splice, so whatever codec the client negotiates is what the shard sees.
  A paused allocation is just an upstream reply that has not arrived yet —
  the proxy adds no protocol state of its own.

Failure semantics: when a shard dies, its upstream sockets EOF, the proxy
closes the matching downstream sockets, and every in-flight caller gets a
typed :class:`~repro.errors.IpcDisconnected` from its own transport — the
same error surface as talking to a crashed unsharded daemon.  Once the
supervisor has restarted the shard from its journal, :meth:`refresh_shard`
re-registers every container the router had placed there (the daemon's
idempotent reattach path), refreshing the upstream endpoints so the next
wrapper reconnect goes through.

Lock discipline (reprolint-enforced): ``_placements_lock`` and
``_clients_lock`` only claim and publish table entries — connecting,
forwarding and scraping all happen outside them.  The hash ring's
``_ring_lock`` is a leaf: nothing may be acquired under it.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import threading
import urllib.request
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.cluster.ring import HashRing
from repro.core.scheduler.daemon import CONTAINER_SOCKET_NAME
from repro.errors import ClusterError, TransportError
from repro.ipc import protocol
from repro.ipc.loop import IoLoop
from repro.ipc.tcp_socket import TcpSocketClient, TcpSocketServer
from repro.ipc.unix_socket import UnixSocketClient, UnixSocketServer
from repro.obs.exporters import merge_prometheus, render_prometheus
from repro.obs.http import MetricsServer
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.recorder import RECORDER

__all__ = ["ShardEndpoint", "ShardRouter"]

_REC = RECORDER
_EV_FORWARD = RECORDER.declare(
    "router.forward", s="container", a="shard"
)
_EV_SPLICE_OPEN = RECORDER.declare(
    "router.splice_open", s="container", a="fd"
)
_EV_SPLICE_CLOSE = RECORDER.declare(
    "router.splice_close", s="container", a="fd"
)
_EV_REFRESH = RECORDER.declare(
    "router.refresh", s="shard", a="containers"
)

_ROUTED = REGISTRY.counter(
    "convgpu_router_forwarded_total",
    "Control-plane requests forwarded to a shard",
    labelnames=("type",),
)
_RETRIES = REGISTRY.counter(
    "convgpu_router_shard_retries_total",
    "Control-plane calls retried after a shard connection failure",
)
_PLACED = REGISTRY.gauge(
    "convgpu_router_containers",
    "Containers currently placed through the router",
)

#: The proxy forwards whatever bytes are buffered without framing them, so
#: the remainder is always empty and ``max_buffer`` never trips; it is set
#: high anyway to make the invariant explicit.
_PROXY_BUFFER = 16 * 1024 * 1024

# Router-internal control calls time out instead of hanging the handler
# when a shard wedges without closing its socket.
_SHARD_CALL_TIMEOUT = 10.0
_SCRAPE_TIMEOUT = 1.0


def _passthrough_split(buffer: bytes) -> tuple[list[bytes], bytes]:
    """Splice framing: everything received is one opaque chunk."""
    return ([buffer] if buffer else []), b""


@dataclass
class ShardEndpoint:
    """One shard's client-visible addresses, parsed from its ready file."""

    shard_id: int
    transport: str
    base_dir: str
    control: str
    host: str | None = None
    port: int | None = None
    metrics_url: str | None = None

    @classmethod
    def from_ready(cls, shard_id: int, endpoints: Mapping[str, Any]) -> "ShardEndpoint":
        """Build from the daemon's ready-file JSON (see ``repro daemon``)."""
        return cls(
            shard_id=shard_id,
            transport=endpoints["transport"],
            base_dir=endpoints["base_dir"],
            control=endpoints["control"],
            host=endpoints.get("host"),
            port=endpoints.get("port"),
            metrics_url=endpoints.get("metrics"),
        )


class _ContainerProxy:
    """One proxy listener: the router-local stand-in for a shard socket."""

    __slots__ = ("container_id", "listener", "socket_dir", "port", "links",
                 "_links_lock")

    def __init__(
        self,
        container_id: str,
        listener: socket.socket,
        socket_dir: str | None,
        port: int | None,
    ) -> None:
        self.container_id = container_id
        self.listener = listener
        self.socket_dir = socket_dir  # unix transport
        self.port = port  # tcp transport
        #: Live splices; mutated under ``_links_lock`` (set ops only).
        self.links: set["_Link"] = set()
        self._links_lock = threading.Lock()


class _Link:
    """One accepted wrapper connection spliced to one shard connection."""

    __slots__ = ("proxy", "down", "up")

    def __init__(self, proxy: _ContainerProxy, down: socket.socket) -> None:
        self.proxy = proxy
        self.down = down
        #: Lazily connected on the first downstream batch (worker thread —
        #: the accept callback runs on the loop thread and must not block).
        self.up: socket.socket | None = None


@dataclass
class _Placement:
    """Where one container lives and how the router reaches it."""

    container_id: str
    shard_id: int
    limit: int
    #: Shard-side data endpoint: a socket path (unix) or ``(host, port)``
    #: (tcp).  Reassigned wholesale on shard restart — readers grab the
    #: whole reference, so no lock is needed beyond the tables'.
    upstream: Any
    proxy: _ContainerProxy


class ShardRouter:
    """Thin consistent-hash front for N single-device shard daemons.

    Args:
        shards: endpoint records, typically built via
            :meth:`ShardEndpoint.from_ready` from the supervisor's ready
            files.  All shards must share one transport.
        base_dir: directory for the router's control socket and per-
            container proxy sockets (unix transport).  A temp directory is
            created (and removed on stop) when omitted.
        host: bind address for tcp listeners.
        codec: control-socket codec negotiation mode (the data plane is
            codec-agnostic by construction).
        io_workers: worker threads of the router's shared I/O loop.
        metrics_port: serve the aggregated observability endpoint on this
            port (0 = ephemeral, ``None`` = off).  ``/metrics`` merges the
            router's own registry with every shard's scrape, each sample
            labelled ``shard="<i>"``; ``/top.json`` merges shard rows.
        replicas: virtual nodes per shard on the hash ring.
    """

    def __init__(
        self,
        shards: Sequence[ShardEndpoint],
        *,
        base_dir: str | None = None,
        host: str = "127.0.0.1",
        codec: str = "auto",
        io_workers: int = 2,
        metrics_port: int | None = None,
        replicas: int | None = None,
    ) -> None:
        if not shards:
            raise ClusterError("router needs at least one shard")
        transports = {shard.transport for shard in shards}
        if len(transports) != 1:
            raise ClusterError(f"mixed shard transports: {sorted(transports)}")
        self.transport = shards[0].transport
        self.host = host
        self.codec = codec
        self.metrics_port = metrics_port
        self.log = get_logger("router")
        self._owns_base_dir = base_dir is None
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="convgpu-router-")
        os.makedirs(self.base_dir, exist_ok=True)
        self._shards: dict[int, ShardEndpoint] = {
            shard.shard_id: shard for shard in shards
        }
        ring_kwargs = {} if replicas is None else {"replicas": replicas}
        self.ring = HashRing(**ring_kwargs)
        for shard in shards:
            self.ring.add(shard.shard_id)
        self._loop = IoLoop(workers=io_workers)
        self._placements: dict[str, _Placement] = {}
        self._placements_lock = threading.Lock()
        self._clients: dict[int, Any] = {}
        self._clients_lock = threading.Lock()
        self._control_server: Any = None
        self.metrics_server: MetricsServer | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def control_path(self) -> str:
        return os.path.join(self.base_dir, "router.sock")

    @property
    def control_port(self) -> int:
        if self.transport != "tcp" or self._control_server is None:
            raise ClusterError("control_port only exists on a started tcp router")
        return self._control_server.port

    def start(self) -> "ShardRouter":
        if self._started:
            return self
        self._loop.start()
        identity = {"router": True, "shards": len(self._shards)}
        if self.transport == "unix":
            self._control_server = UnixSocketServer(
                self.control_path,
                self._handle_control,
                loop=self._loop,
                codec=self.codec,
                identity=identity,
            )
        else:
            self._control_server = TcpSocketServer(
                self._handle_control,
                host=self.host,
                port=0,
                loop=self._loop,
                codec=self.codec,
                identity=identity,
            )
        self._control_server.start()
        if self.metrics_port is not None:
            self.metrics_server = MetricsServer(
                REGISTRY,
                port=self.metrics_port,
                top_source=self.top_snapshot,
                text_source=self.aggregate_metrics_text,
            )
            self.metrics_server.start()
        self._started = True
        self.log.info(
            "router_started",
            shards=len(self._shards),
            transport=self.transport,
            base_dir=self.base_dir,
        )
        return self

    # reprolint: ignore[double-lock] -- teardown drains two independent
    # tables (placements, clients); each is snapshotted once and the
    # blocking closes run outside both locks.
    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        if self._control_server is not None:
            self._control_server.stop()
            self._control_server = None
        with self._placements_lock:
            placements = list(self._placements.values())
            self._placements.clear()
        for placement in placements:
            self._teardown_proxy(placement.proxy)
        _PLACED.set(0)
        self._loop.stop()
        with self._clients_lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()
        if self._owns_base_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)
        self.log.info("router_stopped")

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    def shard_of(self, container_id: str) -> int:
        return self.ring.shard_of(container_id)

    def placements(self) -> dict[str, int]:
        """``container_id -> shard_id`` snapshot (tests / diagnostics)."""
        with self._placements_lock:
            return {
                cid: placement.shard_id
                for cid, placement in self._placements.items()
            }

    def container_socket_path(self, container_id: str) -> str:
        """Router-local proxy socket for the container (unix transport)."""
        with self._placements_lock:
            placement = self._placements.get(container_id)
        if placement is None or placement.proxy.socket_dir is None:
            raise ClusterError(f"no proxy for container {container_id!r}")
        return os.path.join(placement.proxy.socket_dir, CONTAINER_SOCKET_NAME)

    def container_port(self, container_id: str) -> int:
        """Router-local proxy port for the container (tcp transport)."""
        with self._placements_lock:
            placement = self._placements.get(container_id)
        if placement is None or placement.proxy.port is None:
            raise ClusterError(f"no proxy for container {container_id!r}")
        return placement.proxy.port

    # -- control plane -------------------------------------------------------

    def _handle_control(self, message: dict[str, Any], reply_handle) -> Any:
        msg_type = message["type"]
        if msg_type == protocol.MSG_REGISTER_CONTAINER:
            return self._register(message)
        if msg_type == protocol.MSG_CONTAINER_EXIT:
            return self._container_exit(message)
        return protocol.make_error_reply(
            message,
            f"unsupported type {msg_type!r}: the router control socket only "
            "routes registration and exit — allocation traffic goes through "
            "the per-container socket",
        )

    def _register(self, message: dict[str, Any]) -> dict[str, Any]:
        container_id = message["container_id"]
        shard_id = self.ring.shard_of(container_id)
        _ROUTED.labels(type=protocol.MSG_REGISTER_CONTAINER).inc()
        _REC.record(_EV_FORWARD, s=container_id[:12], a=shard_id)
        try:
            reply = self._call_shard(
                shard_id,
                protocol.MSG_REGISTER_CONTAINER,
                container_id=container_id,
                limit=message["limit"],
            )
        except TransportError as exc:
            return protocol.make_error_reply(
                message, f"shard {shard_id} unavailable: {exc}"
            )
        if reply.get("status") != "ok":
            return protocol.make_error_reply(
                message, reply.get("error", f"shard {shard_id} refused")
            )
        upstream = self._upstream_from_reply(reply)
        placement = self._place(container_id, shard_id, message["limit"], upstream)
        payload = {
            key: value
            for key, value in reply.items()
            if key not in ("type", "seq", "status", "socket_dir", "host", "port")
        }
        if placement.proxy.socket_dir is not None:
            payload["socket_dir"] = placement.proxy.socket_dir
        if placement.proxy.port is not None:
            payload["host"] = self.host
            payload["port"] = placement.proxy.port
        return protocol.make_reply(message, **payload)

    def _container_exit(self, message: dict[str, Any]) -> dict[str, Any]:
        container_id = message["container_id"]
        with self._placements_lock:
            placement = self._placements.pop(container_id, None)
            _PLACED.set(len(self._placements))
        shard_id = (
            placement.shard_id
            if placement is not None
            else self.ring.shard_of(container_id)
        )
        _ROUTED.labels(type=protocol.MSG_CONTAINER_EXIT).inc()
        if placement is not None:
            self._teardown_proxy(placement.proxy)
        try:
            reply = self._call_shard(
                shard_id, protocol.MSG_CONTAINER_EXIT, container_id=container_id
            )
        except TransportError as exc:
            return protocol.make_error_reply(
                message, f"shard {shard_id} unavailable: {exc}"
            )
        if reply.get("status") != "ok":
            return protocol.make_error_reply(
                message, reply.get("error", f"shard {shard_id} refused")
            )
        payload = {
            key: value
            for key, value in reply.items()
            if key not in ("type", "seq", "status")
        }
        return protocol.make_reply(message, **payload)

    def _upstream_from_reply(self, reply: Mapping[str, Any]) -> Any:
        if self.transport == "unix":
            return os.path.join(reply["socket_dir"], CONTAINER_SOCKET_NAME)
        return (reply["host"], reply["port"])

    # reprolint: ignore[double-lock] -- claim/publish: the proxy listener
    # is built between the two regions (bind/listen must not run under
    # the placements lock per lock-discipline).
    def _place(
        self, container_id: str, shard_id: int, limit: int, upstream: Any
    ) -> _Placement:
        with self._placements_lock:
            existing = self._placements.get(container_id)
        proxy = existing.proxy if existing is not None else self._build_proxy(
            container_id
        )
        placement = _Placement(
            container_id=container_id,
            shard_id=shard_id,
            limit=limit,
            upstream=upstream,
            proxy=proxy,
        )
        with self._placements_lock:
            self._placements[container_id] = placement
            _PLACED.set(len(self._placements))
        return placement

    # -- shard control clients ----------------------------------------------

    # reprolint: ignore[double-lock] -- get-or-create: the connect happens
    # between check and publish on purpose; a losing racer closes its
    # socket and adopts the winner's client.
    def _shard_client(self, shard_id: int) -> Any:
        with self._clients_lock:
            client = self._clients.get(shard_id)
        if client is not None:
            return client
        endpoint = self._shards.get(shard_id)
        if endpoint is None:
            raise ClusterError(f"unknown shard {shard_id}")
        # Control forwarding stays on the JSON codec: the rate is one call
        # per container lifecycle event, and pinning JSON skips a handshake
        # round-trip per (re)connect.
        if self.transport == "unix":
            fresh = UnixSocketClient(
                endpoint.control, timeout=_SHARD_CALL_TIMEOUT, codec="json"
            )
        else:
            fresh = TcpSocketClient(
                endpoint.host or "127.0.0.1",
                int(endpoint.port or 0),
                timeout=_SHARD_CALL_TIMEOUT,
                codec="json",
            )
        with self._clients_lock:
            current = self._clients.get(shard_id)
            if current is None:
                self._clients[shard_id] = fresh
                return fresh
        fresh.close()
        return current

    def _drop_client(self, shard_id: int, client: Any = None) -> None:
        with self._clients_lock:
            current = self._clients.get(shard_id)
            if client is not None and current is not client:
                return  # someone already replaced it
            stale = self._clients.pop(shard_id, None)
        if stale is not None:
            stale.close()

    # reprolint: ignore[double-lock] -- the retry loop re-enters the client
    # table per attempt; the blocking call itself runs outside any lock.
    def _call_shard(self, shard_id: int, msg_type: str, **payload: Any) -> dict:
        last_error: TransportError | None = None
        for attempt in range(2):
            if attempt:
                _RETRIES.inc()
            try:
                client = self._shard_client(shard_id)
            except TransportError as exc:
                last_error = exc
                continue
            try:
                return client.call(msg_type, **payload)
            except TransportError as exc:
                # The shard may have restarted between calls (its control
                # socket — and tcp port — changed); drop the dead client and
                # redial once against the current endpoint.
                last_error = exc
                self._drop_client(shard_id, client)
        assert last_error is not None
        raise last_error

    # -- shard restart -------------------------------------------------------

    # reprolint: ignore[double-lock] -- drop-then-snapshot: the stale
    # placements are listed once, then each re-register round-trips a
    # shard outside the lock.
    def refresh_shard(
        self, shard_id: int, endpoints: Mapping[str, Any] | None = None
    ) -> int:
        """Re-route a restarted shard's containers; returns how many.

        Hooked to :class:`~repro.cluster.supervisor.ShardSupervisor`'s
        ``on_restart``: drops the cached control client, adopts the new
        ready-file endpoints (a restarted tcp shard gets fresh ports), and
        re-registers every container placed on the shard — the daemon's
        idempotent reattach answers with the recovered assignment and the
        *new* per-container data endpoint, which replaces the placement's
        upstream.  Wrapper reconnects through the unchanged router-side
        proxy then splice to the new incarnation.
        """
        self._drop_client(shard_id)
        if endpoints is not None:
            self._shards[shard_id] = ShardEndpoint.from_ready(shard_id, endpoints)
        with self._placements_lock:
            stale = [
                placement
                for placement in self._placements.values()
                if placement.shard_id == shard_id
            ]
        refreshed = 0
        for placement in stale:
            try:
                reply = self._call_shard(
                    shard_id,
                    protocol.MSG_REGISTER_CONTAINER,
                    container_id=placement.container_id,
                    limit=placement.limit,
                )
            except TransportError as exc:
                self.log.error(
                    "refresh_failed",
                    shard=shard_id,
                    container=placement.container_id,
                    error=str(exc),
                )
                continue
            if reply.get("status") != "ok":
                self.log.error(
                    "refresh_refused",
                    shard=shard_id,
                    container=placement.container_id,
                    error=reply.get("error"),
                )
                continue
            placement.upstream = self._upstream_from_reply(reply)
            refreshed += 1
        _REC.record(_EV_REFRESH, s=str(shard_id), a=refreshed)
        self.log.info("shard_refreshed", shard=shard_id, containers=refreshed)
        return refreshed

    # -- data plane ----------------------------------------------------------

    def _build_proxy(self, container_id: str) -> _ContainerProxy:
        if self.transport == "unix":
            directory = os.path.join(self.base_dir, container_id[:12])
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, CONTAINER_SOCKET_NAME)
            if os.path.exists(path):
                os.unlink(path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            listener.listen(128)
            proxy = _ContainerProxy(container_id, listener, directory, None)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, 0))
            listener.listen(128)
            port = listener.getsockname()[1]
            proxy = _ContainerProxy(container_id, listener, None, port)
        # bind+listen above are synchronous, so a client may connect the
        # moment the reply reaches it; the loop registration only gates when
        # the accept fires.
        self._loop.add_listener(
            listener, lambda conn: self._accept_downstream(proxy, conn)
        )
        return proxy

    def _accept_downstream(self, proxy: _ContainerProxy, conn: socket.socket) -> None:
        # Loop thread: register the splice and return immediately; the
        # upstream dial happens on a worker when the first bytes arrive.
        if self.transport == "tcp":
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        link = _Link(proxy, conn)
        with proxy._links_lock:
            proxy.links.add(link)
        _REC.record(_EV_SPLICE_OPEN, s=proxy.container_id[:12], a=conn.fileno())
        self._loop.add_connection(
            conn,
            on_batch=lambda chunks: self._downstream_batch(link, chunks),
            on_close=lambda: self._downstream_closed(link),
            split=_passthrough_split,
            max_buffer=_PROXY_BUFFER,
        )

    def _connect_upstream(self, link: _Link) -> socket.socket:
        with self._placements_lock:
            placement = self._placements.get(link.proxy.container_id)
        if placement is None:
            raise ClusterError(
                f"container {link.proxy.container_id!r} no longer placed"
            )
        upstream = placement.upstream
        if self.transport == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(upstream)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.connect(tuple(upstream))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._loop.add_connection(
            sock,
            on_batch=lambda chunks: self._upstream_batch(link, chunks),
            on_close=lambda: self._upstream_closed(link),
            split=_passthrough_split,
            max_buffer=_PROXY_BUFFER,
        )
        return sock

    def _downstream_batch(self, link: _Link, chunks: list[bytes]) -> None:
        # Worker thread, per-connection FIFO: chunks of one wrapper arrive
        # strictly in order, so the splice preserves the byte stream.
        data = b"".join(chunks)
        upstream = link.up
        if upstream is None:
            try:
                upstream = self._connect_upstream(link)
            except (OSError, ClusterError):
                # Owning shard is down (or the container is gone): hang up
                # so the wrapper's blocking call raises IpcDisconnected.
                self._loop.close_connection(link.down)
                return
            link.up = upstream
        try:
            upstream.sendall(data)
        except OSError:
            self._loop.close_connection(link.up)
            self._loop.close_connection(link.down)

    def _upstream_batch(self, link: _Link, chunks: list[bytes]) -> None:
        try:
            link.down.sendall(b"".join(chunks))
        except OSError:
            if link.up is not None:
                self._loop.close_connection(link.up)
            self._loop.close_connection(link.down)

    def _upstream_closed(self, link: _Link) -> None:
        # Shard-side EOF (crash or teardown): propagate to the wrapper so
        # its in-flight call fails with a typed disconnect, not a hang.
        self._loop.close_connection(link.down)

    def _downstream_closed(self, link: _Link) -> None:
        with link.proxy._links_lock:
            link.proxy.links.discard(link)
        try:
            _REC.record(
                _EV_SPLICE_CLOSE, s=link.proxy.container_id[:12],
                a=link.down.fileno(),
            )
        except OSError:
            pass
        if link.up is not None:
            self._loop.close_connection(link.up)

    def _teardown_proxy(self, proxy: _ContainerProxy) -> None:
        self._loop.remove_listener(proxy.listener)
        with proxy._links_lock:
            links = list(proxy.links)
        for link in links:
            self._loop.close_connection(link.down)
        if proxy.socket_dir is not None:
            shutil.rmtree(proxy.socket_dir, ignore_errors=True)

    # -- observability aggregation ------------------------------------------

    def _scrape(self, url: str) -> str | None:
        try:
            with urllib.request.urlopen(url, timeout=_SCRAPE_TIMEOUT) as resp:
                return resp.read().decode("utf-8")
        except (OSError, ValueError):
            return None  # shard down or mid-restart: skip this scrape

    def aggregate_metrics_text(self) -> str:
        """Fleet-wide Prometheus text: router series + labelled shard series."""
        parts: list[tuple[dict[str, str], str]] = [
            ({}, render_prometheus(REGISTRY))
        ]
        for shard_id, endpoint in sorted(self._shards.items()):
            if endpoint.metrics_url is None:
                continue
            text = self._scrape(endpoint.metrics_url)
            if text is not None:
                parts.append(({"shard": str(shard_id)}, text))
        return merge_prometheus(parts)

    def top_snapshot(self) -> list[dict[str, Any]]:
        """Fleet-wide `repro top` rows, one scrape per live shard."""
        rows: list[dict[str, Any]] = []
        for shard_id, endpoint in sorted(self._shards.items()):
            if endpoint.metrics_url is None:
                continue
            base = endpoint.metrics_url.rsplit("/metrics", 1)[0]
            body = self._scrape(base + "/top.json")
            if body is None:
                continue
            try:
                shard_rows = json.loads(body)
            except ValueError:
                continue
            for row in shard_rows:
                row.setdefault("shard", shard_id)
                rows.append(row)
        return rows
