"""Shard supervisor: spawns and babysits one daemon process per shard.

The sharded control plane (DESIGN.md §15) runs N real ``repro daemon``
processes — each a complete single-shard deployment with its own
:class:`~repro.core.scheduler.core.GpuMemoryScheduler`, journal and
``IoLoop`` — behind the :class:`~repro.cluster.router.ShardRouter`.  This
module owns the process lifecycle:

- **spawn**: ``python -m repro daemon --shard-of i/N --journal-path
  <dir>/shard-i.journal --ready-file ...`` per shard; readiness is the
  daemon's own write-then-rename ready file, so a parsed file is always a
  complete endpoint record;
- **monitor**: a sweep thread polls every child; an unexpected exit is
  restarted from that shard's journal (``--recover``), which restores the
  scheduler state and recreates every open container's socket;
- **notify**: an ``on_restart(shard_id, endpoints)`` callback tells the
  router to refresh its forwarding state for the shard's containers.

Lock discipline (reprolint-enforced): ``_shards_lock`` only claims and
publishes table state — spawning, killing and ready-file waiting all
happen outside it, serialized per shard by the ``restarting`` flag.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClusterError
from repro.obs.log import get_logger
from repro.obs.recorder import RECORDER

__all__ = ["ShardSpec", "ShardProcess", "ShardSupervisor"]

_REC = RECORDER
_EV_SPAWN = RECORDER.declare("shard.spawn", s="shard", a="pid")
_EV_DEAD = RECORDER.declare("shard.dead", s="shard", a="exit_code")
_EV_RESTART = RECORDER.declare("shard.restart", s="shard", a="pid")


@dataclass
class ShardSpec:
    """Everything needed to (re)spawn one shard daemon process."""

    shard_id: int
    shard_count: int
    base_dir: str
    journal_path: str | None
    transport: str = "unix"
    codec: str = "auto"
    io_workers: int = 2
    total_memory_mib: int = 4096
    policy: str = "FIFO"
    metrics: bool = True
    python: str = sys.executable
    extra_args: tuple[str, ...] = ()

    @property
    def ready_file(self) -> str:
        return os.path.join(self.base_dir, "ready.json")

    def command(self, *, recover: bool) -> list[str]:
        argv = [
            self.python, "-m", "repro", "daemon",
            "--shard-of", f"{self.shard_id}/{self.shard_count}",
            "--base-dir", self.base_dir,
            "--transport", self.transport,
            "--codec", self.codec,
            "--io-workers", str(self.io_workers),
            "--total-memory", str(self.total_memory_mib),
            "--policy", self.policy,
            "--ready-file", self.ready_file,
        ]
        if self.journal_path is not None:
            argv += ["--journal-path", self.journal_path]
            if recover:
                argv.append("--recover")
        if not self.metrics:
            argv.append("--no-metrics")
        argv.extend(self.extra_args)
        return argv


class ShardProcess:
    """One shard daemon subprocess plus its published endpoints."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.process: subprocess.Popen | None = None
        #: Parsed ready-file contents of the *current* incarnation.
        self.endpoints: dict[str, Any] = {}
        self.spawn_count = 0

    # -- lifecycle -----------------------------------------------------------

    def spawn(self, *, recover: bool) -> None:
        if self.process is not None and self.process.poll() is None:
            raise ClusterError(
                f"shard {self.spec.shard_id} is already running"
            )
        os.makedirs(self.spec.base_dir, exist_ok=True)
        # A stale ready file from the previous incarnation would make
        # wait_ready() return old endpoints; readiness must be this spawn's.
        if os.path.exists(self.spec.ready_file):
            os.unlink(self.spec.ready_file)
        self.process = subprocess.Popen(
            self.spec.command(recover=recover),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.spawn_count += 1
        _REC.record(_EV_SPAWN, s=str(self.spec.shard_id), a=self.process.pid)

    def wait_ready(self, timeout: float = 30.0) -> dict[str, Any]:
        """Block until this spawn's ready file appears; returns endpoints."""
        assert self.process is not None
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.spec.ready_file):
                with open(self.spec.ready_file, encoding="utf-8") as fh:
                    self.endpoints = json.loads(fh.read())
                return self.endpoints
            if self.process.poll() is not None:
                raise ClusterError(
                    f"shard {self.spec.shard_id} exited with "
                    f"{self.process.returncode} before becoming ready"
                )
            time.sleep(0.01)
        raise ClusterError(
            f"shard {self.spec.shard_id} not ready after {timeout}s"
        )

    # -- liveness ------------------------------------------------------------

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def poll(self) -> int | None:
        """Exit code if the shard died, ``None`` while it runs."""
        return self.process.poll() if self.process is not None else -1

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    # -- teardown ------------------------------------------------------------

    def sigkill(self) -> None:
        """SIGKILL the shard — the fault-injection crash, nothing graceful."""
        if self.process is not None and self.process.poll() is None:
            os.kill(self.process.pid, signal.SIGKILL)
            self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM and wait; escalate to SIGKILL if the shard hangs."""
        if self.process is None or self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            self.process.kill()
            self.process.wait(timeout=timeout)


@dataclass
class _ShardSlot:
    process: ShardProcess
    #: Claimed by whoever is currently respawning this shard (monitor sweep
    #: or an explicit restart_shard call); guarded by ``_shards_lock``.
    restarting: bool = False
    restarts: int = 0
    #: Exit codes observed for unexpected deaths (diagnostic surface).
    deaths: list[int] = field(default_factory=list)


class ShardSupervisor:
    """Spawn, monitor, and restart the shard daemon fleet.

    Args:
        shard_count: number of shard processes (one scheduler each).
        base_dir: directory owning per-shard state: ``shard-<i>/`` (socket
            dirs + ready file) and ``shard-<i>.journal``.
        transport / codec / io_workers / total_memory_mib / policy: passed
            through to each ``repro daemon`` process; ``total_memory_mib``
            is **per shard** (each shard owns one device's pool).
        journal: write-ahead journals on (default).  Off produces
            journal-less shards (benchmarking only — a dead shard then has
            nothing to recover from).
        metrics: serve each shard's observability endpoint (the router's
            aggregation scrapes these).
        auto_restart: restart a shard that dies unexpectedly (from its
            journal).  The monitor thread only runs when this is on.
        monitor_interval: seconds between liveness sweeps.
        on_restart: ``callback(shard_id, endpoints)`` after a shard came
            back ready — the router hooks this to re-route the shard's
            containers.
        spawn_timeout: seconds to wait for a shard's ready file.
    """

    def __init__(
        self,
        shard_count: int,
        *,
        base_dir: str,
        transport: str = "unix",
        codec: str = "auto",
        io_workers: int = 2,
        total_memory_mib: int = 4096,
        policy: str = "FIFO",
        journal: bool = True,
        metrics: bool = True,
        auto_restart: bool = True,
        monitor_interval: float = 0.25,
        on_restart: Callable[[int, dict[str, Any]], None] | None = None,
        spawn_timeout: float = 30.0,
        python: str = sys.executable,
        extra_args: tuple[str, ...] = (),
    ) -> None:
        if shard_count < 1:
            raise ClusterError("need at least one shard")
        if transport not in ("unix", "tcp"):
            raise ClusterError(f"unknown transport {transport!r}")
        self.shard_count = shard_count
        self.base_dir = base_dir
        self.auto_restart = auto_restart
        self.monitor_interval = monitor_interval
        self.on_restart = on_restart
        self.spawn_timeout = spawn_timeout
        self.log = get_logger("supervisor")
        self._slots: list[_ShardSlot] = []
        self._shards_lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        for shard_id in range(shard_count):
            spec = ShardSpec(
                shard_id=shard_id,
                shard_count=shard_count,
                base_dir=os.path.join(base_dir, f"shard-{shard_id}"),
                journal_path=(
                    os.path.join(base_dir, f"shard-{shard_id}.journal")
                    if journal
                    else None
                ),
                transport=transport,
                codec=codec,
                io_workers=io_workers,
                total_memory_mib=total_memory_mib,
                policy=policy,
                metrics=metrics,
                python=python,
                extra_args=extra_args,
            )
            self._slots.append(_ShardSlot(process=ShardProcess(spec)))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Spawn every shard, wait until all are ready, start the monitor.

        A shard whose journal already exists recovers from it — so a
        supervisor restart over a previous deployment's state resumes
        rather than double-registering containers.
        """
        os.makedirs(self.base_dir, exist_ok=True)
        for slot in self._slots:
            journal = slot.process.spec.journal_path
            recover = journal is not None and os.path.exists(journal)
            slot.process.spawn(recover=recover)
        for slot in self._slots:
            slot.process.wait_ready(self.spawn_timeout)
        if self.auto_restart:
            self._monitor_stop.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="convgpu-shard-monitor", daemon=True
            )
            self._monitor.start()
        self.log.info(
            "shards_started",
            shards=self.shard_count,
            pids=[slot.process.pid for slot in self._slots],
        )
        return self

    def stop(self) -> None:
        if self._monitor is not None:
            self._monitor_stop.set()
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for slot in self._slots:
            slot.process.terminate()
        self.log.info("shards_stopped", shards=self.shard_count)

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------

    def endpoints(self, shard_id: int) -> dict[str, Any]:
        """The shard's current ready-file endpoints (refreshed on restart)."""
        return dict(self._slots[shard_id].process.endpoints)

    def shard(self, shard_id: int) -> ShardProcess:
        return self._slots[shard_id].process

    def restarts(self, shard_id: int) -> int:
        with self._shards_lock:
            return self._slots[shard_id].restarts

    def all_alive(self) -> bool:
        return all(slot.process.alive() for slot in self._slots)

    # -- failure handling ----------------------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard (fault injection).  The monitor — when
        ``auto_restart`` — notices on its next sweep and recovers it."""
        self._slots[shard_id].process.sigkill()

    # reprolint: ignore[double-lock] -- claim/publish: the restarting flag
    # serializes respawns per shard while spawn + ready-wait block between
    # the regions (lock-discipline forbids them under the lock).
    def restart_shard(self, shard_id: int) -> bool:
        """Restart a dead shard from its journal; returns False if the
        shard is still running or another restart already claimed it."""
        slot = self._slots[shard_id]
        with self._shards_lock:
            if slot.restarting:
                return False
            slot.restarting = True
        try:
            if slot.process.alive():
                return False
            exit_code = slot.process.poll()
            with self._shards_lock:
                slot.deaths.append(exit_code if exit_code is not None else -1)
            _REC.record(
                _EV_DEAD, s=str(shard_id),
                a=exit_code if exit_code is not None else -1,
            )
            journal = slot.process.spec.journal_path
            recover = journal is not None and os.path.exists(journal)
            slot.process.spawn(recover=recover)
            endpoints = slot.process.wait_ready(self.spawn_timeout)
            with self._shards_lock:
                slot.restarts += 1
            _REC.record(
                _EV_RESTART, s=str(shard_id), a=slot.process.pid or -1
            )
            self.log.warning(
                "shard_restarted",
                shard=shard_id,
                exit_code=exit_code,
                recovered=recover,
                pid=slot.process.pid,
            )
        finally:
            with self._shards_lock:
                slot.restarting = False
        callback = self.on_restart
        if callback is not None:
            callback(shard_id, endpoints)
        return True

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.monitor_interval):
            for shard_id, slot in enumerate(self._slots):
                if self._monitor_stop.is_set():
                    return
                if slot.process.alive():
                    continue
                try:
                    self.restart_shard(shard_id)
                except Exception as exc:
                    # The monitor must survive a failed respawn; the shard
                    # stays dead and is retried on the next sweep.
                    self.log.error(
                        "shard_restart_failed", shard=shard_id, error=str(exc)
                    )
