"""Swarm extension (§V future work): ConVGPU across multiple hosts.

"Our further step is to adopt the ConVGPU in the clustering system like
Docker Swarm."

A :class:`SwarmCluster` holds several *nodes*, each a complete single-host
ConVGPU deployment (its own GPU(s), scheduler, engine).  A dispatch
strategy — named after Docker Swarm's real ones — picks the node for each
submitted container:

- ``spread``  — node with the most unreserved GPU memory (Swarm default);
- ``binpack`` — node with the least unreserved memory that still fits,
  concentrating load so whole nodes stay free;
- ``random``  — uniform choice among nodes that can ever fit the limit.

Dispatch happens at submission, before the container's nvidia-docker
registration on the chosen node; everything after that is the unmodified
single-host stack.

``live=True`` swaps the simulated nodes for the real sharded control
plane: one ``repro daemon`` process per node (journalled, over loopback
TCP — the cross-host transport) behind a
:class:`~repro.cluster.router.ShardRouter`, with the supervisor's
auto-restart wired to the router's re-routing.  The DES scheduling API is
unavailable in live mode (and vice versa); live callers register through
:meth:`register` and talk to containers via :meth:`client_for`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.container.image import make_cuda_image
from repro.core.middleware import ConVGPU
from repro.errors import ClusterError, LimitExceededError
from repro.sim.engine import Environment
from repro.workloads.api import ProcessApi
from repro.workloads.arrivals import Arrival
from repro.workloads.runner import SimIpcBridge, SimProgramRunner
from repro.workloads.sample import make_sample_command

__all__ = ["SwarmNode", "SwarmCluster", "DISPATCH_STRATEGIES", "SwarmRunResult"]


@dataclass
class SwarmNode:
    """One host in the cluster: a full ConVGPU deployment + its runner."""

    name: str
    system: ConVGPU
    runner: SimProgramRunner
    containers: list[str] = field(default_factory=list)

    @property
    def unreserved(self) -> int:
        return self.system.scheduler.unreserved

    @property
    def total_memory(self) -> int:
        return self.system.scheduler.total_memory


def _spread(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    fitting = [n for n in nodes if limit <= n.total_memory]
    if not fitting:
        return None
    return max(fitting, key=lambda n: (n.unreserved, -nodes.index(n)))


def _binpack(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    reservable = [
        n for n in nodes if limit <= n.total_memory and n.unreserved >= limit
    ]
    if reservable:
        return min(reservable, key=lambda n: (n.unreserved, nodes.index(n)))
    return _spread(nodes, limit, rng)


def _random(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    fitting = [n for n in nodes if limit <= n.total_memory]
    if not fitting:
        return None
    return fitting[int(rng.integers(0, len(fitting)))]


DISPATCH_STRATEGIES: dict[str, Callable] = {
    "spread": _spread,
    "binpack": _binpack,
    "random": _random,
}


@dataclass
class SwarmRunResult:
    """Outcome of a cluster schedule."""

    strategy: str
    finished_time: float
    avg_suspended: float
    failures: int
    per_node_containers: dict[str, int]


class SwarmCluster:
    """Several ConVGPU hosts under one virtual clock and dispatcher.

    With ``live=True`` the hosts are real: one journalled shard daemon
    process per node on loopback TCP, fronted by a consistent-hash
    router.  ``node_count`` then sets the shard count; ``policy`` and
    ``total_memory_mib`` configure each shard's scheduler; ``strategy``
    is ignored (placement is the router's hash ring).
    """

    def __init__(
        self,
        node_count: int,
        *,
        env: Environment | None = None,
        policy: str = "BF",
        strategy: str = "spread",
        rng: np.random.Generator | None = None,
        live: bool = False,
        base_dir: str | None = None,
        total_memory_mib: int = 4096,
    ) -> None:
        if node_count < 1:
            raise ClusterError("need at least one node")
        if strategy not in DISPATCH_STRATEGIES:
            raise ClusterError(
                f"unknown strategy {strategy!r}; known: {sorted(DISPATCH_STRATEGIES)}"
            )
        self.live = live
        self.node_count = node_count
        self.strategy_name = strategy
        self.nodes: list[SwarmNode] = []
        self.supervisor = None
        self.router = None
        self._control_client = None
        if live:
            self._policy = policy
            self._total_memory_mib = total_memory_mib
            self._owns_base_dir = base_dir is None
            self._base_dir = base_dir or tempfile.mkdtemp(prefix="convgpu-swarm-")
            return
        self.env = env if env is not None else Environment()
        self._dispatch = DISPATCH_STRATEGIES[strategy]
        self._rng = rng if rng is not None else np.random.default_rng(0)
        for index in range(node_count):
            system = ConVGPU(policy=policy, clock=lambda: self.env.now)
            system.engine.images.add(make_cuda_image("sample"))
            bridge = SimIpcBridge(self.env, system.service.handle)
            runner = SimProgramRunner(self.env, system.device, bridge)
            self.nodes.append(
                SwarmNode(name=f"node{index}", system=system, runner=runner)
            )

    # -- live mode -----------------------------------------------------------

    def _require_live(self) -> None:
        if not self.live:
            raise ClusterError("this method needs a live=True cluster")
        if self.router is None:
            raise ClusterError("live cluster not started (call start())")

    def start(self) -> "SwarmCluster":
        """Live mode: spawn the shard fleet and the router in front of it."""
        if not self.live:
            raise ClusterError("start() only applies to a live=True cluster")
        from repro.cluster.router import ShardEndpoint, ShardRouter
        from repro.cluster.supervisor import ShardSupervisor

        self.supervisor = ShardSupervisor(
            self.node_count,
            base_dir=os.path.join(self._base_dir, "shards"),
            transport="tcp",
            policy=self._policy,
            total_memory_mib=self._total_memory_mib,
        )
        self.supervisor.start()
        try:
            self.router = ShardRouter(
                [
                    ShardEndpoint.from_ready(i, self.supervisor.endpoints(i))
                    for i in range(self.node_count)
                ],
                base_dir=os.path.join(self._base_dir, "router"),
            )
            self.router.start()
        except Exception:
            self.supervisor.stop()
            self.supervisor = None
            raise
        self.supervisor.on_restart = self.router.refresh_shard
        return self

    def stop(self) -> None:
        if not self.live:
            return
        if self._control_client is not None:
            self._control_client.close()
            self._control_client = None
        if self.router is not None:
            self.router.stop()
            self.router = None
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self._owns_base_dir:
            import shutil

            shutil.rmtree(self._base_dir, ignore_errors=True)

    def __enter__(self) -> "SwarmCluster":
        return self.start() if self.live else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def register(self, container_id: str, limit: int) -> dict:
        """Live mode: register a container through the router."""
        self._require_live()
        from repro.ipc import protocol
        from repro.ipc.tcp_socket import TcpSocketClient

        if self._control_client is None:
            self._control_client = TcpSocketClient(
                self.router.host, self.router.control_port, timeout=30.0
            )
        return self._control_client.call(
            protocol.MSG_REGISTER_CONTAINER,
            container_id=container_id,
            limit=limit,
        )

    def container_exit(self, container_id: str) -> dict:
        """Live mode: deregister a container through the router."""
        self._require_live()
        from repro.ipc import protocol

        if self._control_client is None:
            raise ClusterError("no containers registered yet")
        return self._control_client.call(
            protocol.MSG_CONTAINER_EXIT, container_id=container_id
        )

    def client_for(self, container_id: str, *, codec: str = "auto", timeout=30.0):
        """Live mode: a connected client to the container's proxied socket."""
        self._require_live()
        from repro.ipc.tcp_socket import TcpSocketClient

        return TcpSocketClient(
            self.router.host,
            self.router.container_port(container_id),
            timeout=timeout,
            codec=codec,
        )

    # ------------------------------------------------------------------

    def dispatch(self, limit: int) -> SwarmNode:
        """Pick the node for a container with the given GPU memory limit."""
        if self.live:
            raise ClusterError("dispatch() is the DES path; live placement "
                               "is the router's hash ring")
        node = self._dispatch(self.nodes, limit, self._rng)
        if node is None:
            raise LimitExceededError(
                f"no node in the cluster can hold a {limit}-byte container"
            )
        return node

    def submit(self, arrival: Arrival) -> "repro.sim.events.Process":  # noqa: F821
        """Schedule one arrival: dispatch, run, record (a DES process)."""
        if self.live:
            raise ClusterError("submit() is the DES path; use register() / "
                               "client_for() on a live cluster")

        def _process():
            yield self.env.timeout(arrival.time)
            node = self.dispatch(arrival.container_type.gpu_memory)
            node.containers.append(arrival.name)
            system, runner = node.system, node.runner
            container = system.nvdocker.run(
                "sample",
                name=arrival.name,
                container_type=arrival.container_type,
                command=make_sample_command(
                    arrival.container_type, lambda: self.env.now
                ),
            )
            creation = (
                system.engine.timing.creation_time(container.config)
                + system.creation_overhead()
            )
            yield self.env.timeout(creation)
            proc = runner.run_program(
                ProcessApi(container.main_process),
                on_exit=lambda code: system.engine.notify_main_exit(
                    container.container_id, code
                ),
            )
            exit_code = yield proc
            record = system.scheduler.container(arrival.name)
            return arrival.name, exit_code, record.suspended_total

        return self.env.process(_process())

    def run_schedule(self, arrivals: list[Arrival]) -> SwarmRunResult:
        """Run a full arrival schedule to completion."""
        processes = [self.submit(arrival) for arrival in arrivals]
        self.env.run()
        outcomes = [p.value for p in processes]
        for node in self.nodes:
            node.system.scheduler.check_invariants()
        return SwarmRunResult(
            strategy=self.strategy_name,
            finished_time=self.env.now,
            avg_suspended=(
                sum(s for _n, _c, s in outcomes) / len(outcomes) if outcomes else 0.0
            ),
            failures=sum(1 for _n, code, _s in outcomes if code != 0),
            per_node_containers={n.name: len(n.containers) for n in self.nodes},
        )
