"""Swarm extension (§V future work): ConVGPU across multiple hosts.

"Our further step is to adopt the ConVGPU in the clustering system like
Docker Swarm."

A :class:`SwarmCluster` holds several *nodes*, each a complete single-host
ConVGPU deployment (its own GPU(s), scheduler, engine).  A dispatch
strategy — named after Docker Swarm's real ones — picks the node for each
submitted container:

- ``spread``  — node with the most unreserved GPU memory (Swarm default);
- ``binpack`` — node with the least unreserved memory that still fits,
  concentrating load so whole nodes stay free;
- ``random``  — uniform choice among nodes that can ever fit the limit.

Dispatch happens at submission, before the container's nvidia-docker
registration on the chosen node; everything after that is the unmodified
single-host stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.container.image import make_cuda_image
from repro.core.middleware import ConVGPU
from repro.errors import ClusterError, LimitExceededError
from repro.sim.engine import Environment
from repro.workloads.api import ProcessApi
from repro.workloads.arrivals import Arrival
from repro.workloads.runner import SimIpcBridge, SimProgramRunner
from repro.workloads.sample import make_sample_command

__all__ = ["SwarmNode", "SwarmCluster", "DISPATCH_STRATEGIES", "SwarmRunResult"]


@dataclass
class SwarmNode:
    """One host in the cluster: a full ConVGPU deployment + its runner."""

    name: str
    system: ConVGPU
    runner: SimProgramRunner
    containers: list[str] = field(default_factory=list)

    @property
    def unreserved(self) -> int:
        return self.system.scheduler.unreserved

    @property
    def total_memory(self) -> int:
        return self.system.scheduler.total_memory


def _spread(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    fitting = [n for n in nodes if limit <= n.total_memory]
    if not fitting:
        return None
    return max(fitting, key=lambda n: (n.unreserved, -nodes.index(n)))


def _binpack(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    reservable = [
        n for n in nodes if limit <= n.total_memory and n.unreserved >= limit
    ]
    if reservable:
        return min(reservable, key=lambda n: (n.unreserved, nodes.index(n)))
    return _spread(nodes, limit, rng)


def _random(nodes: list[SwarmNode], limit: int, rng) -> SwarmNode | None:
    fitting = [n for n in nodes if limit <= n.total_memory]
    if not fitting:
        return None
    return fitting[int(rng.integers(0, len(fitting)))]


DISPATCH_STRATEGIES: dict[str, Callable] = {
    "spread": _spread,
    "binpack": _binpack,
    "random": _random,
}


@dataclass
class SwarmRunResult:
    """Outcome of a cluster schedule."""

    strategy: str
    finished_time: float
    avg_suspended: float
    failures: int
    per_node_containers: dict[str, int]


class SwarmCluster:
    """Several ConVGPU hosts under one virtual clock and dispatcher."""

    def __init__(
        self,
        node_count: int,
        *,
        env: Environment | None = None,
        policy: str = "BF",
        strategy: str = "spread",
        rng: np.random.Generator | None = None,
    ) -> None:
        if node_count < 1:
            raise ClusterError("need at least one node")
        if strategy not in DISPATCH_STRATEGIES:
            raise ClusterError(
                f"unknown strategy {strategy!r}; known: {sorted(DISPATCH_STRATEGIES)}"
            )
        self.env = env if env is not None else Environment()
        self.strategy_name = strategy
        self._dispatch = DISPATCH_STRATEGIES[strategy]
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.nodes: list[SwarmNode] = []
        for index in range(node_count):
            system = ConVGPU(policy=policy, clock=lambda: self.env.now)
            system.engine.images.add(make_cuda_image("sample"))
            bridge = SimIpcBridge(self.env, system.service.handle)
            runner = SimProgramRunner(self.env, system.device, bridge)
            self.nodes.append(
                SwarmNode(name=f"node{index}", system=system, runner=runner)
            )

    # ------------------------------------------------------------------

    def dispatch(self, limit: int) -> SwarmNode:
        """Pick the node for a container with the given GPU memory limit."""
        node = self._dispatch(self.nodes, limit, self._rng)
        if node is None:
            raise LimitExceededError(
                f"no node in the cluster can hold a {limit}-byte container"
            )
        return node

    def submit(self, arrival: Arrival) -> "repro.sim.events.Process":  # noqa: F821
        """Schedule one arrival: dispatch, run, record (a DES process)."""

        def _process():
            yield self.env.timeout(arrival.time)
            node = self.dispatch(arrival.container_type.gpu_memory)
            node.containers.append(arrival.name)
            system, runner = node.system, node.runner
            container = system.nvdocker.run(
                "sample",
                name=arrival.name,
                container_type=arrival.container_type,
                command=make_sample_command(
                    arrival.container_type, lambda: self.env.now
                ),
            )
            creation = (
                system.engine.timing.creation_time(container.config)
                + system.creation_overhead()
            )
            yield self.env.timeout(creation)
            proc = runner.run_program(
                ProcessApi(container.main_process),
                on_exit=lambda code: system.engine.notify_main_exit(
                    container.container_id, code
                ),
            )
            exit_code = yield proc
            record = system.scheduler.container(arrival.name)
            return arrival.name, exit_code, record.suspended_total

        return self.env.process(_process())

    def run_schedule(self, arrivals: list[Arrival]) -> SwarmRunResult:
        """Run a full arrival schedule to completion."""
        processes = [self.submit(arrival) for arrival in arrivals]
        self.env.run()
        outcomes = [p.value for p in processes]
        for node in self.nodes:
            node.system.scheduler.check_invariants()
        return SwarmRunResult(
            strategy=self.strategy_name,
            finished_time=self.env.now,
            avg_suspended=(
                sum(s for _n, _c, s in outcomes) / len(outcomes) if outcomes else 0.0
            ),
            failures=sum(1 for _n, code, _s in outcomes if code != 0),
            per_node_containers={n.name: len(n.containers) for n in self.nodes},
        )
