"""Multi-GPU extension (§V future work).

"Our future work will extend the ConVGPU in a multiple GPU with an
appropriate algorithm to achieve better performance."

The design follows the paper's single-GPU semantics per device: each GPU
keeps its own :class:`~repro.core.scheduler.core.GpuMemoryScheduler`
(memory cannot move between devices, so per-device bookkeeping is exact)
and a **placement policy** decides, at registration time, which device a
container binds to — the single cross-device decision the paper's model
needs.  After placement, every wrapper message routes to the container's
device scheduler unchanged, so the entire single-GPU machinery is reused.

Placement policies provided:

- ``most-free``  — the device with the most unreserved memory (spread);
- ``best-fit``   — the device whose unreserved memory is the smallest that
  still fits the limit (binpack: keeps big devices free for big tenants);
- ``round-robin``— cycle across devices that can fit the limit;
- ``hash``       — consistent-hash the container id onto the device set
  (the :class:`~repro.cluster.ring.HashRing` the shard router uses), so a
  single-process multi-GPU deployment and a sharded multi-daemon one
  agree on where a container lives.

A placement callable takes ``(schedulers, container_id, limit)`` and
returns a device ordinal (or ``None`` when no device can ever fit the
limit); only ``hash`` looks at the container id today, but the id is part
of the contract so stateful policies can be deterministic per tenant.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.cluster.ring import HashRing
from repro.core.scheduler.core import GpuMemoryScheduler
from repro.core.scheduler.policies import SchedulingPolicy, make_policy
from repro.core.scheduler.records import ContainerRecord
from repro.errors import ClusterError, LimitExceededError, UnknownContainerError
from repro.gpu.device import DeviceRegistry
from repro.units import format_size

__all__ = ["PLACEMENT_POLICIES", "MultiGpuScheduler"]


def _place_most_free(
    schedulers: list[GpuMemoryScheduler], container_id: str, limit: int
) -> int | None:
    candidates = [
        (s.unreserved, -i)
        for i, s in enumerate(schedulers)
        if limit <= s.total_memory
    ]
    if not candidates:
        return None
    _, neg_index = max(candidates)
    return -neg_index


def _place_best_fit(
    schedulers: list[GpuMemoryScheduler], container_id: str, limit: int
) -> int | None:
    fitting = [
        (s.unreserved, i)
        for i, s in enumerate(schedulers)
        if limit <= s.total_memory and s.unreserved >= limit
    ]
    if fitting:
        # Smallest unreserved pool that still covers the limit.
        _, index = min(fitting)
        return index
    # Nobody can reserve fully right now: fall back to the device with the
    # most room (the container will be partially assigned + paused there).
    return _place_most_free(schedulers, container_id, limit)


class _RoundRobin:
    def __init__(self) -> None:
        self._next = 0

    def __call__(
        self, schedulers: list[GpuMemoryScheduler], container_id: str, limit: int
    ) -> int | None:
        n = len(schedulers)
        for offset in range(n):
            index = (self._next + offset) % n
            if limit <= schedulers[index].total_memory:
                self._next = (index + 1) % n
                return index
        return None


class _PlaceHash:
    """Consistent-hash placement: ring-walk to the first device that fits.

    The ring is built lazily on first use (the device count is only known
    then) and is the same construction the shard router uses, so
    ``hash``-placed ordinals equal the router's shard assignments for the
    same container ids and device count.
    """

    def __init__(self) -> None:
        self._ring: HashRing | None = None
        self._size = 0

    def __call__(
        self, schedulers: list[GpuMemoryScheduler], container_id: str, limit: int
    ) -> int | None:
        if self._ring is None or self._size != len(schedulers):
            ring = HashRing()
            for ordinal in range(len(schedulers)):
                ring.add(ordinal)
            self._ring = ring
            self._size = len(schedulers)
        for ordinal in self._ring.preference(container_id):
            if limit <= schedulers[ordinal].total_memory:
                return ordinal
        return None


#: name -> factory producing a placement callable.
PLACEMENT_POLICIES: dict[str, Callable[[], Callable]] = {
    "most-free": lambda: _place_most_free,
    "best-fit": lambda: _place_best_fit,
    "round-robin": _RoundRobin,
    "hash": _PlaceHash,
}


class MultiGpuScheduler:
    """ConVGPU's scheduler generalized over a device registry.

    Locking is sharded per device: each
    :class:`~repro.core.scheduler.core.GpuMemoryScheduler` carries its own
    mutex, so traffic for containers on different GPUs never contends.
    The only cross-device state is the placement map, guarded by its own
    small lock here.  Passing one :class:`SchedulingPolicy` *instance* for
    every device is safe: policies are stateless strategy objects, and the
    incremental candidate index each one maintains is created per scheduler
    state via ``policy.make_index(state)`` — never shared across devices.
    """

    def __init__(
        self,
        devices: DeviceRegistry,
        policy: SchedulingPolicy | str = "BF",
        *,
        placement: str = "most-free",
        clock: Callable[[], float] | None = None,
        context_overhead: int | None = None,
    ) -> None:
        if len(devices) == 0:
            raise ClusterError("need at least one device")
        if placement not in PLACEMENT_POLICIES:
            raise ClusterError(
                f"unknown placement {placement!r}; known: {sorted(PLACEMENT_POLICIES)}"
            )
        self.devices = devices
        self.placement_name = placement
        self._place = PLACEMENT_POLICIES[placement]()
        self.schedulers: list[GpuMemoryScheduler] = []
        for device in devices:
            per_device_policy = (
                make_policy(policy) if isinstance(policy, str) else policy
            )
            kwargs: dict[str, Any] = {"clock": clock} if clock else {}
            if context_overhead is not None:
                kwargs["context_overhead"] = context_overhead
            self.schedulers.append(
                GpuMemoryScheduler(
                    device.properties.total_global_mem, per_device_policy, **kwargs
                )
            )
        #: The shared per-device policy; the protocol service labels its
        #: decision-latency histogram with ``scheduler.policy.name``.
        self.policy = self.schedulers[0].policy
        #: container_id -> device ordinal; guarded by ``_placements_lock``
        #: (the per-device scheduler locks do not cover this map).
        self._placements: dict[str, int] = {}
        self._placements_lock = threading.Lock()

    # ------------------------------------------------------------------

    def register_container(self, container_id: str, limit: int) -> tuple[int, ContainerRecord]:
        """Place the container on a device and register it there.

        Returns ``(device_ordinal, record)``; the ordinal is what the
        customized nvidia-docker would translate into the right
        ``--device /dev/nvidiaN`` option.
        """
        ordinal = self._place(self.schedulers, container_id, limit)
        if ordinal is None:
            raise LimitExceededError(
                f"no device can ever hold {format_size(limit)}"
            )
        record = self.schedulers[ordinal].register_container(container_id, limit)
        with self._placements_lock:
            self._placements[container_id] = ordinal
        return ordinal, record

    def device_of(self, container_id: str) -> int:
        with self._placements_lock:
            try:
                return self._placements[container_id]
            except KeyError:
                raise UnknownContainerError(
                    f"container {container_id!r} is not placed"
                ) from None

    def scheduler_of(self, container_id: str) -> GpuMemoryScheduler:
        return self.schedulers[self.device_of(container_id)]

    def container(self, container_id: str) -> ContainerRecord:
        """The container's record on its placed device."""
        return self.scheduler_of(container_id).container(container_id)

    def containers(self, *, include_closed: bool = False) -> list[ContainerRecord]:
        records: list[ContainerRecord] = []
        for scheduler in self.schedulers:
            records.extend(scheduler.containers(include_closed=include_closed))
        return sorted(records, key=lambda r: (r.created_at, r.container_id))

    # -- routed single-GPU operations --------------------------------------

    def request_allocation(self, container_id: str, pid: int, size: int, **kwargs):
        return self.scheduler_of(container_id).request_allocation(
            container_id, pid, size, **kwargs
        )

    def commit_allocation(self, container_id: str, pid: int, address: int, size: int):
        return self.scheduler_of(container_id).commit_allocation(
            container_id, pid, address, size
        )

    def abort_allocation(self, container_id: str, pid: int, size: int):
        return self.scheduler_of(container_id).abort_allocation(container_id, pid, size)

    def release_allocation(self, container_id: str, pid: int, address: int):
        return self.scheduler_of(container_id).release_allocation(
            container_id, pid, address
        )

    def process_exit(self, container_id: str, pid: int):
        return self.scheduler_of(container_id).process_exit(container_id, pid)

    def mem_get_info(self, container_id: str, pid: int):
        return self.scheduler_of(container_id).mem_get_info(container_id, pid)

    def container_exit(self, container_id: str) -> int:
        with self._placements_lock:
            ordinal = self._placements.pop(container_id, None)
        if ordinal is None:
            return 0
        return self.schedulers[ordinal].container_exit(container_id)

    def begin_batch(self) -> None:
        """Enter batch mode on every device scheduler (see core.begin_batch).

        A pipelined frame batch may carry traffic for containers placed on
        different devices; entering batch mode everywhere lets each device
        coalesce its share into one durability wait at commit.
        """
        for scheduler in self.schedulers:
            scheduler.begin_batch()

    def commit_batch(self) -> None:
        for scheduler in self.schedulers:
            scheduler.commit_batch()

    # ------------------------------------------------------------------

    @property
    def total_memory(self) -> int:
        return sum(s.total_memory for s in self.schedulers)

    @property
    def reserved(self) -> int:
        return sum(s.reserved for s in self.schedulers)

    def check_invariants(self) -> None:
        for scheduler in self.schedulers:
            scheduler.check_invariants()

    def utilization_by_device(self) -> list[float]:
        """Reserved fraction per device (placement-quality metric)."""
        return [s.reserved / s.total_memory for s in self.schedulers]
