"""Cluster extensions (§V future work): multi-GPU hosts and swarm dispatch."""

from repro.cluster.multigpu import PLACEMENT_POLICIES, MultiGpuScheduler
from repro.cluster.swarm import (
    DISPATCH_STRATEGIES,
    SwarmCluster,
    SwarmNode,
    SwarmRunResult,
)

__all__ = [
    "MultiGpuScheduler",
    "PLACEMENT_POLICIES",
    "SwarmCluster",
    "SwarmNode",
    "SwarmRunResult",
    "DISPATCH_STRATEGIES",
]
