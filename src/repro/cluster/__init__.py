"""Cluster extensions (§V future work): multi-GPU hosts, swarm dispatch,
and the sharded multi-daemon control plane (ring / supervisor / router)."""

from repro.cluster.multigpu import PLACEMENT_POLICIES, MultiGpuScheduler
from repro.cluster.ring import HashRing
from repro.cluster.router import ShardEndpoint, ShardRouter
from repro.cluster.supervisor import ShardProcess, ShardSpec, ShardSupervisor
from repro.cluster.swarm import (
    DISPATCH_STRATEGIES,
    SwarmCluster,
    SwarmNode,
    SwarmRunResult,
)

__all__ = [
    "MultiGpuScheduler",
    "PLACEMENT_POLICIES",
    "HashRing",
    "ShardEndpoint",
    "ShardRouter",
    "ShardProcess",
    "ShardSpec",
    "ShardSupervisor",
    "SwarmCluster",
    "SwarmNode",
    "SwarmRunResult",
    "DISPATCH_STRATEGIES",
]
